//! A sharded LRU page cache — the lock-spreading layer of the query
//! backbone.
//!
//! PR 2 made [`crate::LruTracker`] the exact-LRU model behind the per-disk
//! page caches, but every access serialized on one mutex. Under the
//! batched query paths many search threads touch the same disk's cache
//! concurrently, and that single lock becomes the contention point the
//! paper's scaling story never charges for — it gets *worse* as disks (and
//! therefore concurrent per-disk searches) are added.
//!
//! [`ShardedLru`] splits the key space over `N` independently locked
//! [`LruTracker`] shards (`shard = key mod N`). Each shard runs *exact*
//! LRU over the keys it owns, so a 1-shard cache is step-for-step
//! identical to a plain tracker, and a sharded cache approximates global
//! LRU with per-shard precision while `N` accesses can proceed in
//! parallel. Node page ids are dense sequential integers, so the modulo
//! split spreads both capacity and traffic evenly.

use std::sync::Arc;

use parking_lot::Mutex;
use parsim_obs::Counter;

use crate::cache::LruTracker;

/// Per-shard hit/miss/eviction counters attached to a [`ShardedLru`].
///
/// The counter handles usually come from a `parsim_obs::MetricsRegistry`
/// owned by a higher layer (the parallel engine registers one triple per
/// shard, labeled with disk and shard ids); the cache itself only records
/// through them. Cloning shares the underlying counters.
#[derive(Debug, Clone)]
pub struct CacheMetrics {
    hits: Vec<Arc<Counter>>,
    misses: Vec<Arc<Counter>>,
    evictions: Vec<Arc<Counter>>,
}

impl CacheMetrics {
    /// Bundles one hit/miss/eviction counter per shard.
    ///
    /// # Panics
    ///
    /// Panics if the three vectors differ in length or are empty.
    pub fn new(
        hits: Vec<Arc<Counter>>,
        misses: Vec<Arc<Counter>>,
        evictions: Vec<Arc<Counter>>,
    ) -> Self {
        assert!(
            !hits.is_empty() && hits.len() == misses.len() && hits.len() == evictions.len(),
            "cache metrics need one counter triple per shard"
        );
        CacheMetrics {
            hits,
            misses,
            evictions,
        }
    }

    /// Number of shards the counters cover.
    pub fn shard_count(&self) -> usize {
        self.hits.len()
    }
}

/// An exact-per-shard LRU set of page keys with fixed total capacity.
///
/// Keys are routed to `shards` independent [`LruTracker`]s by
/// `key % shards`; the total capacity is distributed as evenly as
/// possible (the first `capacity % shards` shards hold one extra page).
/// With one shard this is exactly a mutex-protected [`LruTracker`].
#[derive(Debug)]
pub struct ShardedLru {
    shards: Vec<Mutex<LruTracker>>,
    capacity: usize,
    metrics: Option<CacheMetrics>,
}

impl ShardedLru {
    /// Creates a cache of `capacity` total pages split over `shards`
    /// independently locked LRU shards. A shard count of 0 is clamped
    /// to 1; a capacity of 0 disables caching (every access misses).
    pub fn new(capacity: usize, shards: usize) -> Self {
        ShardedLru::with_metrics(capacity, shards, None)
    }

    /// Like [`ShardedLru::new`], but every access also bumps the matching
    /// per-shard counter in `metrics`. With `None` this is exactly
    /// [`ShardedLru::new`] — the hot path pays one untaken branch and no
    /// atomics.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` is present but covers a different number of
    /// shards than the (clamped) `shards` count.
    pub fn with_metrics(capacity: usize, shards: usize, metrics: Option<CacheMetrics>) -> Self {
        let shards = shards.max(1);
        if let Some(m) = &metrics {
            assert_eq!(
                m.shard_count(),
                shards,
                "cache metrics must cover exactly the shard count"
            );
        }
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(LruTracker::new(base + usize::from(i < extra))))
            .collect();
        ShardedLru {
            shards,
            capacity,
            metrics,
        }
    }

    /// Total capacity in pages across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of cached keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records an access to `key`, locking only the owning shard.
    /// Returns `true` on a cache hit; on a miss the key is inserted,
    /// evicting that shard's least recently used key if the shard is
    /// full.
    pub fn touch(&self, key: u64) -> bool {
        let shard = (key % self.shards.len() as u64) as usize;
        let outcome = self.shards[shard].lock().touch_reporting(key);
        if let Some(m) = &self.metrics {
            if outcome.hit {
                m.hits[shard].inc();
            } else {
                m.misses[shard].inc();
                if outcome.evicted {
                    m.evictions[shard].inc();
                }
            }
        }
        outcome.hit
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_matches_the_plain_tracker() {
        let sharded = ShardedLru::new(8, 1);
        let mut plain = LruTracker::new(8);
        let mut state = 0xDEADBEEFu64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 24;
            assert_eq!(sharded.touch(key), plain.touch(key), "key {key}");
        }
        assert_eq!(sharded.len(), plain.len());
    }

    #[test]
    fn capacity_splits_evenly_with_remainder() {
        let c = ShardedLru::new(10, 4);
        assert_eq!(c.capacity(), 10);
        assert_eq!(c.shard_count(), 4);
        // Shards own keys 0..4 mod 4 with capacities 3,3,2,2: filling one
        // residue class only evicts within that class.
        for key in [0u64, 4, 8, 12] {
            assert!(!c.touch(key));
        }
        // Shard 0 has capacity 3: key 0 (its LRU) was evicted by key 12.
        assert!(!c.touch(0));
        assert!(c.touch(8));
        assert!(c.touch(12));
    }

    #[test]
    fn zero_capacity_never_hits() {
        let c = ShardedLru::new(0, 8);
        assert!(!c.touch(1));
        assert!(!c.touch(1));
        assert!(c.is_empty());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let c = ShardedLru::new(4, 0);
        assert_eq!(c.shard_count(), 1);
        assert!(!c.touch(7));
        assert!(c.touch(7));
    }

    #[test]
    fn clear_forgets_all_shards() {
        let c = ShardedLru::new(16, 4);
        for key in 0..8u64 {
            c.touch(key);
        }
        assert_eq!(c.len(), 8);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.touch(3));
    }

    #[test]
    fn metrics_count_hits_misses_and_evictions_per_shard() {
        let triple = |n: usize| (0..n).map(|_| Arc::new(Counter::new())).collect::<Vec<_>>();
        let (hits, misses, evictions) = (triple(2), triple(2), triple(2));
        let m = CacheMetrics::new(hits.clone(), misses.clone(), evictions.clone());
        // Two shards of capacity 1 each.
        let c = ShardedLru::with_metrics(2, 2, Some(m));
        c.touch(0); // shard 0 miss
        c.touch(0); // shard 0 hit
        c.touch(2); // shard 0 miss + eviction of 0
        c.touch(1); // shard 1 miss
        assert_eq!(hits[0].get(), 1);
        assert_eq!(misses[0].get(), 2);
        assert_eq!(evictions[0].get(), 1);
        assert_eq!(hits[1].get(), 0);
        assert_eq!(misses[1].get(), 1);
        assert_eq!(evictions[1].get(), 0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn metrics_shard_mismatch_is_rejected() {
        let triple = |n: usize| (0..n).map(|_| Arc::new(Counter::new())).collect::<Vec<_>>();
        let m = CacheMetrics::new(triple(3), triple(3), triple(3));
        ShardedLru::with_metrics(8, 2, Some(m));
    }

    #[test]
    fn shards_are_independent_lrus() {
        // Two shards of capacity 1 each: traffic on one residue class
        // never evicts the other.
        let c = ShardedLru::new(2, 2);
        assert!(!c.touch(0)); // shard 0
        assert!(!c.touch(1)); // shard 1
        assert!(!c.touch(2)); // shard 0, evicts 0
        assert!(c.touch(1)); // shard 1 untouched by shard 0 churn
        assert!(!c.touch(0));
    }
}
