//! Simulated multi-disk storage for parallel similarity search.
//!
//! The paper evaluates its declustering technique on a cluster of 16
//! workstations with local disks and reports, as the search time of the
//! whole parallel X-tree, *the search time of the disk that accesses the
//! most pages*. This crate reproduces exactly that measurement environment
//! in software:
//!
//! * [`SimDisk`] — one simulated disk: a page store (4 KB pages backed by
//!   [`bytes::Bytes`]) with atomic read/write counters.
//! * [`DiskArray`] — an array of `n` simulated disks with snapshot-based
//!   per-query accounting ([`DiskArray::begin_query`] /
//!   [`QueryCost`]).
//! * [`DiskModel`] — converts page counts into service time (seek +
//!   rotational latency + transfer), so experiments can report model
//!   milliseconds as the paper reports wall-clock milliseconds.
//! * [`FaultInjector`] — per-disk runtime fault injection (failed, slow,
//!   flaky) used by the degraded-mode execution paths of the parallel
//!   engine; slow disks plug back into the [`DiskModel`] via
//!   [`FaultInjector::model_for`].
//! * [`VectorArena`] — flat row-major vector storage used by leaf pages so
//!   a page scan is one linear sweep instead of a pointer chase.
//! * [`LruTracker`] / [`ShardedLru`] — exact LRU page-cache tracking, and
//!   its sharded variant whose independently locked shards keep concurrent
//!   searches off a single global cache mutex.
//!
//! The simulator is deterministic: identical access sequences produce
//! identical costs, which keeps every experiment in this repository
//! reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arena;
pub mod array;
pub mod cache;
pub mod combiner;
pub mod disk;
pub mod fault;
pub mod model;
pub mod page;
pub mod sharded;
pub mod wal;

pub use arena::VectorArena;
pub use array::{DiskArray, QueryCost, QueryScope};
pub use cache::{LruTracker, TouchOutcome};
pub use combiner::ReadCombiner;
pub use disk::{DiskStats, SimDisk};
pub use fault::{FaultInjector, FaultKind, FaultMetrics};
pub use model::DiskModel;
pub use page::{PageId, PAGE_SIZE};
pub use sharded::{CacheMetrics, ShardedLru};
pub use wal::OpLog;

/// Errors produced by the simulated storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that was never allocated on this disk.
    UnknownPage {
        /// The disk on which the access was attempted.
        disk: usize,
        /// The offending page id.
        page: PageId,
    },
    /// A payload exceeded the fixed page size.
    PageOverflow {
        /// Size of the rejected payload in bytes.
        len: usize,
    },
    /// A disk array was constructed with zero disks.
    EmptyArray,
    /// An injected fault made the disk fail (see
    /// [`disk::SimDisk::fail_after_reads`]).
    DiskFailure {
        /// The failing disk.
        disk: usize,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::UnknownPage { disk, page } => {
                write!(f, "unknown page {page:?} on disk {disk}")
            }
            StorageError::PageOverflow { len } => {
                write!(f, "payload of {len} bytes exceeds page size {PAGE_SIZE}")
            }
            StorageError::EmptyArray => write!(f, "disk array must contain at least one disk"),
            StorageError::DiskFailure { disk } => write!(f, "injected failure on disk {disk}"),
        }
    }
}

impl std::error::Error for StorageError {}
