//! The disk service-time model.

use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::page::PAGE_SIZE;

/// A simple analytical disk model: each random page access pays an average
/// seek, half a rotation, and the transfer of one page.
///
/// The defaults of [`DiskModel::hp_workstation_1997`] approximate the
/// drives of the paper's HP735 workstation cluster; those of
/// [`DiskModel::modern_hdd`] a contemporary 7200 rpm SATA drive. The model
/// only affects the *scale* of reported times — speed-up and improvement
/// factors are ratios of page counts and are model-independent, which is
/// why the paper's qualitative results reproduce under any model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Average seek time in microseconds.
    pub avg_seek_us: f64,
    /// Average rotational delay in microseconds (half a revolution).
    pub avg_rotational_us: f64,
    /// Sustained transfer rate in megabytes per second.
    pub transfer_mb_per_s: f64,
    /// Fixed per-request controller / CPU overhead in microseconds.
    pub overhead_us: f64,
}

impl DiskModel {
    /// A drive of the paper's era (≈1997): 10 ms seek, 7200 rpm would be
    /// generous, so 5400 rpm (5.6 ms half-rotation), 5 MB/s transfer.
    pub fn hp_workstation_1997() -> Self {
        DiskModel {
            avg_seek_us: 10_000.0,
            avg_rotational_us: 5_600.0,
            transfer_mb_per_s: 5.0,
            overhead_us: 500.0,
        }
    }

    /// A modern 7200 rpm hard drive: 8 ms seek, 4.2 ms half-rotation,
    /// 180 MB/s transfer.
    pub fn modern_hdd() -> Self {
        DiskModel {
            avg_seek_us: 8_000.0,
            avg_rotational_us: 4_200.0,
            transfer_mb_per_s: 180.0,
            overhead_us: 100.0,
        }
    }

    /// A latency-free model: one page costs exactly one time unit (1 µs).
    /// Useful when an experiment wants to report pure page counts.
    pub fn unit() -> Self {
        DiskModel {
            avg_seek_us: 1.0,
            avg_rotational_us: 0.0,
            transfer_mb_per_s: f64::INFINITY,
            overhead_us: 0.0,
        }
    }

    /// This model with every latency component scaled by `multiplier`
    /// (seek, rotation, and overhead multiplied; transfer rate divided), so
    /// `scaled(m).service_time(p) ≈ m × service_time(p)`. Used to model
    /// degraded ("slow") disks without touching the healthy array's model.
    pub fn scaled(&self, multiplier: f64) -> DiskModel {
        DiskModel {
            avg_seek_us: self.avg_seek_us * multiplier,
            avg_rotational_us: self.avg_rotational_us * multiplier,
            transfer_mb_per_s: self.transfer_mb_per_s / multiplier,
            overhead_us: self.overhead_us * multiplier,
        }
    }

    /// Service time of a single random page read in microseconds.
    pub fn random_page_us(&self) -> f64 {
        let transfer_us = if self.transfer_mb_per_s.is_finite() {
            PAGE_SIZE as f64 / (self.transfer_mb_per_s * 1e6) * 1e6
        } else {
            0.0
        };
        self.avg_seek_us + self.avg_rotational_us + transfer_us + self.overhead_us
    }

    /// Service time of `pages` random page reads issued to one disk.
    pub fn service_time(&self, pages: u64) -> Duration {
        Duration::from_nanos((pages as f64 * self.random_page_us() * 1e3).round() as u64)
    }

    /// Service time of `pages` read *sequentially* (one seek + rotation,
    /// then streaming transfer). Used for bulk loads.
    pub fn sequential_time(&self, pages: u64) -> Duration {
        if pages == 0 {
            return Duration::ZERO;
        }
        let transfer_us = if self.transfer_mb_per_s.is_finite() {
            (pages as usize * PAGE_SIZE) as f64 / (self.transfer_mb_per_s * 1e6) * 1e6
        } else {
            0.0
        };
        let us = self.avg_seek_us + self.avg_rotational_us + self.overhead_us + transfer_us;
        Duration::from_nanos((us * 1e3).round() as u64)
    }
}

impl Default for DiskModel {
    /// The default model is the paper-era drive, so that reported numbers
    /// resemble the paper's milliseconds.
    fn default() -> Self {
        DiskModel::hp_workstation_1997()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_era_random_read_is_about_16ms() {
        let m = DiskModel::hp_workstation_1997();
        let us = m.random_page_us();
        assert!((15_000.0..18_000.0).contains(&us), "us = {us}");
    }

    #[test]
    fn unit_model_counts_pages() {
        let m = DiskModel::unit();
        assert_eq!(m.service_time(1000), Duration::from_micros(1000));
    }

    #[test]
    fn service_time_is_linear_in_pages() {
        let m = DiskModel::modern_hdd();
        let t1 = m.service_time(10).as_nanos();
        let t2 = m.service_time(20).as_nanos();
        assert!((t2 as i128 - 2 * t1 as i128).abs() <= 2);
    }

    #[test]
    fn scaled_model_multiplies_service_time() {
        let m = DiskModel::hp_workstation_1997();
        let s = m.scaled(2.5);
        let ratio = s.service_time(20).as_secs_f64() / m.service_time(20).as_secs_f64();
        assert!((ratio - 2.5).abs() < 1e-9, "ratio {ratio}");
        // The unit model's infinite transfer rate survives scaling.
        let u = DiskModel::unit().scaled(3.0);
        assert_eq!(u.service_time(100), Duration::from_micros(300));
    }

    #[test]
    fn sequential_is_faster_than_random() {
        let m = DiskModel::modern_hdd();
        assert!(m.sequential_time(100) < m.service_time(100));
        assert_eq!(m.sequential_time(0), Duration::ZERO);
    }
}
