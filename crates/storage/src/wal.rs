//! A minimal in-memory write-ahead operation log.
//!
//! [`OpLog`] backs the engine's streaming-ingest delta buffer: every
//! mutation is appended while a **capture** is open, so a background
//! shadow rebuild can snapshot the buffer, keep serving writes, and —
//! once the rebuilt index swaps in — replay exactly the tail of
//! operations that arrived during the build. Outside a capture the log
//! records nothing and costs nothing.
//!
//! The log is deliberately not thread-safe on its own: it is always
//! owned by the lock that guards the delta buffer it journals, so
//! append order is the buffer's mutation order by construction.

/// An append-only operation log with explicit capture windows.
#[derive(Debug)]
pub struct OpLog<T> {
    ops: Vec<T>,
    capturing: bool,
}

impl<T> OpLog<T> {
    /// An empty log with capture off.
    pub fn new() -> Self {
        OpLog {
            ops: Vec::new(),
            capturing: false,
        }
    }

    /// True while a capture window is open.
    pub fn is_capturing(&self) -> bool {
        self.capturing
    }

    /// Number of operations recorded in the open capture window.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends `op` if a capture window is open; drops it otherwise.
    pub fn record(&mut self, op: T) {
        if self.capturing {
            self.ops.push(op);
        }
    }

    /// Opens a capture window, discarding any previously captured tail.
    pub fn begin_capture(&mut self) {
        self.ops.clear();
        self.capturing = true;
    }

    /// Closes the capture window and returns the captured tail in
    /// append order.
    pub fn end_capture(&mut self) -> Vec<T> {
        self.capturing = false;
        std::mem::take(&mut self.ops)
    }
}

impl<T> Default for OpLog<T> {
    fn default() -> Self {
        OpLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_inside_a_capture_window() {
        let mut log: OpLog<u32> = OpLog::new();
        log.record(1);
        assert!(log.is_empty());
        log.begin_capture();
        log.record(2);
        log.record(3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.end_capture(), vec![2, 3]);
        assert!(!log.is_capturing());
        log.record(4);
        assert!(log.is_empty());
    }

    #[test]
    fn begin_capture_discards_a_stale_tail() {
        let mut log: OpLog<&str> = OpLog::default();
        log.begin_capture();
        log.record("stale");
        log.begin_capture();
        log.record("fresh");
        assert_eq!(log.end_capture(), vec!["fresh"]);
        assert_eq!(log.end_capture(), Vec::<&str>::new());
    }
}
