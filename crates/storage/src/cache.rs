//! An LRU page-cache tracker.
//!
//! The paper's workstations had main memory worth thousands of pages; hot
//! directory pages and recently used data pages are served from RAM. The
//! tracker implements exact LRU over opaque page keys in O(1) per access
//! (hash map + intrusive doubly-linked list over a slab), so experiments
//! can ask "how do the figures change with a page cache of size C per
//! disk?".

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// What one [`LruTracker::touch_reporting`] access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchOutcome {
    /// The key was already resident.
    pub hit: bool,
    /// Inserting the key displaced the least recently used resident.
    pub evicted: bool,
}

/// An exact LRU set of page keys with fixed capacity.
#[derive(Debug)]
pub struct LruTracker {
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Slot {
    key: u64,
    prev: usize,
    next: usize,
}

impl LruTracker {
    /// Creates a tracker holding at most `capacity` keys. A capacity of 0
    /// disables caching (every access misses).
    pub fn new(capacity: usize) -> Self {
        LruTracker {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Records an access to `key`. Returns `true` on a cache hit. On a
    /// miss the key is inserted, evicting the least recently used key if
    /// the tracker is full.
    pub fn touch(&mut self, key: u64) -> bool {
        self.touch_reporting(key).hit
    }

    /// Like [`LruTracker::touch`], but also reports whether the miss
    /// displaced a resident key — the signal behind per-shard eviction
    /// counters.
    pub fn touch_reporting(&mut self, key: u64) -> TouchOutcome {
        const HIT: TouchOutcome = TouchOutcome {
            hit: true,
            evicted: false,
        };
        const MISS: TouchOutcome = TouchOutcome {
            hit: false,
            evicted: false,
        };
        if self.capacity == 0 {
            return MISS;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            return HIT;
        }
        // Miss: insert, evicting if needed.
        let mut outcome = MISS;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            let old_key = self.slots[lru].key;
            self.unlink(lru);
            self.map.remove(&old_key);
            self.free.push(lru);
            outcome.evicted = true;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s] = Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.slots.push(Slot {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        outcome
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut lru = LruTracker::new(2);
        assert!(!lru.touch(1)); // miss
        assert!(!lru.touch(2)); // miss
        assert!(lru.touch(1)); // hit
        assert!(!lru.touch(3)); // miss, evicts 2 (LRU)
        assert!(!lru.touch(2)); // miss again
        assert!(lru.touch(3)); // 3 still cached
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut lru = LruTracker::new(0);
        assert!(!lru.touch(1));
        assert!(!lru.touch(1));
        assert!(lru.is_empty());
    }

    #[test]
    fn eviction_order_is_lru_not_fifo() {
        let mut lru = LruTracker::new(3);
        lru.touch(1);
        lru.touch(2);
        lru.touch(3);
        lru.touch(1); // refresh 1; LRU is now 2
        lru.touch(4); // evicts 2
        assert!(lru.touch(1));
        assert!(lru.touch(3));
        assert!(lru.touch(4));
        assert!(!lru.touch(2));
    }

    #[test]
    fn touch_reporting_flags_evictions() {
        let mut lru = LruTracker::new(2);
        assert_eq!(
            lru.touch_reporting(1),
            TouchOutcome {
                hit: false,
                evicted: false
            }
        );
        lru.touch(2);
        // Full: the next miss displaces key 1 (the LRU).
        assert_eq!(
            lru.touch_reporting(3),
            TouchOutcome {
                hit: false,
                evicted: true
            }
        );
        assert_eq!(
            lru.touch_reporting(3),
            TouchOutcome {
                hit: true,
                evicted: false
            }
        );
        // Zero capacity misses without evicting.
        let mut none = LruTracker::new(0);
        assert_eq!(
            none.touch_reporting(9),
            TouchOutcome {
                hit: false,
                evicted: false
            }
        );
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruTracker::new(2);
        lru.touch(1);
        lru.touch(2);
        lru.clear();
        assert!(lru.is_empty());
        assert!(!lru.touch(1));
    }

    #[test]
    fn stress_against_reference_model() {
        use std::collections::VecDeque;
        let mut lru = LruTracker::new(8);
        let mut reference: VecDeque<u64> = VecDeque::new(); // front = MRU
        let mut state = 0x12345678u64;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 24;
            let expect_hit = reference.contains(&key);
            let got_hit = lru.touch(key);
            assert_eq!(got_hit, expect_hit, "key {key}");
            if expect_hit {
                let pos = reference.iter().position(|&k| k == key).unwrap();
                reference.remove(pos);
            } else if reference.len() == 8 {
                reference.pop_back();
            }
            reference.push_front(key);
        }
    }
}
