//! Fixed-size disk pages.

use serde::{Deserialize, Serialize};

/// Page size in bytes. The paper's experiments use a block size of 4 KB.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page, local to one [`crate::SimDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// The page's position in its disk's page table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_display_and_index() {
        let p = PageId(42);
        assert_eq!(p.to_string(), "p42");
        assert_eq!(p.index(), 42);
    }

    #[test]
    fn page_ids_order_by_value() {
        assert!(PageId(1) < PageId(2));
        assert_eq!(PageId(7), PageId(7));
    }
}
