//! Arrays of simulated disks with per-query cost accounting.

use std::sync::Arc;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::disk::SimDisk;
use crate::fault::FaultInjector;
use crate::model::DiskModel;
use crate::StorageError;

/// An array of `n` independent simulated disks.
///
/// The array owns the service-time model and provides scoped accounting:
/// [`DiskArray::begin_query`] snapshots all counters, and the returned
/// [`QueryScope`] converts the counter deltas at the end of the query into
/// a [`QueryCost`]. This mirrors the paper's measurement procedure, where
/// the reported search time of the parallel X-tree is the service time of
/// its most-loaded disk.
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<Arc<SimDisk>>,
    model: DiskModel,
    faults: FaultInjector,
}

impl DiskArray {
    /// Creates an array of `n` empty disks.
    pub fn new(n: usize, model: DiskModel) -> Result<Self, StorageError> {
        if n == 0 {
            return Err(StorageError::EmptyArray);
        }
        let faults = FaultInjector::new(n);
        Ok(DiskArray {
            disks: (0..n)
                .map(|i| Arc::new(SimDisk::with_fault(i, faults.cell(i))))
                .collect(),
            model,
            faults,
        })
    }

    /// The array's fault injector: mark disks failed, slow, or flaky at
    /// runtime. Cloning the returned handle shares the same fault state.
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Always false: arrays have at least one disk.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The service-time model shared by all disks.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Returns disk `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn disk(&self, i: usize) -> &Arc<SimDisk> {
        &self.disks[i]
    }

    /// Iterates over the disks.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<SimDisk>> {
        self.disks.iter()
    }

    /// Total pages allocated across all disks.
    pub fn total_pages(&self) -> u64 {
        self.disks.iter().map(|d| d.page_count()).sum()
    }

    /// Per-disk allocated page counts — the load-balance view used by the
    /// recursive-declustering experiments.
    pub fn page_distribution(&self) -> Vec<u64> {
        self.disks.iter().map(|d| d.page_count()).collect()
    }

    /// Starts a measured scope: all reads performed until
    /// [`QueryScope::finish`] are attributed to the returned scope.
    pub fn begin_query(&self) -> QueryScope {
        QueryScope {
            base_reads: self.disks.iter().map(|d| d.read_count()).collect(),
            model: self.model,
        }
    }
}

/// An open accounting scope over a [`DiskArray`].
///
/// Scopes snapshot the *global* disk counters: reads performed by any
/// thread between `begin_query` and `finish` are attributed to the scope.
/// Run measured queries one at a time; concurrent queries still return
/// exact results, but their costs blend into whichever scopes are open.
#[derive(Debug, Clone)]
pub struct QueryScope {
    base_reads: Vec<u64>,
    model: DiskModel,
}

impl QueryScope {
    /// Closes the scope and returns the cost of everything read inside it.
    pub fn finish(self, array: &DiskArray) -> QueryCost {
        assert_eq!(
            array.len(),
            self.base_reads.len(),
            "scope finished against a different array"
        );
        let per_disk_reads: Vec<u64> = array
            .iter()
            .zip(self.base_reads.iter())
            .map(|(d, &base)| d.read_count() - base)
            .collect();
        QueryCost::from_reads(per_disk_reads, &self.model)
    }
}

/// The cost of one (or several) queries against a disk array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCost {
    /// Pages read on each disk inside the scope.
    pub per_disk_reads: Vec<u64>,
    /// The largest per-disk page count — the paper's cost metric for a
    /// parallel search (all disks work concurrently, the slowest gates).
    pub max_reads: u64,
    /// The total page count — the cost metric for a sequential search.
    pub total_reads: u64,
    /// Model service time of the parallel execution (`max_reads` pages).
    pub parallel_time: Duration,
    /// Model service time of a sequential execution (`total_reads` pages).
    pub sequential_time: Duration,
}

impl QueryCost {
    /// Builds a cost record from per-disk read counts.
    pub fn from_reads(per_disk_reads: Vec<u64>, model: &DiskModel) -> Self {
        let max_reads = per_disk_reads.iter().copied().max().unwrap_or(0);
        let total_reads = per_disk_reads.iter().copied().sum();
        QueryCost {
            max_reads,
            total_reads,
            parallel_time: model.service_time(max_reads),
            sequential_time: model.service_time(total_reads),
            per_disk_reads,
        }
    }

    /// The speed-up this parallel execution achieves over running the same
    /// page accesses on a single disk: `total / max`.
    ///
    /// Returns 1.0 for an empty query (no pages read).
    pub fn speedup(&self) -> f64 {
        if self.max_reads == 0 {
            1.0
        } else {
            self.total_reads as f64 / self.max_reads as f64
        }
    }

    /// Imbalance between the busiest and the average disk: 1.0 is a
    /// perfectly even distribution.
    pub fn imbalance(&self) -> f64 {
        if self.total_reads == 0 {
            return 1.0;
        }
        let avg = self.total_reads as f64 / self.per_disk_reads.len() as f64;
        self.max_reads as f64 / avg
    }

    /// Accumulates another cost record (per-disk element-wise), e.g. to
    /// average over a query workload.
    pub fn merge(&mut self, other: &QueryCost, model: &DiskModel) {
        assert_eq!(
            self.per_disk_reads.len(),
            other.per_disk_reads.len(),
            "cannot merge costs from different array sizes"
        );
        for (a, b) in self.per_disk_reads.iter_mut().zip(&other.per_disk_reads) {
            *a += b;
        }
        *self = QueryCost::from_reads(std::mem::take(&mut self.per_disk_reads), model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn rejects_empty_array() {
        assert_eq!(
            DiskArray::new(0, DiskModel::unit()).unwrap_err(),
            StorageError::EmptyArray
        );
    }

    #[test]
    fn scope_counts_only_inside() {
        let array = DiskArray::new(4, DiskModel::unit()).unwrap();
        let p = array.disk(0).allocate(Bytes::from_static(b"x")).unwrap();
        array.disk(0).read(p).unwrap(); // outside the scope

        let scope = array.begin_query();
        array.disk(0).read(p).unwrap();
        array.disk(0).read(p).unwrap();
        array.disk(2).touch_read(5);
        let cost = scope.finish(&array);

        assert_eq!(cost.per_disk_reads, vec![2, 0, 5, 0]);
        assert_eq!(cost.max_reads, 5);
        assert_eq!(cost.total_reads, 7);
    }

    #[test]
    fn cost_speedup_and_imbalance() {
        let model = DiskModel::unit();
        let even = QueryCost::from_reads(vec![3, 3, 3, 3], &model);
        assert_eq!(even.speedup(), 4.0);
        assert_eq!(even.imbalance(), 1.0);

        let skewed = QueryCost::from_reads(vec![12, 0, 0, 0], &model);
        assert_eq!(skewed.speedup(), 1.0);
        assert_eq!(skewed.imbalance(), 4.0);

        let empty = QueryCost::from_reads(vec![0, 0], &model);
        assert_eq!(empty.speedup(), 1.0);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn parallel_time_tracks_max_disk() {
        let model = DiskModel::hp_workstation_1997();
        let cost = QueryCost::from_reads(vec![10, 2, 7], &model);
        assert_eq!(cost.parallel_time, model.service_time(10));
        assert_eq!(cost.sequential_time, model.service_time(19));
        assert!(cost.parallel_time < cost.sequential_time);
    }

    #[test]
    fn merge_accumulates() {
        let model = DiskModel::unit();
        let mut a = QueryCost::from_reads(vec![1, 2], &model);
        let b = QueryCost::from_reads(vec![3, 0], &model);
        a.merge(&b, &model);
        assert_eq!(a.per_disk_reads, vec![4, 2]);
        assert_eq!(a.max_reads, 4);
        assert_eq!(a.total_reads, 6);
    }

    #[test]
    fn page_distribution_reports_per_disk_pages() {
        let array = DiskArray::new(3, DiskModel::unit()).unwrap();
        array.disk(1).allocate(Bytes::new()).unwrap();
        array.disk(1).allocate(Bytes::new()).unwrap();
        array.disk(2).allocate(Bytes::new()).unwrap();
        assert_eq!(array.page_distribution(), vec![0, 2, 1]);
        assert_eq!(array.total_pages(), 3);
    }
}
