//! A single simulated disk.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::fault::FaultCell;
use crate::page::{PageId, PAGE_SIZE};
use crate::StorageError;

/// Monotonic access counters of one disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of page reads since creation.
    pub reads: u64,
    /// Number of page writes (including allocations) since creation.
    pub writes: u64,
    /// Number of pages currently allocated.
    pub pages: u64,
}

/// One simulated disk: a growable table of 4 KB pages plus atomic access
/// counters.
///
/// Reads and writes are thread-safe; the counters use relaxed atomics
/// because experiments only read them at quiescent points (between
/// queries). Page payloads are stored as [`Bytes`] so cloning a page out of
/// the store is a cheap reference-count bump.
#[derive(Debug)]
pub struct SimDisk {
    id: usize,
    pages: RwLock<Vec<Bytes>>,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Fault injection: number of successful reads remaining before the
    /// disk starts failing (-1 = healthy forever).
    reads_until_failure: AtomicI64,
    /// Fault state shared with the array's [`crate::FaultInjector`]
    /// (absent for standalone disks).
    fault: Option<Arc<FaultCell>>,
}

impl SimDisk {
    /// Creates an empty disk with the given array-local id.
    pub fn new(id: usize) -> Self {
        SimDisk {
            id,
            pages: RwLock::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            reads_until_failure: AtomicI64::new(-1),
            fault: None,
        }
    }

    /// Creates a disk wired to an injector-owned fault cell.
    pub(crate) fn with_fault(id: usize, fault: Arc<FaultCell>) -> Self {
        let mut disk = SimDisk::new(id);
        disk.fault = Some(fault);
        disk
    }

    /// Fault injection: after `reads` further successful page reads, every
    /// subsequent [`SimDisk::read`] fails with
    /// [`StorageError::DiskFailure`] until [`SimDisk::heal`] is called.
    /// Models a failing drive for error-path tests.
    pub fn fail_after_reads(&self, reads: u64) {
        self.reads_until_failure
            .store(reads as i64, Ordering::SeqCst);
    }

    /// Clears any injected fault.
    pub fn heal(&self) {
        self.reads_until_failure.store(-1, Ordering::SeqCst);
    }

    /// True if the disk is currently failing reads — because an injected
    /// read budget ran out or the array's fault injector marked it dead.
    pub fn is_failing(&self) -> bool {
        self.reads_until_failure.load(Ordering::SeqCst) == 0
            || self.fault.as_ref().is_some_and(|f| f.is_failed())
    }

    fn check_fault(&self) -> Result<(), StorageError> {
        if self.fault.as_ref().is_some_and(|f| f.is_failed()) {
            return Err(StorageError::DiskFailure { disk: self.id });
        }
        // Decrement the budget if a fault is armed; fail at zero.
        let mut current = self.reads_until_failure.load(Ordering::SeqCst);
        loop {
            if current < 0 {
                return Ok(()); // healthy
            }
            if current == 0 {
                return Err(StorageError::DiskFailure { disk: self.id });
            }
            match self.reads_until_failure.compare_exchange(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// The disk's position within its [`crate::DiskArray`].
    pub fn id(&self) -> usize {
        self.id
    }

    /// Allocates a new page containing `payload` and returns its id.
    ///
    /// # Errors
    ///
    /// Fails with [`StorageError::PageOverflow`] if the payload exceeds
    /// [`PAGE_SIZE`].
    pub fn allocate(&self, payload: Bytes) -> Result<PageId, StorageError> {
        if payload.len() > PAGE_SIZE {
            return Err(StorageError::PageOverflow { len: payload.len() });
        }
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u64);
        pages.push(payload);
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Overwrites an existing page.
    pub fn write(&self, page: PageId, payload: Bytes) -> Result<(), StorageError> {
        if payload.len() > PAGE_SIZE {
            return Err(StorageError::PageOverflow { len: payload.len() });
        }
        let mut pages = self.pages.write();
        let slot = pages
            .get_mut(page.index())
            .ok_or(StorageError::UnknownPage {
                disk: self.id,
                page,
            })?;
        *slot = payload;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Reads a page, charging one page access. Fails if a fault has been
    /// injected with [`SimDisk::fail_after_reads`] and the budget is
    /// exhausted.
    pub fn read(&self, page: PageId) -> Result<Bytes, StorageError> {
        self.check_fault()?;
        let pages = self.pages.read();
        let payload = pages.get(page.index()).ok_or(StorageError::UnknownPage {
            disk: self.id,
            page,
        })?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(payload.clone())
    }

    /// Charges a page read without returning the payload. Index structures
    /// that keep their nodes cached in memory but must still account for
    /// the I/O their traversal would cause call this on every node visit.
    pub fn touch_read(&self, pages: u64) {
        self.reads.fetch_add(pages, Ordering::Relaxed);
    }

    /// Number of page reads since creation.
    pub fn read_count(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of page writes since creation.
    pub fn write_count(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.read().len() as u64
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.read_count(),
            writes: self.write_count(),
            pages: self.page_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_round_trip() {
        let disk = SimDisk::new(3);
        assert_eq!(disk.id(), 3);
        let p = disk.allocate(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(disk.read(p).unwrap(), Bytes::from_static(b"hello"));
        disk.write(p, Bytes::from_static(b"world")).unwrap();
        assert_eq!(disk.read(p).unwrap(), Bytes::from_static(b"world"));
        assert_eq!(disk.stats().reads, 2);
        assert_eq!(disk.stats().writes, 2);
        assert_eq!(disk.stats().pages, 1);
    }

    #[test]
    fn rejects_oversized_payload() {
        let disk = SimDisk::new(0);
        let big = Bytes::from(vec![0u8; PAGE_SIZE + 1]);
        assert!(matches!(
            disk.allocate(big.clone()),
            Err(StorageError::PageOverflow { .. })
        ));
        let p = disk.allocate(Bytes::new()).unwrap();
        assert!(matches!(
            disk.write(p, big),
            Err(StorageError::PageOverflow { .. })
        ));
    }

    #[test]
    fn rejects_unknown_page() {
        let disk = SimDisk::new(1);
        assert!(matches!(
            disk.read(PageId(9)),
            Err(StorageError::UnknownPage { disk: 1, .. })
        ));
        assert!(matches!(
            disk.write(PageId(9), Bytes::new()),
            Err(StorageError::UnknownPage { .. })
        ));
    }

    #[test]
    fn touch_read_accounts_without_payload() {
        let disk = SimDisk::new(0);
        disk.touch_read(5);
        disk.touch_read(2);
        assert_eq!(disk.read_count(), 7);
    }

    #[test]
    fn fault_injection_fails_reads_after_budget() {
        let disk = SimDisk::new(2);
        let p = disk.allocate(Bytes::from_static(b"x")).unwrap();
        disk.fail_after_reads(2);
        assert!(disk.read(p).is_ok());
        assert!(disk.read(p).is_ok());
        assert!(matches!(
            disk.read(p),
            Err(StorageError::DiskFailure { disk: 2 })
        ));
        assert!(disk.is_failing());
        disk.heal();
        assert!(disk.read(p).is_ok());
        // Counters only advanced on successful reads.
        assert_eq!(disk.read_count(), 3);
    }

    #[test]
    fn injector_marked_failure_blocks_reads() {
        use crate::{DiskArray, DiskModel};
        let array = DiskArray::new(2, DiskModel::unit()).unwrap();
        let p = array.disk(1).allocate(Bytes::from_static(b"x")).unwrap();
        array.faults().fail(1);
        assert!(array.disk(1).is_failing());
        assert!(matches!(
            array.disk(1).read(p),
            Err(StorageError::DiskFailure { disk: 1 })
        ));
        array.faults().heal(1);
        assert!(array.disk(1).read(p).is_ok());
    }

    #[test]
    fn concurrent_touches_are_counted() {
        use std::sync::Arc;
        let disk = Arc::new(SimDisk::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let d = Arc::clone(&disk);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    d.touch_read(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(disk.read_count(), 8000);
    }
}
