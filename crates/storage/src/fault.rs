//! Injectable disk faults: failed, slow, and flaky disks.
//!
//! A [`FaultInjector`] rides along with every [`crate::DiskArray`] and lets
//! tests and experiments degrade individual disks at runtime:
//!
//! * **failed** — the disk is dead; every read fails until it is healed.
//! * **slow** — reads succeed, but the disk's service time is scaled by a
//!   latency multiplier ([`FaultInjector::model_for`] plugs the multiplier
//!   into the [`DiskModel`]).
//! * **flaky** — each read independently fails with a configured
//!   probability, drawn from a deterministic per-disk splitmix64 stream so
//!   degraded runs are reproducible.
//!
//! Injection is control-plane only: arming or healing a fault is a couple
//! of atomic stores, and the hot query path pays a single relaxed load
//! ([`FaultInjector::any_armed`]) while the array is healthy.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parsim_obs::Counter;

use crate::model::DiskModel;

/// Cumulative counters recording what a [`FaultInjector`] has done.
///
/// Attached after construction via [`FaultInjector::set_metrics`]; the
/// handles usually come from a `parsim_obs::MetricsRegistry` owned by the
/// parallel engine. All three are control-plane or degraded-path events,
/// so the healthy hot path never touches them.
#[derive(Debug, Clone)]
pub struct FaultMetrics {
    /// Faults armed via [`FaultInjector::inject`] (replacing an armed
    /// fault counts as a new injection).
    pub faults_injected: Arc<Counter>,
    /// Armed faults cleared via [`FaultInjector::heal`] (no-op heals are
    /// not counted).
    pub faults_healed: Arc<Counter>,
    /// Flaky reads that came up as errors in
    /// [`FaultInjector::draw_read_error`].
    pub read_errors: Arc<Counter>,
}

/// The failure mode injected into one simulated disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The disk is dead: every read fails until the disk is healed.
    Failed,
    /// Reads succeed but the disk's modeled service time is scaled by this
    /// factor (`> 1.0` is slower).
    Slow {
        /// Latency multiplier applied to the disk's service-time model.
        multiplier: f64,
    },
    /// Each read independently fails with this probability; readers retry
    /// or fail over according to their own policy.
    Flaky {
        /// Per-read error probability in `[0, 1]`.
        error_probability: f64,
    },
}

const MODE_HEALTHY: u8 = 0;
const MODE_FAILED: u8 = 1;
const MODE_SLOW: u8 = 2;
const MODE_FLAKY: u8 = 3;

/// Per-disk fault state, shared between the injector and the disk.
#[derive(Debug)]
pub(crate) struct FaultCell {
    /// One of the `MODE_*` constants.
    mode: AtomicU8,
    /// The f64 parameter of the mode (multiplier or probability) as bits.
    param: AtomicU64,
    /// splitmix64 state for the flaky-read error stream.
    rng: AtomicU64,
}

impl FaultCell {
    fn new(disk: usize) -> Self {
        FaultCell {
            mode: AtomicU8::new(MODE_HEALTHY),
            param: AtomicU64::new(0),
            // Distinct, non-zero default seed per disk.
            rng: AtomicU64::new(splitmix64(disk as u64 ^ 0xD15C_FA17)),
        }
    }

    pub(crate) fn is_failed(&self) -> bool {
        self.mode.load(Ordering::SeqCst) == MODE_FAILED
    }

    fn kind(&self) -> Option<FaultKind> {
        match self.mode.load(Ordering::SeqCst) {
            MODE_FAILED => Some(FaultKind::Failed),
            MODE_SLOW => Some(FaultKind::Slow {
                multiplier: f64::from_bits(self.param.load(Ordering::SeqCst)),
            }),
            MODE_FLAKY => Some(FaultKind::Flaky {
                error_probability: f64::from_bits(self.param.load(Ordering::SeqCst)),
            }),
            _ => None,
        }
    }

    /// Advances the per-disk RNG and returns the next uniform draw in
    /// `[0, 1)`.
    fn next_unit(&self) -> f64 {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let state = self
            .rng
            .fetch_add(GOLDEN, Ordering::Relaxed)
            .wrapping_add(GOLDEN);
        let z = splitmix64(state);
        // 53 random mantissa bits → uniform double in [0, 1).
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One splitmix64 finalization round.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runtime fault injection over the disks of a [`crate::DiskArray`].
///
/// The injector is cheaply cloneable (all state is shared), so experiment
/// code can keep a handle while the engine owns the array.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cells: Vec<Arc<FaultCell>>,
    /// Number of disks with a fault currently armed — lets hot paths skip
    /// all per-disk checks while the array is healthy.
    armed: Arc<AtomicUsize>,
    /// Optional cumulative counters, shared by all clones. `OnceLock::get`
    /// is a single atomic load, and it is only consulted on control-plane
    /// calls and flaky-read draws — never on the healthy query path.
    metrics: Arc<OnceLock<FaultMetrics>>,
}

impl FaultInjector {
    /// Creates an all-healthy injector for `disks` disks.
    pub fn new(disks: usize) -> Self {
        FaultInjector {
            cells: (0..disks).map(|i| Arc::new(FaultCell::new(i))).collect(),
            armed: Arc::new(AtomicUsize::new(0)),
            metrics: Arc::new(OnceLock::new()),
        }
    }

    /// Attaches cumulative counters to this injector (and every clone of
    /// it). Can be set at most once; later calls are ignored.
    pub fn set_metrics(&self, metrics: FaultMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// Number of disks covered.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the injector covers no disks.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub(crate) fn cell(&self, disk: usize) -> Arc<FaultCell> {
        Arc::clone(&self.cells[disk])
    }

    fn set_mode(&self, disk: usize, mode: u8, param: f64) -> bool {
        let cell = &self.cells[disk];
        cell.param.store(param.to_bits(), Ordering::SeqCst);
        let prev = cell.mode.swap(mode, Ordering::SeqCst);
        let was_armed = prev != MODE_HEALTHY;
        let is_armed = mode != MODE_HEALTHY;
        if is_armed && !was_armed {
            self.armed.fetch_add(1, Ordering::SeqCst);
        } else if !is_armed && was_armed {
            self.armed.fetch_sub(1, Ordering::SeqCst);
        }
        was_armed
    }

    /// Injects `fault` into `disk`, replacing any previous fault.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range, if a slow multiplier is not `≥ 1`,
    /// or if a flaky probability is outside `[0, 1]`.
    pub fn inject(&self, disk: usize, fault: FaultKind) {
        match fault {
            FaultKind::Failed => {
                self.set_mode(disk, MODE_FAILED, 0.0);
            }
            FaultKind::Slow { multiplier } => {
                assert!(
                    multiplier.is_finite() && multiplier >= 1.0,
                    "slow-disk multiplier must be a finite value ≥ 1, got {multiplier}"
                );
                self.set_mode(disk, MODE_SLOW, multiplier);
            }
            FaultKind::Flaky { error_probability } => {
                assert!(
                    (0.0..=1.0).contains(&error_probability),
                    "flaky error probability must be in [0, 1], got {error_probability}"
                );
                self.set_mode(disk, MODE_FLAKY, error_probability);
            }
        }
        if let Some(m) = self.metrics.get() {
            m.faults_injected.inc();
        }
    }

    /// Marks `disk` as dead ([`FaultKind::Failed`]).
    pub fn fail(&self, disk: usize) {
        self.inject(disk, FaultKind::Failed);
    }

    /// Marks `disk` as slow by `multiplier` ([`FaultKind::Slow`]).
    pub fn slow(&self, disk: usize, multiplier: f64) {
        self.inject(disk, FaultKind::Slow { multiplier });
    }

    /// Marks `disk` as flaky with the given per-read error probability
    /// ([`FaultKind::Flaky`]).
    pub fn flaky(&self, disk: usize, error_probability: f64) {
        self.inject(disk, FaultKind::Flaky { error_probability });
    }

    /// Clears any fault on `disk`.
    pub fn heal(&self, disk: usize) {
        let was_armed = self.set_mode(disk, MODE_HEALTHY, 0.0);
        if was_armed {
            if let Some(m) = self.metrics.get() {
                m.faults_healed.inc();
            }
        }
    }

    /// Clears all faults.
    pub fn heal_all(&self) {
        for disk in 0..self.cells.len() {
            self.heal(disk);
        }
    }

    /// Reseeds the flaky-read error stream of `disk` for reproducible runs.
    pub fn seed(&self, disk: usize, seed: u64) {
        self.cells[disk].rng.store(seed, Ordering::SeqCst);
    }

    /// The fault currently armed on `disk`, if any.
    pub fn fault(&self, disk: usize) -> Option<FaultKind> {
        self.cells[disk].kind()
    }

    /// True if `disk` is currently dead.
    pub fn is_failed(&self, disk: usize) -> bool {
        self.cells[disk].is_failed()
    }

    /// The service-time multiplier of `disk` (1.0 unless slow).
    pub fn latency_multiplier(&self, disk: usize) -> f64 {
        match self.fault(disk) {
            Some(FaultKind::Slow { multiplier }) => multiplier,
            _ => 1.0,
        }
    }

    /// True if any disk currently has a fault armed. A single relaxed
    /// atomic load — the fast-path gate for query execution.
    pub fn any_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst) > 0
    }

    /// The disks currently marked dead, in ascending order.
    pub fn failed_disks(&self) -> Vec<usize> {
        (0..self.cells.len())
            .filter(|&d| self.is_failed(d))
            .collect()
    }

    /// Simulates one read against `disk`'s flaky-error stream: returns true
    /// if the read fails. Always false unless the disk is flaky; each call
    /// advances the deterministic per-disk stream.
    pub fn draw_read_error(&self, disk: usize) -> bool {
        let error = match self.fault(disk) {
            Some(FaultKind::Flaky { error_probability }) => {
                self.cells[disk].next_unit() < error_probability
            }
            _ => false,
        };
        if error {
            if let Some(m) = self.metrics.get() {
                m.read_errors.inc();
            }
        }
        error
    }

    /// The effective service-time model of `disk`: `base` scaled by the
    /// disk's latency multiplier when it is slow, `base` unchanged
    /// otherwise. This is how injected faults plug into the [`DiskModel`].
    pub fn model_for(&self, disk: usize, base: &DiskModel) -> DiskModel {
        let m = self.latency_multiplier(disk);
        if m == 1.0 {
            *base
        } else {
            base.scaled(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_injector_is_free_of_faults() {
        let f = FaultInjector::new(4);
        assert_eq!(f.len(), 4);
        assert!(!f.any_armed());
        assert!(f.failed_disks().is_empty());
        for d in 0..4 {
            assert_eq!(f.fault(d), None);
            assert!(!f.is_failed(d));
            assert_eq!(f.latency_multiplier(d), 1.0);
            assert!(!f.draw_read_error(d));
        }
    }

    #[test]
    fn inject_heal_round_trip() {
        let f = FaultInjector::new(3);
        f.fail(0);
        f.slow(1, 4.0);
        f.flaky(2, 0.5);
        assert!(f.any_armed());
        assert_eq!(f.failed_disks(), vec![0]);
        assert_eq!(f.fault(0), Some(FaultKind::Failed));
        assert_eq!(f.fault(1), Some(FaultKind::Slow { multiplier: 4.0 }));
        assert_eq!(
            f.fault(2),
            Some(FaultKind::Flaky {
                error_probability: 0.5
            })
        );
        assert_eq!(f.latency_multiplier(1), 4.0);
        f.heal_all();
        assert!(!f.any_armed());
        assert!(f.failed_disks().is_empty());
    }

    #[test]
    fn armed_count_tracks_mode_transitions() {
        let f = FaultInjector::new(2);
        f.fail(0);
        f.slow(0, 2.0); // replacing a fault must not double-count
        assert!(f.any_armed());
        f.heal(0);
        assert!(!f.any_armed());
        f.heal(0); // double heal is a no-op
        assert!(!f.any_armed());
    }

    #[test]
    fn flaky_draws_match_probability_and_are_reproducible() {
        let f = FaultInjector::new(1);
        f.flaky(0, 0.25);
        f.seed(0, 42);
        let first: Vec<bool> = (0..4096).map(|_| f.draw_read_error(0)).collect();
        let errors = first.iter().filter(|&&e| e).count() as f64 / 4096.0;
        assert!((errors - 0.25).abs() < 0.05, "error rate {errors}");
        // Reseeding replays the identical stream.
        f.seed(0, 42);
        let second: Vec<bool> = (0..4096).map(|_| f.draw_read_error(0)).collect();
        assert_eq!(first, second);
        // Probability 0 and 1 are exact.
        f.flaky(0, 0.0);
        assert!((0..100).all(|_| !f.draw_read_error(0)));
        f.flaky(0, 1.0);
        assert!((0..100).all(|_| f.draw_read_error(0)));
    }

    #[test]
    fn model_for_scales_only_slow_disks() {
        let f = FaultInjector::new(2);
        let base = DiskModel::hp_workstation_1997();
        f.slow(0, 3.0);
        let scaled = f.model_for(0, &base);
        let healthy = f.model_for(1, &base);
        assert_eq!(healthy, base);
        let t = base.service_time(10).as_secs_f64();
        let ts = scaled.service_time(10).as_secs_f64();
        assert!((ts / t - 3.0).abs() < 1e-6, "ratio {}", ts / t);
    }

    #[test]
    fn metrics_count_injections_heals_and_read_errors() {
        let f = FaultInjector::new(2);
        let m = FaultMetrics {
            faults_injected: Arc::new(Counter::new()),
            faults_healed: Arc::new(Counter::new()),
            read_errors: Arc::new(Counter::new()),
        };
        f.set_metrics(m.clone());
        let clone = f.clone(); // counters are shared by clones
        clone.fail(0);
        f.slow(0, 2.0); // replacement counts as a new injection
        f.flaky(1, 1.0);
        assert_eq!(m.faults_injected.get(), 3);
        assert!(f.draw_read_error(1));
        assert!(!f.draw_read_error(0)); // slow disks never error
        assert_eq!(m.read_errors.get(), 1);
        f.heal_all();
        f.heal(0); // no-op heal is not counted
        assert_eq!(m.faults_healed.get(), 2);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn rejects_speedup_multiplier() {
        FaultInjector::new(1).slow(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        FaultInjector::new(1).flaky(0, 1.5);
    }
}
