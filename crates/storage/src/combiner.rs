//! Cross-query read combining for one disk.
//!
//! When many queries of one submission **wave** are in flight against the
//! same disk, they frequently need the same hot pages (root, upper
//! directory levels, popular leaves). A [`ReadCombiner`] tracks which
//! pages the current wave has already physically read: the first claim of
//! a page wins (and performs the read), every later claim within the same
//! wave is **coalesced** — it rides the earlier read instead of charging
//! the disk again.
//!
//! The combiner is deliberately dumb about *what* a wave is: callers hand
//! it an opaque wave id and the window resets whenever the id changes.
//! Correctness never depends on the window — a reset merely means the
//! next claim of a page is charged again — so wave ids only shape the
//! *cost* of execution, never its answers.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The pages one wave of queries has already read from a disk. See the
/// module docs.
#[derive(Debug, Default)]
pub struct ReadCombiner {
    window: Mutex<Window>,
    coalesced: AtomicU64,
}

#[derive(Debug, Default)]
struct Window {
    wave: u64,
    seen: HashSet<u64>,
}

impl ReadCombiner {
    /// A combiner with an empty window on wave 0.
    pub fn new() -> Self {
        ReadCombiner::default()
    }

    /// Opens `wave`'s window: if it differs from the current wave the set
    /// of seen pages is cleared. Idempotent within a wave.
    pub fn begin_wave(&self, wave: u64) {
        let mut w = self.window.lock().expect("combiner lock is never poisoned");
        if w.wave != wave {
            w.wave = wave;
            w.seen.clear();
        }
    }

    /// Claims `page` for the current wave. Returns `true` if this is the
    /// wave's first claim — the caller must perform the physical read —
    /// and `false` if the page was already read by this wave (the caller
    /// coalesces).
    pub fn claim(&self, page: u64) -> bool {
        let mut w = self.window.lock().expect("combiner lock is never poisoned");
        let first = w.seen.insert(page);
        if !first {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        first
    }

    /// Total claims that were coalesced (served by an earlier read of the
    /// same wave) since the combiner was created.
    pub fn coalesced_reads(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Pages in the current wave's window (physically read so far).
    pub fn window_len(&self) -> usize {
        self.window
            .lock()
            .expect("combiner lock is never poisoned")
            .seen
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_claim_reads_later_claims_coalesce() {
        let c = ReadCombiner::new();
        c.begin_wave(1);
        assert!(c.claim(7));
        assert!(!c.claim(7));
        assert!(!c.claim(7));
        assert!(c.claim(8));
        assert_eq!(c.coalesced_reads(), 2);
        assert_eq!(c.window_len(), 2);
    }

    #[test]
    fn new_wave_resets_the_window_but_not_the_counter() {
        let c = ReadCombiner::new();
        c.begin_wave(1);
        assert!(c.claim(3));
        assert!(!c.claim(3));
        c.begin_wave(2);
        // Same page charges again under the new wave.
        assert!(c.claim(3));
        assert!(!c.claim(3));
        assert_eq!(c.coalesced_reads(), 2);
    }

    #[test]
    fn begin_wave_is_idempotent_within_a_wave() {
        let c = ReadCombiner::new();
        c.begin_wave(5);
        assert!(c.claim(1));
        c.begin_wave(5);
        assert!(!c.claim(1), "re-opening the same wave must keep the window");
    }
}
