//! Flat, row-major storage for fixed-dimension vectors.
//!
//! The paper's hot loop — scanning the points of a leaf page against a
//! query — is memory-bound long before it is compute-bound. Storing each
//! point as its own heap allocation (`Vec<Point>`, each a `Box<[f64]>`)
//! makes that scan a pointer chase; a [`VectorArena`] instead packs all
//! rows of one leaf into a single `Vec<f64>`:
//!
//! ```text
//! dim = 3, len = 4
//! data: [ x0 y0 z0 | x1 y1 z1 | x2 y2 z2 | x3 y3 z3 ]
//!         row(0)     row(1)     row(2)     row(3)
//! ```
//!
//! so a leaf scan is one linear sweep the prefetcher can follow, and the
//! whole block can be handed to the batch distance kernel
//! (`parsim_geometry::kernel::dist2_batch`) at once.
//!
//! # Precision mirrors
//!
//! Next to the canonical f64 rows the arena maintains two cheap mirrors,
//! kept in sync on every [`VectorArena::push`] / `swap_remove` / `clear`
//! so bulk load, persistence and incremental inserts all get them for
//! free:
//!
//! * an **f32 mirror** (same row-major layout, each coordinate cast), with
//!   [`VectorArena::f32_radius`] — the largest certified displacement
//!   `‖row − row₃₂‖₂` over all rows, and
//! * a **q8 mirror**: every coordinate scalar-quantized to a u8 code on a
//!   per-block uniform grid `value ≈ q8_min + code·q8_scale`, the grid
//!   spanning the block's global coordinate min/max, with
//!   [`VectorArena::q8_radius`] the matching displacement bound.
//!
//! The mirrors never answer anything on their own; the two-phase leaf
//! scan uses them with the certified lower-bound helpers in
//! `parsim_geometry::kernel` and re-ranks every surviving row with the
//! f64 kernels. The radii are deliberately maintained as *overestimates*
//! (a `swap_remove` keeps the old maximum, a grid widened by requantize
//! keeps its new radius): a too-large radius only weakens pruning, never
//! correctness. Pushing a row outside the current q8 grid requantizes the
//! whole block — O(len·dim), acceptable for page-sized leaf blocks.

use parsim_geometry::kernel::{displacement_norm_f32, displacement_norm_q8};

/// A row-major block of `len()` vectors of `dim` coordinates each, plus
/// f32 and q8 mirrors for the cheap scan tiers (see the module docs).
#[derive(Clone, Debug)]
pub struct VectorArena {
    dim: usize,
    data: Vec<f64>,
    /// Row-major f32 casts of `data`.
    mirror32: Vec<f32>,
    /// Max over rows of the certified displacement `‖row − row₃₂‖₂`.
    r32: f64,
    /// Row-major u8 codes of `data` on the block grid.
    codes: Vec<u8>,
    /// Grid origin (block-global coordinate minimum at last requantize).
    qmin: f64,
    /// Block-global coordinate maximum at last requantize.
    qmax: f64,
    /// Grid step `(qmax − qmin) / 255`; `0` while degenerate.
    qscale: f64,
    /// Max over rows of the certified displacement `‖row − roŵ‖₂`.
    rq8: f64,
}

/// Two arenas are equal when they hold the same rows. The mirror state is
/// excluded on purpose: it is a derived cache whose exact radii and grid
/// depend on the *history* of pushes and removals (overestimates are kept
/// across `swap_remove`), so two arenas with identical contents built
/// along different paths still compare equal.
impl PartialEq for VectorArena {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.data == other.data
    }
}

/// Encodes one coordinate on a grid; degenerate grids map everything to
/// code 0 (the block is then excluded from q8 scanning via
/// [`VectorArena::q8_grid`]).
#[inline]
fn encode(v: f64, qmin: f64, qscale: f64) -> u8 {
    if qscale > 0.0 && qscale.is_finite() {
        ((v - qmin) / qscale).round().clamp(0.0, 255.0) as u8
    } else {
        0
    }
}

impl VectorArena {
    /// An empty arena for vectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional arena");
        VectorArena {
            dim,
            data: Vec::new(),
            mirror32: Vec::new(),
            r32: 0.0,
            codes: Vec::new(),
            qmin: f64::INFINITY,
            qmax: f64::NEG_INFINITY,
            qscale: 0.0,
            rq8: 0.0,
        }
    }

    /// An empty arena with room for `rows` vectors before reallocation.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "zero-dimensional arena");
        VectorArena {
            dim,
            data: Vec::with_capacity(dim * rows),
            mirror32: Vec::with_capacity(dim * rows),
            r32: 0.0,
            codes: Vec::with_capacity(dim * rows),
            qmin: f64::INFINITY,
            qmax: f64::NEG_INFINITY,
            qscale: 0.0,
            rq8: 0.0,
        }
    }

    /// Vector dimension of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
        // f32 mirror: cast the row, fold its displacement into the radius.
        let start32 = self.mirror32.len();
        self.mirror32.extend(row.iter().map(|&v| v as f32));
        self.r32 = self
            .r32
            .max(displacement_norm_f32(row, &self.mirror32[start32..]));
        // q8 mirror: encode on the current grid when the row fits,
        // otherwise widen the grid and requantize the whole block.
        let (mut lo, mut hi) = (self.qmin, self.qmax);
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo >= self.qmin && hi <= self.qmax {
            let startq = self.codes.len();
            self.codes
                .extend(row.iter().map(|&v| encode(v, self.qmin, self.qscale)));
            self.rq8 = self.rq8.max(displacement_norm_q8(
                row,
                &self.codes[startq..],
                self.qmin,
                self.qscale,
            ));
        } else {
            self.requantize(lo, hi);
        }
    }

    /// Rebuilds the whole q8 mirror on the grid spanning `[lo, hi]`.
    fn requantize(&mut self, lo: f64, hi: f64) {
        self.qmin = lo;
        self.qmax = hi;
        self.qscale = (hi - lo) / 255.0;
        self.codes.clear();
        if !self.qscale.is_finite() {
            // Range overflow (coords near ±f64::MAX): no usable grid. Keep
            // placeholder codes and an infinite radius so the q8 tier
            // certifies nothing for this block.
            self.codes.resize(self.data.len(), 0);
            self.rq8 = f64::INFINITY;
            return;
        }
        let mut r = 0.0f64;
        for row in self.data.chunks_exact(self.dim) {
            let start = self.codes.len();
            self.codes
                .extend(row.iter().map(|&v| encode(v, self.qmin, self.qscale)));
            r = r.max(displacement_norm_q8(
                row,
                &self.codes[start..],
                self.qmin,
                self.qscale,
            ));
        }
        self.rq8 = r;
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole arena as one flat row-major slice — the block view the
    /// batch distance kernel consumes.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// The f32 mirror as one flat row-major slice (same layout as
    /// [`VectorArena::as_flat`], one cast coordinate per f64 coordinate).
    #[inline]
    pub fn as_flat_f32(&self) -> &[f32] {
        &self.mirror32
    }

    /// Certified overestimate of `max_rows ‖row − row₃₂‖₂` — the `r_x`
    /// input of the f32 lower-bound helpers. May be stale-high after
    /// removals (overestimates are always safe).
    #[inline]
    pub fn f32_radius(&self) -> f64 {
        self.r32
    }

    /// The q8 code mirror as one flat row-major slice.
    #[inline]
    pub fn as_codes(&self) -> &[u8] {
        &self.codes
    }

    /// The q8 grid `(min, scale)` when it is usable for certified
    /// pruning, `None` while degenerate (empty block, all coordinates
    /// equal, or a coordinate range too wide for a finite scale). Callers
    /// must scan degenerate blocks on the f64 path.
    #[inline]
    pub fn q8_grid(&self) -> Option<(f64, f64)> {
        if self.qscale > 0.0 && self.qscale.is_finite() {
            Some((self.qmin, self.qscale))
        } else {
            None
        }
    }

    /// Certified overestimate of `max_rows ‖row − roŵ‖₂` over the q8
    /// reconstructions — the `r_x` input of the q8 lower-bound helpers.
    #[inline]
    pub fn q8_radius(&self) -> f64 {
        self.rq8
    }

    /// Quantizes a query onto this block's grid (clamping out-of-range
    /// coordinates to the grid edge) and returns the certified
    /// displacement `‖query − querŷ‖₂` — the `r_q` input of the q8
    /// helpers. Clamping keeps the bound valid for out-of-range queries;
    /// it just loosens it, so far-away queries prune less via q8.
    ///
    /// Call only when [`VectorArena::q8_grid`] is `Some`.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn quantize_query(&self, query: &[f64], out: &mut Vec<u8>) -> f64 {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        debug_assert!(self.q8_grid().is_some(), "degenerate q8 grid");
        out.clear();
        out.extend(query.iter().map(|&v| encode(v, self.qmin, self.qscale)));
        displacement_norm_q8(query, out, self.qmin, self.qscale)
    }

    /// Iterates over the rows in order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Removes row `i` by moving the last row into its slot (O(dim), does
    /// not preserve order) — mirrors `Vec::swap_remove`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        assert!(i <= last, "row index out of bounds");
        if i < last {
            for c in 0..self.dim {
                self.data[i * self.dim + c] = self.data[last * self.dim + c];
                self.mirror32[i * self.dim + c] = self.mirror32[last * self.dim + c];
                self.codes[i * self.dim + c] = self.codes[last * self.dim + c];
            }
        }
        self.data.truncate(last * self.dim);
        self.mirror32.truncate(last * self.dim);
        self.codes.truncate(last * self.dim);
        // The radii and the grid stay: they remain valid overestimates for
        // the surviving rows (shrinking them would require a rescan).
    }

    /// Removes all rows, keeping the allocation and the dimension.
    pub fn clear(&mut self) {
        self.data.clear();
        self.mirror32.clear();
        self.r32 = 0.0;
        self.codes.clear();
        self.qmin = f64::INFINITY;
        self.qmax = f64::NEG_INFINITY;
        self.qscale = 0.0;
        self.rq8 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_and_flat_views_agree() {
        let mut a = VectorArena::new(3);
        assert!(a.is_empty());
        a.push(&[1.0, 2.0, 3.0]);
        a.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = a.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut a = VectorArena::with_capacity(2, 3);
        a.push(&[1.0, 1.0]);
        a.push(&[2.0, 2.0]);
        a.push(&[3.0, 3.0]);
        a.swap_remove(0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[3.0, 3.0]);
        assert_eq!(a.row(1), &[2.0, 2.0]);
        // Removing the last row is a plain truncate.
        a.swap_remove(1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut a = VectorArena::new(4);
        a.push(&[0.0; 4]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.dim(), 4);
        a.push(&[1.0; 4]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn push_rejects_wrong_dimension() {
        VectorArena::new(3).push(&[0.0, 0.0]);
    }

    #[test]
    fn f32_mirror_tracks_rows_and_radius() {
        let mut a = VectorArena::new(2);
        a.push(&[0.1, 0.2]);
        a.push(&[0.3, 0.4]);
        assert_eq!(a.as_flat_f32().len(), 4);
        for (v, m) in a.as_flat().iter().zip(a.as_flat_f32()) {
            assert_eq!(*m, *v as f32);
        }
        // The radius bounds every row's actual displacement.
        for (row, m) in a
            .iter()
            .zip(a.as_flat_f32().chunks_exact(2))
            .collect::<Vec<_>>()
        {
            let d: f64 = row
                .iter()
                .zip(m)
                .map(|(x, y)| (x - *y as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d <= a.f32_radius());
        }
        // swap_remove keeps the mirror aligned.
        a.push(&[0.5, 0.6]);
        a.swap_remove(0);
        for (v, m) in a.as_flat().iter().zip(a.as_flat_f32()) {
            assert_eq!(*m, *v as f32);
        }
    }

    #[test]
    fn q8_mirror_reconstructs_within_radius() {
        let mut a = VectorArena::new(3);
        a.push(&[0.0, 0.5, 1.0]);
        a.push(&[0.25, 0.75, 0.1]);
        a.push(&[0.9, 0.2, 0.6]);
        let (min, scale) = a.q8_grid().expect("non-degenerate block");
        for (row, codes) in a.iter().zip(a.as_codes().chunks_exact(3)) {
            let d: f64 = row
                .iter()
                .zip(codes)
                .map(|(x, c)| (x - (min + *c as f64 * scale)).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d <= a.q8_radius(), "row {row:?}: {d} > {}", a.q8_radius());
            // Scalar quantization on a 255-step grid: each coordinate is
            // within half a step of its reconstruction.
            for (x, c) in row.iter().zip(codes) {
                assert!((x - (min + *c as f64 * scale)).abs() <= scale * 0.51);
            }
        }
    }

    #[test]
    fn q8_grid_widens_on_out_of_range_push() {
        let mut a = VectorArena::new(1);
        a.push(&[0.0]);
        a.push(&[1.0]);
        let (_, scale_before) = a.q8_grid().unwrap();
        a.push(&[10.0]); // outside [0, 1] — must requantize
        let (min, scale) = a.q8_grid().unwrap();
        assert_eq!(min, 0.0);
        assert!(scale > scale_before);
        // All rows are re-encoded on the new grid.
        for (row, c) in a.iter().zip(a.as_codes()) {
            assert!((row[0] - (min + *c as f64 * scale)).abs() <= scale);
        }
    }

    #[test]
    fn degenerate_blocks_opt_out_of_q8() {
        let mut a = VectorArena::new(2);
        assert!(a.q8_grid().is_none(), "empty block has no grid");
        a.push(&[0.5, 0.5]);
        assert!(a.q8_grid().is_none(), "constant block has no grid");
        a.push(&[0.5, 0.6]);
        assert!(a.q8_grid().is_some(), "two distinct values span a grid");
    }

    #[test]
    fn quantize_query_clamps_and_bounds_displacement() {
        let mut a = VectorArena::new(2);
        a.push(&[0.0, 0.0]);
        a.push(&[1.0, 1.0]);
        let (min, scale) = a.q8_grid().unwrap();
        let mut codes = Vec::new();
        // In-range query: displacement within half a grid step per axis.
        let q = [0.25, 0.75];
        let rq = a.quantize_query(&q, &mut codes);
        let actual: f64 = q
            .iter()
            .zip(&codes)
            .map(|(x, c)| (x - (min + *c as f64 * scale)).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(actual <= rq && rq <= scale * 2.0);
        // Out-of-range query: codes clamp to the grid edge, the radius
        // honestly reports the (large) displacement.
        let far = [5.0, -5.0];
        let rq = a.quantize_query(&far, &mut codes);
        assert_eq!(codes, vec![255, 0]);
        assert!(rq >= 4.0);
    }

    #[test]
    fn clear_resets_mirrors() {
        let mut a = VectorArena::new(2);
        a.push(&[0.0, 1.0]);
        a.push(&[0.5, 0.25]);
        a.clear();
        assert!(a.as_flat_f32().is_empty());
        assert!(a.as_codes().is_empty());
        assert_eq!(a.f32_radius(), 0.0);
        assert_eq!(a.q8_radius(), 0.0);
        assert!(a.q8_grid().is_none());
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dim_rejected() {
        VectorArena::new(0);
    }
}
