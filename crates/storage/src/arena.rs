//! Flat, row-major storage for fixed-dimension vectors.
//!
//! The paper's hot loop — scanning the points of a leaf page against a
//! query — is memory-bound long before it is compute-bound. Storing each
//! point as its own heap allocation (`Vec<Point>`, each a `Box<[f64]>`)
//! makes that scan a pointer chase; a [`VectorArena`] instead packs all
//! rows of one leaf into a single `Vec<f64>`:
//!
//! ```text
//! dim = 3, len = 4
//! data: [ x0 y0 z0 | x1 y1 z1 | x2 y2 z2 | x3 y3 z3 ]
//!         row(0)     row(1)     row(2)     row(3)
//! ```
//!
//! so a leaf scan is one linear sweep the prefetcher can follow, and the
//! whole block can be handed to the batch distance kernel
//! (`parsim_geometry::kernel::dist2_batch`) at once.
//!
//! # Scan-order permutation
//!
//! A block may additionally carry a **coordinate permutation** (set by the
//! bulk loader's energy ordering, see `DESIGN.md`, "Scan order"): the scan
//! mirrors below — and a permuted f64 copy of the rows — store lane
//! `perm[p]` of each row at position `p`, so the highest-variance
//! coordinates come first and partial-distance abandons fire earlier. The
//! canonical `data` stays in natural order (every mutation path, MBR
//! computation and exact re-rank reads it), at the cost of one extra
//! `8·dim` bytes per row on permuted blocks. Queries are permuted once per
//! block by the scanner; answers stay bit-identical because the permuted
//! sweep only *filters* rows (with a certification pad) and survivors are
//! re-ranked on the natural rows.
//!
//! # Precision mirrors
//!
//! Next to the canonical f64 rows the arena maintains two cheap mirrors,
//! kept in sync on every [`VectorArena::push`] / `swap_remove` / `clear`
//! so bulk load, persistence and incremental inserts all get them for
//! free. Both live in **scan order** (permuted when a permutation is set):
//!
//! * an **f32 mirror** (same row-major layout, each coordinate cast), with
//!   [`VectorArena::f32_radius`] — the largest certified displacement
//!   `‖row − row₃₂‖₂` over all rows, and
//! * a **q8 mirror**: every coordinate scalar-quantized to a u8 code on a
//!   **per-dimension** uniform grid `value ≈ q8_min[j] + code·q8_scale[j]`,
//!   each lane's grid spanning that lane's min/max over the block, with
//!   [`VectorArena::q8_radius`] the matching displacement bound. Per-lane
//!   grids are dramatically tighter than the old per-block grid on data
//!   whose coordinates live in different bands (a narrow lane no longer
//!   inherits the widest lane's step), and a constant lane quantizes
//!   *exactly* instead of degenerating the whole block.
//!
//! The mirrors never answer anything on their own; the two-phase leaf
//! scan uses them with the certified lower-bound helpers in
//! `parsim_geometry::kernel` and re-ranks every surviving row with the
//! f64 kernels. The radii are deliberately maintained as *overestimates*
//! (a `swap_remove` keeps the old maximum, a grid widened by requantize
//! keeps its new radius): a too-large radius only weakens pruning, never
//! correctness. Pushing a row outside the current q8 grid requantizes the
//! whole block — O(len·dim), acceptable for page-sized leaf blocks.

use parsim_geometry::kernel::{
    displacement_norm_f32, displacement_norm_q8w, displacement_norm_q8w_query, Q8W_CODE_CAP,
};

/// A row-major block of `len()` vectors of `dim` coordinates each, plus
/// f32 and q8 mirrors for the cheap scan tiers and an optional coordinate
/// permutation for energy-ordered scans (see the module docs).
#[derive(Clone, Debug)]
pub struct VectorArena {
    dim: usize,
    /// Canonical rows, natural coordinate order.
    data: Vec<f64>,
    /// Scan-order lane map: stored lane `p` holds natural coordinate
    /// `perm[p]`. Empty = identity (no permuted copy is kept).
    perm: Vec<u32>,
    /// Row-major permuted copy of `data` (empty while `perm` is).
    pdata: Vec<f64>,
    /// Row-major f32 casts of the rows, in scan order.
    mirror32: Vec<f32>,
    /// Max over rows of the certified displacement `‖row − row₃₂‖₂`.
    r32: f64,
    /// Row-major u8 codes of the rows on the per-lane grids, scan order.
    codes: Vec<u8>,
    /// Per-lane grid origin (lane minimum at last requantize); empty while
    /// the block is.
    qmin: Vec<f64>,
    /// Per-lane maximum at last requantize.
    qmax: Vec<f64>,
    /// Per-lane grid step `(qmax − qmin) / 255`; `0` for constant lanes.
    qscale: Vec<f64>,
    /// Per-lane squared step (the weight vector of the q8w kernels).
    wq8: Vec<f64>,
    /// Max over rows of the certified displacement `‖row − roŵ‖₂`.
    rq8: f64,
    /// Reused per-push scratch for the scan-order row.
    scratch: Vec<f64>,
}

/// Two arenas are equal when they hold the same rows. The permutation and
/// the mirror state are excluded on purpose: they are derived caches whose
/// exact radii and grids depend on the *history* of pushes and removals
/// (overestimates are kept across `swap_remove`), so two arenas with
/// identical contents built along different paths still compare equal.
impl PartialEq for VectorArena {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.data == other.data
    }
}

/// Encodes one coordinate on a lane grid; degenerate lanes (`scale = 0`)
/// map everything to code 0, which reconstructs the lane minimum exactly.
#[inline]
fn encode(v: f64, qmin: f64, qscale: f64) -> u8 {
    if qscale > 0.0 && qscale.is_finite() {
        ((v - qmin) / qscale).round().clamp(0.0, 255.0) as u8
    } else {
        0
    }
}

impl VectorArena {
    /// An empty arena for vectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        VectorArena::with_capacity(dim, 0)
    }

    /// An empty arena with room for `rows` vectors before reallocation.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "zero-dimensional arena");
        VectorArena {
            dim,
            data: Vec::with_capacity(dim * rows),
            perm: Vec::new(),
            pdata: Vec::new(),
            mirror32: Vec::with_capacity(dim * rows),
            r32: 0.0,
            codes: Vec::with_capacity(dim * rows),
            qmin: Vec::new(),
            qmax: Vec::new(),
            qscale: Vec::new(),
            wq8: Vec::new(),
            rq8: 0.0,
            scratch: Vec::with_capacity(dim),
        }
    }

    /// Vector dimension of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one row (natural coordinate order; the scan mirrors are
    /// updated in the block's current scan order).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
        // Scan-order view of the incoming row.
        let mut srow = std::mem::take(&mut self.scratch);
        srow.clear();
        if self.perm.is_empty() {
            srow.extend_from_slice(row);
        } else {
            srow.extend(self.perm.iter().map(|&p| row[p as usize]));
            self.pdata.extend_from_slice(&srow);
        }
        // f32 mirror: cast the row, fold its displacement into the radius.
        let start32 = self.mirror32.len();
        self.mirror32.extend(srow.iter().map(|&v| v as f32));
        self.r32 = self
            .r32
            .max(displacement_norm_f32(&srow, &self.mirror32[start32..]));
        // q8 mirror: encode on the current per-lane grids when every lane
        // fits, otherwise widen the grids and requantize the whole block.
        let fits = !self.qmin.is_empty()
            && srow
                .iter()
                .zip(self.qmin.iter().zip(&self.qmax))
                .all(|(&v, (&lo, &hi))| v >= lo && v <= hi);
        if fits {
            let startq = self.codes.len();
            self.codes.extend(
                srow.iter()
                    .enumerate()
                    .map(|(j, &v)| encode(v, self.qmin[j], self.qscale[j])),
            );
            self.rq8 = self.rq8.max(displacement_norm_q8w(
                &srow,
                &self.codes[startq..],
                &self.qmin,
                &self.qscale,
            ));
        } else {
            if self.qmin.is_empty() {
                self.qmin = vec![f64::INFINITY; self.dim];
                self.qmax = vec![f64::NEG_INFINITY; self.dim];
            }
            for (j, &v) in srow.iter().enumerate() {
                self.qmin[j] = self.qmin[j].min(v);
                self.qmax[j] = self.qmax[j].max(v);
            }
            self.requantize();
        }
        self.scratch = srow;
    }

    /// Rebuilds the whole q8 mirror on the current per-lane `[qmin, qmax]`
    /// ranges.
    fn requantize(&mut self) {
        self.qscale.clear();
        self.qscale
            .extend(self.qmin.iter().zip(&self.qmax).map(|(&lo, &hi)| {
                if hi > lo {
                    (hi - lo) / 255.0
                } else {
                    0.0
                }
            }));
        self.wq8.clear();
        self.wq8.extend(self.qscale.iter().map(|&s| s * s));
        if self.qscale.iter().any(|s| !s.is_finite()) {
            // Range overflow (coords near ±f64::MAX): no usable grid. Keep
            // placeholder codes and an infinite radius so the q8 tier
            // certifies nothing for this block.
            self.codes.clear();
            self.codes.resize(self.data.len(), 0);
            self.rq8 = f64::INFINITY;
            return;
        }
        let stored: &[f64] = if self.perm.is_empty() {
            &self.data
        } else {
            &self.pdata
        };
        let mut codes = std::mem::take(&mut self.codes);
        codes.clear();
        let mut r = 0.0f64;
        for row in stored.chunks_exact(self.dim) {
            let start = codes.len();
            codes.extend(
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| encode(v, self.qmin[j], self.qscale[j])),
            );
            r = r.max(displacement_norm_q8w(
                row,
                &codes[start..],
                &self.qmin,
                &self.qscale,
            ));
        }
        self.codes = codes;
        self.rq8 = r;
    }

    /// Installs a scan-order permutation (stored lane `p` ← natural
    /// coordinate `perm[p]`) and rebuilds the permuted copy, the f32
    /// mirror and the q8 mirror in the new order. An identity permutation
    /// drops back to the plain natural layout (no permuted copy kept).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..dim`.
    pub fn set_permutation(&mut self, perm: Vec<u32>) {
        assert_eq!(perm.len(), self.dim, "permutation dimension mismatch");
        let mut seen = vec![false; self.dim];
        for &p in &perm {
            assert!(
                (p as usize) < self.dim && !seen[p as usize],
                "not a permutation of 0..dim"
            );
            seen[p as usize] = true;
        }
        if perm.iter().enumerate().all(|(i, &p)| p as usize == i) {
            if self.perm.is_empty() {
                return;
            }
            self.perm.clear();
            self.pdata.clear();
        } else {
            self.perm = perm;
            self.pdata.clear();
            self.pdata.reserve(self.data.len());
            let (perm, data) = (&self.perm, &self.data);
            for row in data.chunks_exact(self.dim) {
                self.pdata.extend(perm.iter().map(|&p| row[p as usize]));
            }
        }
        self.rebuild_mirrors();
    }

    /// Recomputes the f32 and q8 mirrors from scratch in the current scan
    /// order (tight radii, tight per-lane grids).
    fn rebuild_mirrors(&mut self) {
        let stored: &[f64] = if self.perm.is_empty() {
            &self.data
        } else {
            &self.pdata
        };
        // f32 mirror.
        let mut mirror32 = std::mem::take(&mut self.mirror32);
        mirror32.clear();
        let mut r32 = 0.0f64;
        for row in stored.chunks_exact(self.dim) {
            let start = mirror32.len();
            mirror32.extend(row.iter().map(|&v| v as f32));
            r32 = r32.max(displacement_norm_f32(row, &mirror32[start..]));
        }
        self.mirror32 = mirror32;
        self.r32 = r32;
        // q8 mirror: fresh per-lane ranges, then requantize.
        if self.data.is_empty() {
            self.qmin.clear();
            self.qmax.clear();
            self.qscale.clear();
            self.wq8.clear();
            self.codes.clear();
            self.rq8 = 0.0;
            return;
        }
        let mut qmin = vec![f64::INFINITY; self.dim];
        let mut qmax = vec![f64::NEG_INFINITY; self.dim];
        for row in stored.chunks_exact(self.dim) {
            for (j, &v) in row.iter().enumerate() {
                qmin[j] = qmin[j].min(v);
                qmax[j] = qmax[j].max(v);
            }
        }
        self.qmin = qmin;
        self.qmax = qmax;
        self.requantize();
    }

    /// The scan-order permutation, or `None` while the layout is natural.
    #[inline]
    pub fn scan_perm(&self) -> Option<&[u32]> {
        if self.perm.is_empty() {
            None
        } else {
            Some(&self.perm)
        }
    }

    /// The `i`-th row (natural coordinate order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole arena as one flat row-major slice in **natural** order —
    /// the block view the exact batch distance kernel consumes.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// The whole arena as one flat row-major slice in **scan** order: the
    /// permuted copy when a permutation is set, otherwise the natural
    /// rows. This is the view the energy-ordered f64 filter sweeps.
    #[inline]
    pub fn as_flat_scan(&self) -> &[f64] {
        if self.perm.is_empty() {
            &self.data
        } else {
            &self.pdata
        }
    }

    /// The f32 mirror as one flat row-major slice, in scan order (permute
    /// the query with [`VectorArena::scan_perm`] before comparing).
    #[inline]
    pub fn as_flat_f32(&self) -> &[f32] {
        &self.mirror32
    }

    /// Certified overestimate of `max_rows ‖row − row₃₂‖₂` — the `r_x`
    /// input of the f32 lower-bound helpers. May be stale-high after
    /// removals (overestimates are always safe). Permutation-invariant:
    /// the underlying norms do not depend on lane order and the stored
    /// value is an inflated overestimate either way.
    #[inline]
    pub fn f32_radius(&self) -> f64 {
        self.r32
    }

    /// The q8 code mirror as one flat row-major slice, in scan order.
    #[inline]
    pub fn as_codes(&self) -> &[u8] {
        &self.codes
    }

    /// The per-lane q8 grids `(mins, scales)` (scan-order lanes) when they
    /// are usable for certified pruning, `None` while degenerate (empty
    /// block, or a lane range too wide for a finite scale). Constant lanes
    /// are *not* degenerate — their scale is `0` and they reconstruct
    /// exactly. Callers must scan degenerate blocks on the f64 path.
    #[inline]
    pub fn q8_grid(&self) -> Option<(&[f64], &[f64])> {
        if !self.qscale.is_empty() && self.qscale.iter().all(|s| s.is_finite()) {
            Some((&self.qmin, &self.qscale))
        } else {
            None
        }
    }

    /// The per-lane squared grid steps — the weight vector of the
    /// `dist2_q8w*` kernels. Valid whenever [`VectorArena::q8_grid`] is
    /// `Some`.
    #[inline]
    pub fn q8_weights(&self) -> &[f64] {
        &self.wq8
    }

    /// Certified overestimate of `max_rows ‖row − roŵ‖₂` over the q8
    /// reconstructions — the `r_x` input of the q8 lower-bound helpers.
    #[inline]
    pub fn q8_radius(&self) -> f64 {
        self.rq8
    }

    /// Quantizes a query (natural coordinate order) onto this block's
    /// per-lane grids, writing scan-order **wide** i32 codes into `out`,
    /// and returns the certified displacement `‖query − querŷ‖₂` — the
    /// `r_q` input of the q8 helpers. Query coordinates outside a lane's
    /// range encode beyond `[0, 255]` instead of clamping to the grid edge
    /// (per-leaf lanes are narrow, and an edge-clamped far query would
    /// inflate `r_q` to its whole distance from the leaf); only the
    /// `±Q8W_CODE_CAP` exactness cap clamps, with the residual honestly
    /// charged to the returned displacement.
    ///
    /// Call only when [`VectorArena::q8_grid`] is `Some`.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    pub fn quantize_query(&self, query: &[f64], out: &mut Vec<i32>) -> f64 {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        debug_assert!(self.q8_grid().is_some(), "degenerate q8 grid");
        let qencode = |v: f64, lo: f64, scale: f64| -> i32 {
            if scale > 0.0 {
                ((v - lo) / scale)
                    .round()
                    .clamp(-(Q8W_CODE_CAP as f64), Q8W_CODE_CAP as f64) as i32
            } else {
                0
            }
        };
        out.clear();
        if self.perm.is_empty() {
            out.extend(
                query
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| qencode(v, self.qmin[j], self.qscale[j])),
            );
            displacement_norm_q8w_query(query, out, &self.qmin, &self.qscale)
        } else {
            let qp: Vec<f64> = self.perm.iter().map(|&p| query[p as usize]).collect();
            out.extend(
                qp.iter()
                    .enumerate()
                    .map(|(j, &v)| qencode(v, self.qmin[j], self.qscale[j])),
            );
            displacement_norm_q8w_query(&qp, out, &self.qmin, &self.qscale)
        }
    }

    /// Iterates over the rows in order (natural coordinate order).
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Removes row `i` by moving the last row into its slot (O(dim), does
    /// not preserve order) — mirrors `Vec::swap_remove`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        assert!(i <= last, "row index out of bounds");
        if i < last {
            for c in 0..self.dim {
                self.data[i * self.dim + c] = self.data[last * self.dim + c];
                self.mirror32[i * self.dim + c] = self.mirror32[last * self.dim + c];
                self.codes[i * self.dim + c] = self.codes[last * self.dim + c];
                if !self.pdata.is_empty() {
                    self.pdata[i * self.dim + c] = self.pdata[last * self.dim + c];
                }
            }
        }
        self.data.truncate(last * self.dim);
        self.mirror32.truncate(last * self.dim);
        self.codes.truncate(last * self.dim);
        self.pdata.truncate(self.pdata.len().min(last * self.dim));
        // The radii, the grids and the permutation stay: they remain valid
        // for the surviving rows (shrinking them would require a rescan).
    }

    /// Removes all rows, keeping the allocation, the dimension and the
    /// scan-order permutation.
    pub fn clear(&mut self) {
        self.data.clear();
        self.pdata.clear();
        self.mirror32.clear();
        self.r32 = 0.0;
        self.codes.clear();
        self.qmin.clear();
        self.qmax.clear();
        self.qscale.clear();
        self.wq8.clear();
        self.rq8 = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_and_flat_views_agree() {
        let mut a = VectorArena::new(3);
        assert!(a.is_empty());
        a.push(&[1.0, 2.0, 3.0]);
        a.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Natural layout: the scan view aliases the canonical rows.
        assert_eq!(a.as_flat_scan(), a.as_flat());
        assert!(a.scan_perm().is_none());
        let rows: Vec<&[f64]> = a.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut a = VectorArena::with_capacity(2, 3);
        a.push(&[1.0, 1.0]);
        a.push(&[2.0, 2.0]);
        a.push(&[3.0, 3.0]);
        a.swap_remove(0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[3.0, 3.0]);
        assert_eq!(a.row(1), &[2.0, 2.0]);
        // Removing the last row is a plain truncate.
        a.swap_remove(1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut a = VectorArena::new(4);
        a.push(&[0.0; 4]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.dim(), 4);
        a.push(&[1.0; 4]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn push_rejects_wrong_dimension() {
        VectorArena::new(3).push(&[0.0, 0.0]);
    }

    #[test]
    fn f32_mirror_tracks_rows_and_radius() {
        let mut a = VectorArena::new(2);
        a.push(&[0.1, 0.2]);
        a.push(&[0.3, 0.4]);
        assert_eq!(a.as_flat_f32().len(), 4);
        for (v, m) in a.as_flat().iter().zip(a.as_flat_f32()) {
            assert_eq!(*m, *v as f32);
        }
        // The radius bounds every row's actual displacement.
        for (row, m) in a
            .iter()
            .zip(a.as_flat_f32().chunks_exact(2))
            .collect::<Vec<_>>()
        {
            let d: f64 = row
                .iter()
                .zip(m)
                .map(|(x, y)| (x - *y as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d <= a.f32_radius());
        }
        // swap_remove keeps the mirror aligned.
        a.push(&[0.5, 0.6]);
        a.swap_remove(0);
        for (v, m) in a.as_flat().iter().zip(a.as_flat_f32()) {
            assert_eq!(*m, *v as f32);
        }
    }

    #[test]
    fn q8_mirror_reconstructs_within_radius() {
        let mut a = VectorArena::new(3);
        a.push(&[0.0, 0.5, 1.0]);
        a.push(&[0.25, 0.75, 0.1]);
        a.push(&[0.9, 0.2, 0.6]);
        let (mins, scales) = a.q8_grid().expect("non-degenerate block");
        let (mins, scales) = (mins.to_vec(), scales.to_vec());
        for (row, codes) in a.iter().zip(a.as_codes().chunks_exact(3)) {
            let d: f64 = row
                .iter()
                .zip(codes)
                .enumerate()
                .map(|(j, (x, c))| (x - (mins[j] + *c as f64 * scales[j])).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(d <= a.q8_radius(), "row {row:?}: {d} > {}", a.q8_radius());
            // Scalar quantization on a 255-step grid: each coordinate is
            // within half its lane's step of its reconstruction.
            for (j, (x, c)) in row.iter().zip(codes).enumerate() {
                assert!((x - (mins[j] + *c as f64 * scales[j])).abs() <= scales[j] * 0.51);
            }
        }
        // The weights are the squared per-lane steps.
        for (w, s) in a.q8_weights().iter().zip(&scales) {
            assert_eq!(*w, s * s);
        }
    }

    #[test]
    fn q8_grids_are_per_dimension() {
        // One narrow lane and one wide lane: the narrow lane's step must
        // not inherit the wide range (the whole point of per-lane grids).
        let mut a = VectorArena::new(2);
        a.push(&[0.0, 0.0]);
        a.push(&[0.001, 100.0]);
        let (_, scales) = a.q8_grid().unwrap();
        assert!(scales[0] <= 0.001 / 255.0 * 1.0001);
        assert!(scales[1] >= 100.0 / 255.0 * 0.9999);
        // A constant lane quantizes exactly (scale 0), block stays usable.
        let mut b = VectorArena::new(2);
        b.push(&[0.5, 0.1]);
        b.push(&[0.5, 0.9]);
        let (mins, scales) = b.q8_grid().expect("constant lane must not degenerate");
        assert_eq!(scales[0], 0.0);
        assert_eq!(mins[0], 0.5);
        assert!(scales[1] > 0.0);
        assert_eq!(b.q8_weights()[0], 0.0);
    }

    #[test]
    fn q8_grid_widens_on_out_of_range_push() {
        let mut a = VectorArena::new(1);
        a.push(&[0.0]);
        a.push(&[1.0]);
        let scale_before = a.q8_grid().unwrap().1[0];
        a.push(&[10.0]); // outside [0, 1] — must requantize
        let (mins, scales) = a.q8_grid().unwrap();
        let (min, scale) = (mins[0], scales[0]);
        assert_eq!(min, 0.0);
        assert!(scale > scale_before);
        // All rows are re-encoded on the new grid.
        for (row, c) in a.iter().zip(a.as_codes()) {
            assert!((row[0] - (min + *c as f64 * scale)).abs() <= scale);
        }
    }

    #[test]
    fn degenerate_blocks_opt_out_of_q8() {
        let mut a = VectorArena::new(2);
        assert!(a.q8_grid().is_none(), "empty block has no grid");
        a.push(&[0.5, 0.5]);
        // Per-lane grids: even a constant block is exactly representable.
        let (mins, scales) = a.q8_grid().expect("constant block is exact per-lane");
        assert_eq!(scales, &[0.0, 0.0]);
        assert_eq!(mins, &[0.5, 0.5]);
        // Reconstruction is exact; the radius only carries the certified
        // rounding pad.
        assert!(a.q8_radius() < 1e-12);
        // A lane range too wide for a finite scale degenerates the block.
        let mut b = VectorArena::new(1);
        b.push(&[f64::MAX]);
        b.push(&[f64::MIN]);
        assert!(b.q8_grid().is_none(), "overflowing range has no grid");
        assert_eq!(b.q8_radius(), f64::INFINITY);
    }

    #[test]
    fn quantize_query_uses_wide_codes_and_bounds_displacement() {
        let mut a = VectorArena::new(2);
        a.push(&[0.0, 0.0]);
        a.push(&[1.0, 1.0]);
        let (mins, scales) = a.q8_grid().unwrap();
        let (mins, scales) = (mins.to_vec(), scales.to_vec());
        let mut codes = Vec::new();
        // In-range query: displacement within half a grid step per axis.
        let q = [0.25, 0.75];
        let rq = a.quantize_query(&q, &mut codes);
        let actual: f64 = q
            .iter()
            .zip(&codes)
            .enumerate()
            .map(|(j, (x, c))| (x - (mins[j] + *c as f64 * scales[j])).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(actual <= rq && rq <= scales[0] * 2.0);
        // Out-of-range query: codes run past [0, 255] on the lane's grid
        // instead of clamping, so the displacement stays a fraction of a
        // grid step and q8 pruning keeps its full margin.
        let far = [5.0, -5.0];
        let rq = a.quantize_query(&far, &mut codes);
        assert!(codes[0] > 255 && codes[1] < 0, "{codes:?}");
        assert!(rq <= scales[0] * 2.0, "far query rq must stay tiny: {rq}");
        // Only the exactness cap clamps; the huge residual is then charged
        // to the displacement honestly.
        let mut b = VectorArena::new(1);
        b.push(&[0.0]);
        b.push(&[2.55e-13]);
        let rq = b.quantize_query(&[1.0], &mut codes);
        assert_eq!(codes[0], 1 << 25);
        assert!(rq >= 0.9, "capped code must report its residual: {rq}");
    }

    #[test]
    fn permutation_reorders_scan_views_only() {
        let mut a = VectorArena::new(3);
        a.push(&[1.0, 2.0, 3.0]);
        a.push(&[4.0, 5.0, 6.0]);
        a.set_permutation(vec![2, 0, 1]);
        // Canonical rows untouched.
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Scan views permuted.
        assert_eq!(a.scan_perm(), Some(&[2u32, 0, 1][..]));
        assert_eq!(a.as_flat_scan(), &[3.0, 1.0, 2.0, 6.0, 4.0, 5.0]);
        assert_eq!(a.as_flat_f32(), &[3.0f32, 1.0, 2.0, 6.0, 4.0, 5.0]);
        // q8 grids follow the stored lanes.
        let (mins, _) = a.q8_grid().unwrap();
        assert_eq!(mins, &[3.0, 1.0, 2.0]);
        // Pushes maintain the permuted views.
        a.push(&[7.0, 8.0, 9.0]);
        assert_eq!(&a.as_flat_scan()[6..], &[9.0, 7.0, 8.0]);
        assert_eq!(a.row(2), &[7.0, 8.0, 9.0]);
        // swap_remove keeps all views aligned.
        a.swap_remove(0);
        assert_eq!(a.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(&a.as_flat_scan()[..3], &[9.0, 7.0, 8.0]);
        for (v, m) in a.as_flat_scan().iter().zip(a.as_flat_f32()) {
            assert_eq!(*m, *v as f32);
        }
        // Quantized queries come back in scan order.
        let mut codes = Vec::new();
        a.quantize_query(&[4.0, 5.0, 6.0], &mut codes);
        let (mins, scales) = a.q8_grid().unwrap();
        for (j, &c) in codes.iter().enumerate() {
            let recon = mins[j] + c as f64 * scales[j];
            let want = [6.0, 4.0, 5.0][j];
            assert!(
                (recon - want).abs() <= scales[j].max(1e-12),
                "lane {j}: {recon} vs {want}"
            );
        }
        // Identity permutation drops the permuted copy again.
        a.set_permutation(vec![0, 1, 2]);
        assert!(a.scan_perm().is_none());
        assert_eq!(a.as_flat_scan(), a.as_flat());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn set_permutation_rejects_non_permutations() {
        let mut a = VectorArena::new(3);
        a.push(&[1.0, 2.0, 3.0]);
        a.set_permutation(vec![0, 0, 1]);
    }

    #[test]
    fn clear_resets_mirrors() {
        let mut a = VectorArena::new(2);
        a.push(&[0.0, 1.0]);
        a.push(&[0.5, 0.25]);
        a.clear();
        assert!(a.as_flat_f32().is_empty());
        assert!(a.as_codes().is_empty());
        assert_eq!(a.f32_radius(), 0.0);
        assert_eq!(a.q8_radius(), 0.0);
        assert!(a.q8_grid().is_none());
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dim_rejected() {
        VectorArena::new(0);
    }
}
