//! Flat, row-major storage for fixed-dimension vectors.
//!
//! The paper's hot loop — scanning the points of a leaf page against a
//! query — is memory-bound long before it is compute-bound. Storing each
//! point as its own heap allocation (`Vec<Point>`, each a `Box<[f64]>`)
//! makes that scan a pointer chase; a [`VectorArena`] instead packs all
//! rows of one leaf into a single `Vec<f64>`:
//!
//! ```text
//! dim = 3, len = 4
//! data: [ x0 y0 z0 | x1 y1 z1 | x2 y2 z2 | x3 y3 z3 ]
//!         row(0)     row(1)     row(2)     row(3)
//! ```
//!
//! so a leaf scan is one linear sweep the prefetcher can follow, and the
//! whole block can be handed to the batch distance kernel
//! (`parsim_geometry::kernel::dist2_batch`) at once.

/// A row-major block of `len()` vectors of `dim` coordinates each.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorArena {
    dim: usize,
    data: Vec<f64>,
}

impl VectorArena {
    /// An empty arena for vectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional arena");
        VectorArena {
            dim,
            data: Vec::new(),
        }
    }

    /// An empty arena with room for `rows` vectors before reallocation.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "zero-dimensional arena");
        VectorArena {
            dim,
            data: Vec::with_capacity(dim * rows),
        }
    }

    /// Vector dimension of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    #[inline]
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row dimension mismatch");
        self.data.extend_from_slice(row);
    }

    /// The `i`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole arena as one flat row-major slice — the block view the
    /// batch distance kernel consumes.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Iterates over the rows in order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// Removes row `i` by moving the last row into its slot (O(dim), does
    /// not preserve order) — mirrors `Vec::swap_remove`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn swap_remove(&mut self, i: usize) {
        let last = self.len() - 1;
        assert!(i <= last, "row index out of bounds");
        if i < last {
            for c in 0..self.dim {
                self.data[i * self.dim + c] = self.data[last * self.dim + c];
            }
        }
        self.data.truncate(last * self.dim);
    }

    /// Removes all rows, keeping the allocation and the dimension.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_and_flat_views_agree() {
        let mut a = VectorArena::new(3);
        assert!(a.is_empty());
        a.push(&[1.0, 2.0, 3.0]);
        a.push(&[4.0, 5.0, 6.0]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.dim(), 3);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let rows: Vec<&[f64]> = a.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn swap_remove_moves_last_row() {
        let mut a = VectorArena::with_capacity(2, 3);
        a.push(&[1.0, 1.0]);
        a.push(&[2.0, 2.0]);
        a.push(&[3.0, 3.0]);
        a.swap_remove(0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), &[3.0, 3.0]);
        assert_eq!(a.row(1), &[2.0, 2.0]);
        // Removing the last row is a plain truncate.
        a.swap_remove(1);
        assert_eq!(a.len(), 1);
        assert_eq!(a.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn clear_keeps_dimension() {
        let mut a = VectorArena::new(4);
        a.push(&[0.0; 4]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.dim(), 4);
        a.push(&[1.0; 4]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn push_rejects_wrong_dimension() {
        VectorArena::new(3).push(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "zero-dimensional")]
    fn zero_dim_rejected() {
        VectorArena::new(0);
    }
}
