//! Property tests for the sharded LRU page cache.
//!
//! The backbone invariants: a 1-shard [`ShardedLru`] is **step-for-step**
//! equivalent to the plain [`LruTracker`] (same hit/miss answer on every
//! access of any access string), and a many-shard cache — which only
//! approximates global LRU — stays within a fixed hit-rate tolerance of
//! exact LRU on skewed traces like the ones page caches actually see
//! (hot directory pages re-touched constantly, a long tail of leaf pages).

use parsim_storage::{LruTracker, ShardedLru};
use proptest::prelude::*;

/// An access string over a small key universe so hits actually occur.
fn accesses(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..48, 1..=max_len)
}

/// Skews a uniform draw onto a hot set: values below the pivot map to a
/// tiny set of hot keys, the rest spread over a wide cold universe. This
/// mimics a page-access trace (root/directory pages dominate).
fn skewed(raw: Vec<(u64, bool)>) -> Vec<u64> {
    raw.into_iter()
        .map(|(v, hot)| if hot { v % 8 } else { 100 + v })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn one_shard_is_step_for_step_exact_lru(
        trace in accesses(400),
        capacity in 0usize..16,
    ) {
        let sharded = ShardedLru::new(capacity, 1);
        let mut exact = LruTracker::new(capacity);
        for (i, &key) in trace.iter().enumerate() {
            prop_assert_eq!(
                sharded.touch(key),
                exact.touch(key),
                "step {} key {} capacity {}", i, key, capacity
            );
        }
        prop_assert_eq!(sharded.len(), exact.len());
    }

    #[test]
    fn sharding_preserves_hit_rate_on_skewed_traces(
        raw in prop::collection::vec((0u64..1024, any::<bool>()), 512..=1024),
        shards in 2usize..=8,
    ) {
        let trace = skewed(raw);
        // Capacity comfortably above the hot set but far below the cold
        // universe — the regime where LRU quality matters.
        let capacity = 32usize;
        let exact = LruTracker::new(capacity);
        let sharded = ShardedLru::new(capacity, shards);
        let mut exact = exact;
        let (mut hits_exact, mut hits_sharded) = (0u64, 0u64);
        for &key in &trace {
            hits_exact += u64::from(exact.touch(key));
            hits_sharded += u64::from(sharded.touch(key));
        }
        let n = trace.len() as f64;
        let rate_exact = hits_exact as f64 / n;
        let rate_sharded = hits_sharded as f64 / n;
        // Per-shard LRU can lose (or gain) a little vs global LRU when the
        // hot set splits unevenly over shards, but the hot keys 0..8 spread
        // over <=8 shards each of capacity >=4, so the drift stays small.
        prop_assert!(
            (rate_exact - rate_sharded).abs() <= 0.15,
            "hit rate drifted: exact {:.3} vs sharded({}) {:.3}",
            rate_exact, shards, rate_sharded
        );
    }

    #[test]
    fn sharded_hits_imply_recent_access(
        trace in accesses(300),
        shards in 1usize..=6,
    ) {
        // A hit on any shard means the key was touched at most
        // `capacity * shards` distinct-key accesses ago — per-shard LRU
        // never hits on a key that exact LRU of the *combined* capacity
        // would have long evicted AND never misses a key re-touched
        // immediately.
        let sharded = ShardedLru::new(12, shards);
        let mut last: Option<u64> = None;
        for &key in &trace {
            let hit = sharded.touch(key);
            if last == Some(key) {
                prop_assert!(hit, "immediate re-touch of {} must hit", key);
            }
            last = Some(key);
        }
    }
}
