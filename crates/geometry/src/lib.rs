//! Geometric primitives for high-dimensional similarity search.
//!
//! This crate provides the geometric substrate used by every other crate in
//! the workspace:
//!
//! * [`Point`] — a d-dimensional feature vector in the unit data space
//!   `[0,1]^d` (the paper assumes this extent w.l.o.g., Definition 1).
//! * [`HyperRect`] — axis-parallel hyper-rectangles (minimum bounding
//!   rectangles of index pages) with the `MINDIST` / `MINMAXDIST` bounds
//!   used by branch-and-bound nearest-neighbor search.
//! * [`Metric`] implementations — Euclidean, Manhattan and maximum metrics.
//! * [`kernel`] — the unrolled flat-slice distance kernels (with
//!   partial-distance early abandon) that every metric delegates to.
//! * [`quadrant`] — the binary quadrant partition of the data space and the
//!   direct / indirect neighborhood relations of the paper (Definition 3).
//! * [`highdim`] — closed-form models of the "strange" effects of
//!   high-dimensional spaces that motivate the paper's declustering design
//!   (surface concentration, NN-sphere radius).
//!
//! All distance computations are exact `f64` arithmetic; squared distances
//! are used internally wherever ordering alone matters.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod highdim;
pub mod kernel;
pub mod metric;
pub mod point;
pub mod quadrant;
pub mod rect;

pub use error::GeometryError;
pub use metric::{Chebyshev, Euclidean, Manhattan, Metric};
pub use point::Point;
pub use quadrant::{BucketId, QuadrantSplitter};
pub use rect::HyperRect;
