//! Axis-parallel hyper-rectangles (minimum bounding rectangles).
//!
//! Index pages of R*-trees and X-trees are described by MBRs; the
//! nearest-neighbor algorithms of Roussopoulos et al. [RKV 95] and
//! Hjaltason/Samet [HS 95] prune the search with the `MINDIST` and
//! `MINMAXDIST` bounds implemented here.

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::point::Point;

/// An axis-parallel hyper-rectangle `[lo_0,hi_0] × … × [lo_{d-1},hi_{d-1}]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HyperRect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl HyperRect {
    /// Creates a rectangle from its lower and upper corner.
    ///
    /// # Errors
    ///
    /// Fails on empty corners, mismatched dimensions, non-finite bounds or
    /// `lo > hi` on any axis.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self, GeometryError> {
        if lo.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        if lo.len() != hi.len() {
            return Err(GeometryError::DimensionMismatch {
                left: lo.len(),
                right: hi.len(),
            });
        }
        for (axis, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            if !l.is_finite() {
                return Err(GeometryError::NonFiniteCoordinate { axis, value: l });
            }
            if !h.is_finite() {
                return Err(GeometryError::NonFiniteCoordinate { axis, value: h });
            }
            if l > h {
                return Err(GeometryError::InvertedBounds { axis });
            }
        }
        Ok(HyperRect {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        })
    }

    /// The degenerate rectangle covering exactly one point.
    pub fn from_point(p: &Point) -> Self {
        Self::from_coords(p.coords())
    }

    /// The degenerate rectangle covering exactly one coordinate row (the
    /// arena-backed counterpart of [`HyperRect::from_point`]).
    pub fn from_coords(coords: &[f64]) -> Self {
        debug_assert!(!coords.is_empty(), "zero-dimensional rectangle");
        HyperRect {
            lo: coords.into(),
            hi: coords.into(),
        }
    }

    /// The unit data space `[0,1]^d` the paper assumes.
    pub fn unit(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional rectangle");
        HyperRect {
            lo: vec![0.0; dim].into_boxed_slice(),
            hi: vec![1.0; dim].into_boxed_slice(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bound on axis `axis`.
    #[inline]
    pub fn lo(&self, axis: usize) -> f64 {
        self.lo[axis]
    }

    /// Upper bound on axis `axis`.
    #[inline]
    pub fn hi(&self, axis: usize) -> f64 {
        self.hi[axis]
    }

    /// All lower bounds.
    #[inline]
    pub fn lo_coords(&self) -> &[f64] {
        &self.lo
    }

    /// All upper bounds.
    #[inline]
    pub fn hi_coords(&self) -> &[f64] {
        &self.hi
    }

    /// Side length on axis `axis`.
    #[inline]
    pub fn extent(&self, axis: usize) -> f64 {
        self.hi[axis] - self.lo[axis]
    }

    /// The center point of the rectangle.
    pub fn center(&self) -> Point {
        Point::from_vec(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(l, h)| 0.5 * (l + h))
                .collect(),
        )
    }

    /// Volume (area in 2-d). Zero for degenerate rectangles.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// Surface measure used by the R*-tree split heuristic: the sum of the
    /// side lengths ("margin").
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// True if the point lies inside the closed rectangle.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.contains_coords(p.coords())
    }

    /// [`HyperRect::contains_point`] on a raw coordinate row.
    pub fn contains_coords(&self, coords: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), coords.len());
        coords
            .iter()
            .enumerate()
            .all(|(i, &c)| self.lo[i] <= c && c <= self.hi[i])
    }

    /// True if `other` lies entirely inside `self`.
    pub fn contains_rect(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.lo[i] <= other.lo[i] && other.hi[i] <= self.hi[i])
    }

    /// True if the two closed rectangles share at least one point.
    pub fn intersects(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.lo[i] <= other.hi[i] && other.lo[i] <= self.hi[i])
    }

    /// Volume of the intersection (zero if disjoint) — the "overlap" measure
    /// minimized by the R*-tree and X-tree split algorithms.
    pub fn overlap_volume(&self, other: &HyperRect) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut vol = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo >= hi {
                return 0.0;
            }
            vol *= hi - lo;
        }
        vol
    }

    /// The smallest rectangle containing both operands.
    pub fn union(&self, other: &HyperRect) -> HyperRect {
        debug_assert_eq!(self.dim(), other.dim());
        HyperRect {
            lo: self
                .lo
                .iter()
                .zip(other.lo.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(other.hi.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Grows `self` in place to cover `p`.
    pub fn expand_to_point(&mut self, p: &Point) {
        self.expand_to_coords(p.coords());
    }

    /// [`HyperRect::expand_to_point`] on a raw coordinate row.
    pub fn expand_to_coords(&mut self, coords: &[f64]) {
        debug_assert_eq!(self.dim(), coords.len());
        for (i, &c) in coords.iter().enumerate() {
            if c < self.lo[i] {
                self.lo[i] = c;
            }
            if c > self.hi[i] {
                self.hi[i] = c;
            }
        }
    }

    /// Grows `self` in place to cover `other`.
    pub fn expand_to_rect(&mut self, other: &HyperRect) {
        debug_assert_eq!(self.dim(), other.dim());
        for i in 0..self.dim() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// How much the volume grows if `self` is expanded to cover `other` —
    /// the R-tree "least enlargement" insertion criterion.
    pub fn enlargement(&self, other: &HyperRect) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// `MINDIST²(q, R)`: squared Euclidean distance from `q` to the closest
    /// point of the rectangle; `0` if `q` is inside. The fundamental lower
    /// bound of branch-and-bound NN search.
    #[inline]
    pub fn min_dist2(&self, q: &Point) -> f64 {
        debug_assert_eq!(self.dim(), q.dim());
        let mut acc = 0.0;
        for (i, &c) in q.iter().enumerate() {
            let lo = self.lo[i];
            let hi = self.hi[i];
            let d = if c < lo {
                lo - c
            } else if c > hi {
                c - hi
            } else {
                continue;
            };
            acc += d * d;
        }
        acc
    }

    /// `MAXDIST²(q, R)`: squared distance from `q` to the farthest point of
    /// the rectangle — an upper bound on the distance to anything inside.
    pub fn max_dist2(&self, q: &Point) -> f64 {
        debug_assert_eq!(self.dim(), q.dim());
        let mut acc = 0.0;
        for (i, &c) in q.iter().enumerate() {
            let d = (c - self.lo[i]).abs().max((c - self.hi[i]).abs());
            acc += d * d;
        }
        acc
    }

    /// `MINMAXDIST²(q, R)` of Roussopoulos et al. [RKV 95]: the smallest
    /// upper bound on the distance from `q` to the *nearest data point* that
    /// a non-empty rectangle can guarantee. Every face of the MBR must touch
    /// a data point, hence along some axis `k` the nearer face contains one;
    /// the bound minimizes over `k` the distance to the nearer face on `k`
    /// combined with the farther faces on all other axes.
    pub fn min_max_dist2(&self, q: &Point) -> f64 {
        debug_assert_eq!(self.dim(), q.dim());
        let d = self.dim();
        // Precompute per-axis near-face and far-face squared distances.
        let mut rm2 = vec![0.0; d]; // distance to nearer face (rm_k)
        let mut rmx2 = vec![0.0; d]; // distance to farther face (rM_k)
        let mut far_sum = 0.0;
        for i in 0..d {
            let c = q[i];
            let mid = 0.5 * (self.lo[i] + self.hi[i]);
            let rm = if c <= mid { self.lo[i] } else { self.hi[i] };
            let rmx = if c >= mid { self.lo[i] } else { self.hi[i] };
            rm2[i] = (c - rm) * (c - rm);
            rmx2[i] = (c - rmx) * (c - rmx);
            far_sum += rmx2[i];
        }
        let mut best = f64::INFINITY;
        for k in 0..d {
            let v = rm2[k] + (far_sum - rmx2[k]);
            if v < best {
                best = v;
            }
        }
        best
    }

    /// Splits the rectangle at `value` on `axis`, returning the lower and
    /// upper halves. `value` is clamped into the rectangle's extent.
    pub fn split_at(&self, axis: usize, value: f64) -> (HyperRect, HyperRect) {
        assert!(axis < self.dim(), "axis out of range");
        let v = value.clamp(self.lo[axis], self.hi[axis]);
        let mut lower = self.clone();
        let mut upper = self.clone();
        lower.hi[axis] = v;
        upper.lo[axis] = v;
        (lower, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).unwrap()
    }

    fn r(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn constructor_validation() {
        assert!(HyperRect::new(vec![], vec![]).is_err());
        assert!(HyperRect::new(vec![0.0], vec![0.0, 1.0]).is_err());
        assert!(HyperRect::new(vec![1.0], vec![0.0]).is_err());
        assert!(HyperRect::new(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn volume_margin_center() {
        let rect = r(&[0.0, 0.0], &[0.5, 0.25]);
        assert!((rect.volume() - 0.125).abs() < 1e-12);
        assert!((rect.margin() - 0.75).abs() < 1e-12);
        assert_eq!(rect.center().coords(), &[0.25, 0.125]);
    }

    #[test]
    fn containment_and_intersection() {
        let outer = r(&[0.0, 0.0], &[1.0, 1.0]);
        let inner = r(&[0.25, 0.25], &[0.5, 0.5]);
        let disjoint = r(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.intersects(&inner));
        assert!(!outer.intersects(&disjoint));
        assert!(outer.contains_point(&p(&[1.0, 1.0])));
        assert!(!outer.contains_point(&p(&[1.0, 1.1])));
    }

    #[test]
    fn overlap_volume() {
        let a = r(&[0.0, 0.0], &[0.6, 0.6]);
        let b = r(&[0.4, 0.4], &[1.0, 1.0]);
        assert!((a.overlap_volume(&b) - 0.04).abs() < 1e-12);
        let c = r(&[0.7, 0.0], &[1.0, 0.3]);
        assert_eq!(a.overlap_volume(&c), 0.0);
        // Touching edges have zero overlap volume but do intersect.
        let d = r(&[0.6, 0.0], &[1.0, 1.0]);
        assert_eq!(a.overlap_volume(&d), 0.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(&[0.0, 0.0], &[0.5, 0.5]);
        let b = r(&[0.5, 0.5], &[1.0, 1.0]);
        let u = a.union(&b);
        assert_eq!(u, HyperRect::unit(2));
        assert!((a.enlargement(&b) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn expansion() {
        let mut rect = HyperRect::from_point(&p(&[0.5, 0.5]));
        rect.expand_to_point(&p(&[0.2, 0.8]));
        assert_eq!(rect.lo_coords(), &[0.2, 0.5]);
        assert_eq!(rect.hi_coords(), &[0.5, 0.8]);
        rect.expand_to_rect(&r(&[0.0, 0.0], &[0.1, 0.1]));
        assert_eq!(rect.lo_coords(), &[0.0, 0.0]);
    }

    #[test]
    fn mindist_inside_is_zero() {
        let rect = r(&[0.2, 0.2], &[0.8, 0.8]);
        assert_eq!(rect.min_dist2(&p(&[0.5, 0.5])), 0.0);
        assert_eq!(rect.min_dist2(&p(&[0.2, 0.8])), 0.0);
    }

    #[test]
    fn mindist_outside() {
        let rect = r(&[0.2, 0.2], &[0.8, 0.8]);
        // Query left of the rect: distance only on axis 0.
        assert!((rect.min_dist2(&p(&[0.0, 0.5])) - 0.04).abs() < 1e-12);
        // Query diagonal: both axes contribute.
        assert!((rect.min_dist2(&p(&[0.0, 0.0])) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn maxdist_upper_bounds_mindist() {
        let rect = r(&[0.2, 0.2], &[0.8, 0.8]);
        let q = p(&[0.1, 0.9]);
        assert!(rect.max_dist2(&q) >= rect.min_dist2(&q));
    }

    #[test]
    fn minmaxdist_between_min_and_max() {
        let rect = r(&[0.2, 0.4], &[0.6, 0.9]);
        let q = p(&[0.0, 0.0]);
        let mn = rect.min_dist2(&q);
        let mm = rect.min_max_dist2(&q);
        let mx = rect.max_dist2(&q);
        assert!(mn <= mm && mm <= mx, "{mn} <= {mm} <= {mx}");
    }

    #[test]
    fn minmaxdist_known_value_1d() {
        // 1-d: MINMAXDIST is the distance to the nearer face.
        let rect = HyperRect::new(vec![0.4], vec![0.8]).unwrap();
        let q = Point::new(vec![0.0]).unwrap();
        assert!((rect.min_max_dist2(&q) - 0.16).abs() < 1e-12);
    }

    #[test]
    fn split_at_partitions_volume() {
        let rect = HyperRect::unit(3);
        let (a, b) = rect.split_at(1, 0.25);
        assert!((a.volume() + b.volume() - rect.volume()).abs() < 1e-12);
        assert_eq!(a.hi(1), 0.25);
        assert_eq!(b.lo(1), 0.25);
        // Split value outside is clamped.
        let (c, d) = rect.split_at(0, 2.0);
        assert_eq!(c.hi(0), 1.0);
        assert_eq!(d.volume(), 0.0);
    }
}
