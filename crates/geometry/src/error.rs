//! Error type shared by the geometric primitives.

use std::fmt;

/// Errors produced by geometric constructors and operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// Two objects that must live in the same space have different
    /// dimensionalities.
    DimensionMismatch {
        /// Dimensionality of the left-hand operand.
        left: usize,
        /// Dimensionality of the right-hand operand.
        right: usize,
    },
    /// A point or rectangle was constructed with zero dimensions.
    ZeroDimensional,
    /// A coordinate was not a finite number.
    NonFiniteCoordinate {
        /// Index of the offending coordinate.
        axis: usize,
        /// The offending value.
        value: f64,
    },
    /// A rectangle was constructed with `lo > hi` on some axis.
    InvertedBounds {
        /// Index of the offending axis.
        axis: usize,
    },
    /// The requested dimensionality exceeds what bucket numbers can encode
    /// (quadrant bitstrings are stored in a `u64`).
    DimensionTooLarge {
        /// The requested dimensionality.
        requested: usize,
        /// The largest supported dimensionality.
        max: usize,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeometryError::ZeroDimensional => write!(f, "zero-dimensional object"),
            GeometryError::NonFiniteCoordinate { axis, value } => {
                write!(f, "non-finite coordinate {value} on axis {axis}")
            }
            GeometryError::InvertedBounds { axis } => {
                write!(f, "inverted bounds (lo > hi) on axis {axis}")
            }
            GeometryError::DimensionTooLarge { requested, max } => {
                write!(f, "dimension {requested} exceeds supported maximum {max}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}
