//! Closed-form models of high-dimensional data-space effects.
//!
//! Section 3.1 of the paper derives the requirements for an optimal
//! declustering from two effects, both reproduced here:
//!
//! 1. The radius of the NN-sphere grows rapidly with dimension, so a query
//!    touches many partitions ([`expected_nn_distance`], after the cost
//!    model of Berchtold, Böhm, Keim and Kriegel \[BBKK 97\]).
//! 2. Almost all data lies near the (d−1)-dimensional surface of the data
//!    space ([`surface_probability`], Equation 1 / Figure 5).

/// Probability that a uniformly distributed point of `[0,1]^d` lies within
/// `eps` of the surface of the data space (Equation 1 of the paper with
/// `eps = 0.1`):
///
/// `p_surface(d) = 1 − (1 − 2·eps)^d`
///
/// For `eps = 0.1` this exceeds 97 % at `d = 16`.
pub fn surface_probability(dim: usize, eps: f64) -> f64 {
    assert!((0.0..=0.5).contains(&eps), "eps must be in [0, 0.5]");
    1.0 - (1.0 - 2.0 * eps).powi(dim as i32)
}

/// Natural logarithm of the gamma function (Lanczos approximation, accurate
/// to ~15 significant digits for positive arguments).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Volume of the d-dimensional hypersphere of radius `r`:
/// `V = π^{d/2} / Γ(d/2 + 1) · r^d`.
pub fn sphere_volume(dim: usize, radius: f64) -> f64 {
    assert!(dim > 0, "zero-dimensional sphere");
    assert!(radius >= 0.0, "negative radius");
    if radius == 0.0 {
        return 0.0;
    }
    let d = dim as f64;
    let ln_vol = 0.5 * d * std::f64::consts::PI.ln() - ln_gamma(0.5 * d + 1.0) + d * radius.ln();
    ln_vol.exp()
}

/// Radius of the d-dimensional hypersphere of a given volume (inverse of
/// [`sphere_volume`]).
pub fn sphere_radius(dim: usize, volume: f64) -> f64 {
    assert!(dim > 0, "zero-dimensional sphere");
    assert!(volume >= 0.0, "negative volume");
    if volume == 0.0 {
        return 0.0;
    }
    let d = dim as f64;
    let ln_r = (volume.ln() + ln_gamma(0.5 * d + 1.0) - 0.5 * d * std::f64::consts::PI.ln()) / d;
    ln_r.exp()
}

/// Expected nearest-neighbor distance for `n` uniformly distributed points
/// in `[0,1]^d`, following the simplified cost model of \[BBKK 97\]: the
/// expected NN-sphere around a random query point contains one data point,
/// i.e. its volume is `1/n` (boundary effects ignored, which the paper shows
/// only *increase* the radius).
///
/// This is the radius of the "NN-sphere" of Figure 4 — the region whose
/// intersecting data pages every NN algorithm must read.
pub fn expected_nn_distance(dim: usize, n: usize) -> f64 {
    assert!(n > 0, "empty data set");
    sphere_radius(dim, 1.0 / n as f64)
}

/// Expected distance of the k-th nearest neighbor: sphere volume `k/n`.
pub fn expected_knn_distance(dim: usize, n: usize, k: usize) -> f64 {
    assert!(n > 0 && k > 0 && k <= n, "require 0 < k <= n");
    sphere_radius(dim, k as f64 / n as f64)
}

/// Expected fraction of the 2^d quadrants intersected by the NN-sphere of a
/// random query: a Monte-Carlo-free heuristic used in the docs and sanity
/// tests. A quadrant is counted if the sphere radius exceeds the distance
/// from the query to the quadrant (0, 1 or 2 split planes away for direct /
/// indirect neighbors).
pub fn touched_neighbor_levels(dim: usize, n: usize) -> usize {
    let r = expected_nn_distance(dim, n);
    // With mid-point splits, a query at a random position is on average
    // 0.25 away from each split plane; reaching an indirect neighbor needs
    // crossing two planes (distance sqrt(2)*0.25 in the worst corner case).
    let step = 0.25;
    if r <= step {
        0
    } else if r * r <= 2.0 * step * step {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_probability_matches_paper() {
        // Figure 5: for eps = 0.1 the probability exceeds 97 % at d = 16.
        let p16 = surface_probability(16, 0.1);
        assert!(p16 > 0.97, "p16 = {p16}");
        // And it grows monotonically with dimension.
        let mut prev = 0.0;
        for d in 1..=32 {
            let p = surface_probability(d, 0.1);
            assert!(p > prev);
            prev = p;
        }
        // Closed form check at d = 1: 1 - 0.8 = 0.2.
        assert!((surface_probability(1, 0.1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn sphere_volume_known_values() {
        let pi = std::f64::consts::PI;
        // 1-d "sphere" of radius r is the interval of length 2r.
        assert!((sphere_volume(1, 0.5) - 1.0).abs() < 1e-12);
        // 2-d: pi r^2.
        assert!((sphere_volume(2, 1.0) - pi).abs() < 1e-12);
        // 3-d: 4/3 pi r^3.
        assert!((sphere_volume(3, 1.0) - 4.0 / 3.0 * pi).abs() < 1e-12);
    }

    #[test]
    fn sphere_radius_inverts_volume() {
        for dim in [1, 2, 3, 8, 16, 64] {
            for vol in [1e-6, 0.01, 0.5, 1.0, 10.0] {
                let r = sphere_radius(dim, vol);
                let v = sphere_volume(dim, r);
                assert!((v - vol).abs() / vol < 1e-10, "dim={dim} vol={vol}");
            }
        }
    }

    #[test]
    fn nn_distance_grows_with_dimension() {
        // Section 3.1: the NN-sphere radius increases rapidly with the
        // dimension; by d≈10 it exceeds a quadrant's half-extent (0.5) for
        // a 100k point database.
        let n = 100_000;
        let mut prev = 0.0;
        for d in 2..=32 {
            let r = expected_nn_distance(d, n);
            assert!(r > prev, "d={d}");
            prev = r;
        }
        assert!(expected_nn_distance(2, n) < 0.01);
        assert!(expected_nn_distance(16, n) > 0.5);
    }

    #[test]
    fn knn_distance_grows_with_k() {
        let d = 8;
        let n = 10_000;
        let d1 = expected_knn_distance(d, n, 1);
        let d10 = expected_knn_distance(d, n, 10);
        assert!(d10 > d1);
        assert!((expected_knn_distance(d, n, 1) - expected_nn_distance(d, n)).abs() < 1e-15);
    }

    #[test]
    fn touched_levels_increase_with_dim() {
        let n = 1_000_000;
        assert_eq!(touched_neighbor_levels(2, n), 0);
        assert!(touched_neighbor_levels(20, n) >= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
