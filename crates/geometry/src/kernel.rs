//! Unrolled distance kernels over flat `&[f64]` slices.
//!
//! Every distance the workspace computes ultimately lands here: the
//! [`crate::Point`] methods and the [`crate::Metric`] implementations all
//! delegate to these kernels, so the arena-backed leaf scans and the
//! `Vec<Point>` paths produce **bit-identical** results by construction.
//!
//! The kernels process coordinates in chunks of four with four independent
//! accumulators, which breaks the add-latency dependency chain and lets the
//! compiler keep four FMAs (or mul+adds) in flight. The tail (`dim % 4`
//! coordinates) is folded into the first accumulator, and the accumulators
//! are combined as `(s0 + s1) + (s2 + s3)` — a fixed reduction order, so a
//! given build computes one well-defined value per input pair.
//!
//! The `*_bounded` variants implement **partial-distance early abandon**:
//! after each chunk of four terms they compare the running sum against the
//! caller's bound (the current k-th-best distance) and bail with `None` once
//! it is exceeded. Because every term is non-negative and IEEE-754 rounding
//! is monotone, the running sum never decreases, so a checkpoint that
//! exceeds the bound proves the full distance would too — abandoning is
//! *exact*, never approximate. When the scan survives every checkpoint, the
//! returned `Some(value)` is bit-identical to the unbounded kernel because
//! both run the very same accumulation.

/// Fused multiply-add when the target actually has an FMA unit, plain
/// mul+add otherwise.
///
/// On the baseline `x86-64` target (SSE2 only) `f64::mul_add` lowers to a
/// libm soft-float call that is an order of magnitude slower than a mul and
/// an add, so the fused form is only worth emitting when
/// `target_feature = "fma"` is enabled (e.g. `-C target-cpu=native`).
#[inline(always)]
fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// This is *the* canonical L2 arithmetic of the workspace:
/// [`crate::Point::dist2`] delegates here.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 = fmadd(d0, d0, s0);
        s1 = fmadd(d1, d1, s1);
        s2 = fmadd(d2, d2, s2);
        s3 = fmadd(d3, d3, s3);
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 = fmadd(d, d, s0);
    }
    (s0 + s1) + (s2 + s3)
}

/// Manhattan (L1) distance between two coordinate slices.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 += (xa[0] - xb[0]).abs();
        s1 += (xa[1] - xb[1]).abs();
        s2 += (xa[2] - xb[2]).abs();
        s3 += (xa[3] - xb[3]).abs();
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 += (x - y).abs();
    }
    (s0 + s1) + (s2 + s3)
}

/// Chebyshev (L∞ / maximum) distance between two coordinate slices.
///
/// `max` is exactly order-independent over non-negative terms, so this
/// kernel agrees bit-for-bit with any sequential fold.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 = s0.max((xa[0] - xb[0]).abs());
        s1 = s1.max((xa[1] - xb[1]).abs());
        s2 = s2.max((xa[2] - xb[2]).abs());
        s3 = s3.max((xa[3] - xb[3]).abs());
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 = s0.max((x - y).abs());
    }
    (s0.max(s1)).max(s2.max(s3))
}

/// Squared Euclidean distance with partial-distance early abandon.
///
/// Returns `None` as soon as a chunk checkpoint proves the full distance
/// exceeds `bound`; otherwise `Some(d2)` where `d2` is bit-identical to
/// [`dist2`]. `Some(d2)` with `d2 > bound` is possible when only the tail
/// coordinates push the sum over — callers comparing against an exact
/// radius must re-check.
#[inline]
pub fn dist2_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 = fmadd(d0, d0, s0);
        s1 = fmadd(d1, d1, s1);
        s2 = fmadd(d2, d2, s2);
        s3 = fmadd(d3, d3, s3);
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 = fmadd(d, d, s0);
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Manhattan distance with partial-distance early abandon (see
/// [`dist2_bounded`] for the contract).
#[inline]
pub fn manhattan_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 += (xa[0] - xb[0]).abs();
        s1 += (xa[1] - xb[1]).abs();
        s2 += (xa[2] - xb[2]).abs();
        s3 += (xa[3] - xb[3]).abs();
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 += (x - y).abs();
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Chebyshev distance with early abandon (see [`dist2_bounded`] for the
/// contract).
#[inline]
pub fn chebyshev_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 = s0.max((xa[0] - xb[0]).abs());
        s1 = s1.max((xa[1] - xb[1]).abs());
        s2 = s2.max((xa[2] - xb[2]).abs());
        s3 = s3.max((xa[3] - xb[3]).abs());
        if (s0.max(s1)).max(s2.max(s3)) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 = s0.max((x - y).abs());
    }
    Some((s0.max(s1)).max(s2.max(s3)))
}

/// Scans a whole row-major block of vectors against one query, writing the
/// squared Euclidean distance of every row into `out`.
///
/// `block` must hold `out.len()` rows of `dim` coordinates each. Each
/// written distance is bit-identical to [`dist2`] on the corresponding row.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch(query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2(query, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    fn vecs(dim: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic, mildly irregular coordinates covering the tail
        // paths of every chunking scheme.
        let a: Vec<f64> = (0..dim)
            .map(|i| (i as f64 * 0.37).sin() * 0.5 + 0.5)
            .collect();
        let b: Vec<f64> = (0..dim)
            .map(|i| (i as f64 * 0.61).cos() * 0.5 + 0.5)
            .collect();
        (a, b)
    }

    #[test]
    fn dist2_matches_naive_closely_for_all_tail_lengths() {
        for dim in 1..=17 {
            let (a, b) = vecs(dim);
            let k = dist2(&a, &b);
            let n = naive_dist2(&a, &b);
            assert!((k - n).abs() <= 1e-12 * n.max(1.0), "dim {dim}: {k} vs {n}");
        }
    }

    #[test]
    fn small_dims_are_exact() {
        // Dims below the unroll width take the pure tail path, which is the
        // plain sequential sum.
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        assert_eq!(chebyshev(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    #[test]
    fn bounded_some_is_bit_identical_to_full() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let (a, b) = vecs(dim);
            let full = dist2(&a, &b);
            // A bound the scan always survives.
            let got = dist2_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
            let full = manhattan(&a, &b);
            let got = manhattan_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
            let full = chebyshev(&a, &b);
            let got = chebyshev_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
        }
    }

    #[test]
    fn bounded_abandons_only_above_the_bound() {
        let (a, b) = vecs(32);
        let full = dist2(&a, &b);
        // Bound below the true distance: may abandon (and here, with 8
        // chunks, certainly does for a tiny bound).
        assert_eq!(dist2_bounded(&a, &b, full / 16.0), None);
        // Bound at exactly the true distance: `>` means it must survive.
        assert_eq!(dist2_bounded(&a, &b, full), Some(full));
        assert_eq!(
            manhattan_bounded(&a, &b, manhattan(&a, &b)),
            Some(manhattan(&a, &b))
        );
        assert_eq!(
            chebyshev_bounded(&a, &b, chebyshev(&a, &b)),
            Some(chebyshev(&a, &b))
        );
    }

    #[test]
    fn batch_matches_single_rows() {
        let dim = 7;
        let rows = 5;
        let (q, _) = vecs(dim);
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.13).fract()).collect();
        let mut out = vec![0.0; rows];
        dist2_batch(&q, &block, dim, &mut out);
        for (r, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[r].to_bits(), dist2(&q, row).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn batch_rejects_ragged_blocks() {
        let mut out = vec![0.0; 2];
        dist2_batch(&[0.5, 0.5], &[0.0; 5], 2, &mut out);
    }
}
