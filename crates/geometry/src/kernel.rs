//! Unrolled distance kernels over flat `&[f64]` slices.
//!
//! Every distance the workspace computes ultimately lands here: the
//! [`crate::Point`] methods and the [`crate::Metric`] implementations all
//! delegate to these kernels, so the arena-backed leaf scans and the
//! `Vec<Point>` paths produce **bit-identical** results by construction.
//!
//! The kernels process coordinates in chunks of four with four independent
//! accumulators, which breaks the add-latency dependency chain and lets the
//! compiler keep four FMAs (or mul+adds) in flight. The tail (`dim % 4`
//! coordinates) is folded into the first accumulator, and the accumulators
//! are combined as `(s0 + s1) + (s2 + s3)` — a fixed reduction order, so a
//! given build computes one well-defined value per input pair.
//!
//! The `*_bounded` variants implement **partial-distance early abandon**:
//! after each chunk of [`CHECKPOINT_LANES`] terms they compare the running
//! sum against the caller's bound (the current k-th-best distance) and bail
//! with `None` once it is exceeded. Because every term is non-negative and
//! IEEE-754 rounding is monotone, the running sum never decreases, so a
//! checkpoint that exceeds the bound proves the full distance would too —
//! abandoning is *exact*, never approximate. When the scan survives every
//! checkpoint, the returned `Some(value)` is bit-identical to the unbounded
//! kernel because both run the very same accumulation.
//!
//! # Precision tiers
//!
//! Next to the canonical f64 kernels this module carries two cheap tiers
//! used by the two-phase leaf scan: **f32** kernels over single-precision
//! mirrors ([`dist2_f32`], [`dist2_batch_f32`] and bounded variants) and
//! **q8** kernels over 8-bit scalar-quantized codes ([`dist2_q8`],
//! [`dist2_batch_q8`] and bounded variants, exact integer arithmetic).
//! Neither tier ever *answers* a query; their results are turned into
//! certified **lower bounds** on the true f64 distance via the
//! `lb2_from_*` / `*_prune_threshold` helpers below, so a row they
//! disqualify provably cannot enter the k-NN result and every survivor is
//! re-ranked with the canonical [`dist2`] — returned answers stay
//! bit-identical to a pure f64 scan.
//!
//! The certification argument is the triangle inequality plus a forward
//! error bound: with `q̂`, `x̂` the low-precision representations and
//! `r_q ≥ ‖q−q̂‖`, `r_x ≥ ‖x−x̂‖` (computed in f64, stored as
//! overestimates), `‖q−x‖ ≥ ‖q̂−x̂‖ − r_q − r_x`. The f32 kernel does not
//! compute `‖q̂−x̂‖²` exactly; its accumulated sum `S` satisfies
//! `S ≤ (1+γ)·σ` with `σ` the exact sum and `γ =` [`f32_accum_slack`], so
//! `σ ≥ S/(1+γ)` is still certain. The q8 kernel's code-space sum is exact
//! integer arithmetic; the only slack needed is the f64 rounding of the
//! reconstruction grid, absorbed into the stored `r` values by
//! [`displacement_norm_q8`]. Every helper rounds its slack *against* the
//! pruning decision, so `lb ≤ dist2` holds unconditionally (certified for
//! dimensions up to ~10⁶; see [`CERT_PAD`]).

/// Accumulator-lane count of every kernel in this module — and therefore
/// the **checkpoint cadence** of the `*_bounded` variants, which compare
/// the running sum against the bound once per `CHECKPOINT_LANES` terms.
///
/// This constant is load-bearing for the lower-bound certification, not a
/// style choice: [`f32_accum_slack`] budgets the accumulation error as
/// `2·(dim + CHECKPOINT_LANES)·ε₃₂`, where the `+ CHECKPOINT_LANES` term
/// pays for the final cross-lane reduction `(s0 + s1) + (s2 + s3)`. A wider
/// unroll without a matching slack update would under-estimate the error
/// and could certify a false prune. The kernel bodies hard-code the width
/// in their `chunks_exact(4)` / `xa[0..=3]` shape; the compile-time guard
/// below and `checkpoint_cadence_is_four_lanes` in the test module keep the
/// constant and the bodies from drifting apart.
pub const CHECKPOINT_LANES: usize = 4;

// The kernel bodies index lanes 0..=3 explicitly; they must agree with the
// advertised cadence.
const _: () = assert!(CHECKPOINT_LANES == 4);

/// Fused multiply-add when the target actually has an FMA unit, plain
/// mul+add otherwise.
///
/// On the baseline `x86-64` target (SSE2 only) `f64::mul_add` lowers to a
/// libm soft-float call that is an order of magnitude slower than a mul and
/// an add, so the fused form is only worth emitting when
/// `target_feature = "fma"` is enabled (e.g. `-C target-cpu=native`).
#[inline(always)]
fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// This is *the* canonical L2 arithmetic of the workspace:
/// [`crate::Point::dist2`] delegates here.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 = fmadd(d0, d0, s0);
        s1 = fmadd(d1, d1, s1);
        s2 = fmadd(d2, d2, s2);
        s3 = fmadd(d3, d3, s3);
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 = fmadd(d, d, s0);
    }
    (s0 + s1) + (s2 + s3)
}

/// Manhattan (L1) distance between two coordinate slices.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 += (xa[0] - xb[0]).abs();
        s1 += (xa[1] - xb[1]).abs();
        s2 += (xa[2] - xb[2]).abs();
        s3 += (xa[3] - xb[3]).abs();
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 += (x - y).abs();
    }
    (s0 + s1) + (s2 + s3)
}

/// Chebyshev (L∞ / maximum) distance between two coordinate slices.
///
/// `max` is exactly order-independent over non-negative terms, so this
/// kernel agrees bit-for-bit with any sequential fold.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 = s0.max((xa[0] - xb[0]).abs());
        s1 = s1.max((xa[1] - xb[1]).abs());
        s2 = s2.max((xa[2] - xb[2]).abs());
        s3 = s3.max((xa[3] - xb[3]).abs());
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 = s0.max((x - y).abs());
    }
    (s0.max(s1)).max(s2.max(s3))
}

/// Squared Euclidean distance with partial-distance early abandon.
///
/// Returns `None` as soon as a chunk checkpoint proves the full distance
/// exceeds `bound`; otherwise `Some(d2)` where `d2` is bit-identical to
/// [`dist2`]. `Some(d2)` with `d2 > bound` is possible when only the tail
/// coordinates push the sum over — callers comparing against an exact
/// radius must re-check.
#[inline]
pub fn dist2_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    dist2_bounded_depth(a, b, bound).0
}

/// [`dist2_bounded`] plus the number of checkpoint comparisons performed.
///
/// The second value is the **abandon depth** in units of
/// [`CHECKPOINT_LANES`] coordinates: an abandon at the `c`-th checkpoint
/// returns `(None, c)`, meaning `c · CHECKPOINT_LANES` coordinates were
/// consumed before the partial sum cleared the bound; a survivor returns
/// `(Some(d2), dim / CHECKPOINT_LANES)`. The `Option` is bit-identical to
/// [`dist2_bounded`] — the counter only observes the checkpoints the
/// shared accumulation already evaluates.
#[inline]
pub fn dist2_bounded_depth(a: &[f64], b: &[f64], bound: f64) -> (Option<f64>, u64) {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let mut cp = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 = fmadd(d0, d0, s0);
        s1 = fmadd(d1, d1, s1);
        s2 = fmadd(d2, d2, s2);
        s3 = fmadd(d3, d3, s3);
        cp += 1;
        if (s0 + s1) + (s2 + s3) > bound {
            return (None, cp);
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 = fmadd(d, d, s0);
    }
    (Some((s0 + s1) + (s2 + s3)), cp)
}

/// Manhattan distance with partial-distance early abandon (see
/// [`dist2_bounded`] for the contract).
#[inline]
pub fn manhattan_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 += (xa[0] - xb[0]).abs();
        s1 += (xa[1] - xb[1]).abs();
        s2 += (xa[2] - xb[2]).abs();
        s3 += (xa[3] - xb[3]).abs();
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 += (x - y).abs();
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Chebyshev distance with early abandon (see [`dist2_bounded`] for the
/// contract).
#[inline]
pub fn chebyshev_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 = s0.max((xa[0] - xb[0]).abs());
        s1 = s1.max((xa[1] - xb[1]).abs());
        s2 = s2.max((xa[2] - xb[2]).abs());
        s3 = s3.max((xa[3] - xb[3]).abs());
        if (s0.max(s1)).max(s2.max(s3)) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 = s0.max((x - y).abs());
    }
    Some((s0.max(s1)).max(s2.max(s3)))
}

/// Scans a whole row-major block of vectors against one query, writing the
/// squared Euclidean distance of every row into `out`.
///
/// `block` must hold `out.len()` rows of `dim` coordinates each. Each
/// written distance is bit-identical to [`dist2`] on the corresponding row.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch(query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2(query, row);
    }
}

/// Squared Euclidean distance between two f32 mirrors, single precision.
///
/// Four-lane accumulation like [`dist2`], but deliberately **without** the
/// FMA gate: the certification slack [`f32_accum_slack`] is derived for
/// plain round-to-nearest mul+add (FMA would only shrink the error, so the
/// slack stays valid either way, but one fixed shape keeps the analysis
/// readable). The result is *not* a distance anyone may return — it feeds
/// [`lb2_from_f32`] / [`f32_prune_threshold`] which turn it into a
/// certified lower bound on the f64 distance.
#[inline]
pub fn dist2_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 += d * d;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`dist2_f32`] with partial-distance early abandon at the
/// [`CHECKPOINT_LANES`] cadence.
///
/// Abandoning is certified by monotonicity exactly as for
/// [`dist2_bounded`]: non-negative terms under round-to-nearest never
/// shrink a lane, so a checkpoint above `bound` proves the full sum ends
/// above `bound` too. Overflow is safe by the same argument — once a lane
/// reaches `+∞` it stays there, and `∞ > bound` holds for every finite
/// bound. Callers that pass `bound = f32::INFINITY` disable abandonment
/// (nothing exceeds it, including `∞` itself) and must treat non-finite
/// `Some` sums as uncertified (see [`f32_row_prunable`]).
#[inline]
pub fn dist2_f32_bounded(a: &[f32], b: &[f32], bound: f32) -> Option<f32> {
    dist2_f32_bounded_depth(a, b, bound).0
}

/// [`dist2_f32_bounded`] plus the number of checkpoint comparisons
/// performed (see [`dist2_bounded_depth`] for the depth contract).
#[inline]
pub fn dist2_f32_bounded_depth(a: &[f32], b: &[f32], bound: f32) -> (Option<f32>, u64) {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let mut cp = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        cp += 1;
        if (s0 + s1) + (s2 + s3) > bound {
            return (None, cp);
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 += d * d;
    }
    (Some((s0 + s1) + (s2 + s3)), cp)
}

/// Scans a row-major f32 block against one f32 query, writing every row's
/// [`dist2_f32`] into `out`.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_f32(query: &[f32], block: &[f32], dim: usize, out: &mut [f32]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_f32(query, row);
    }
}

/// Bounded variant of [`dist2_batch_f32`]: every row runs
/// [`dist2_f32_bounded`] against the same `bound`, `None` marking rows
/// abandoned at a checkpoint.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_f32_bounded(
    query: &[f32],
    block: &[f32],
    dim: usize,
    bound: f32,
    out: &mut [Option<f32>],
) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_f32_bounded(query, row, bound);
    }
}

/// [`dist2_batch_f32_bounded`] plus abandon-depth accounting: returns
/// `(abandoned_rows, abandon_checkpoints)`, where the second figure sums
/// the checkpoint count of every **abandoned** row (survivor checkpoints
/// are not counted, so `abandon_checkpoints / abandoned_rows` is the mean
/// abandon depth in [`CHECKPOINT_LANES`] units). The per-row results are
/// bit-identical to [`dist2_batch_f32_bounded`].
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_f32_bounded_depth(
    query: &[f32],
    block: &[f32],
    dim: usize,
    bound: f32,
    out: &mut [Option<f32>],
) -> (u64, u64) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    let (mut rows, mut cps) = (0u64, 0u64);
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        let (s, cp) = dist2_f32_bounded_depth(query, row, bound);
        if s.is_none() {
            rows += 1;
            cps += cp;
        }
        *slot = s;
    }
    (rows, cps)
}

/// Code-space squared distance between two 8-bit quantized rows: the
/// **exact** integer `Σ (a[i] − b[i])²` over the u8 codes.
///
/// Four u64 lanes; each term is at most `255² = 65025`, so the sum is
/// exact for any realistic dimension (no overflow below `dim ≈ 2⁵⁰`), and
/// `(sum as f64)` is exact below `2⁵³`. The caller owns the grid (per-block
/// `min`/`scale`); [`lb2_from_q8`] / [`q8_prune_threshold`] convert the
/// code-space sum into a certified lower bound on the f64 distance.
#[inline]
pub fn dist2_q8(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0u64;
    let mut s1 = 0u64;
    let mut s2 = 0u64;
    let mut s3 = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] as i32 - xb[0] as i32;
        let d1 = xa[1] as i32 - xb[1] as i32;
        let d2 = xa[2] as i32 - xb[2] as i32;
        let d3 = xa[3] as i32 - xb[3] as i32;
        s0 += (d0 * d0) as u64;
        s1 += (d1 * d1) as u64;
        s2 += (d2 * d2) as u64;
        s3 += (d3 * d3) as u64;
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = *x as i32 - *y as i32;
        s0 += (d * d) as u64;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`dist2_q8`] with early abandon at the [`CHECKPOINT_LANES`] cadence.
///
/// Integer accumulation is exact and strictly monotone, so a checkpoint
/// above `bound` proves the full code-space sum exceeds it — no rounding
/// argument is even needed here.
#[inline]
pub fn dist2_q8_bounded(a: &[u8], b: &[u8], bound: u64) -> Option<u64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0u64;
    let mut s1 = 0u64;
    let mut s2 = 0u64;
    let mut s3 = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] as i32 - xb[0] as i32;
        let d1 = xa[1] as i32 - xb[1] as i32;
        let d2 = xa[2] as i32 - xb[2] as i32;
        let d3 = xa[3] as i32 - xb[3] as i32;
        s0 += (d0 * d0) as u64;
        s1 += (d1 * d1) as u64;
        s2 += (d2 * d2) as u64;
        s3 += (d3 * d3) as u64;
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = *x as i32 - *y as i32;
        s0 += (d * d) as u64;
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Scans a row-major q8 code block against one quantized query, writing
/// every row's [`dist2_q8`] into `out`.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_q8(query: &[u8], block: &[u8], dim: usize, out: &mut [u64]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_q8(query, row);
    }
}

/// Bounded variant of [`dist2_batch_q8`]: every row runs
/// [`dist2_q8_bounded`] against the same `bound`.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_q8_bounded(
    query: &[u8],
    block: &[u8],
    dim: usize,
    bound: u64,
    out: &mut [Option<u64>],
) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_q8_bounded(query, row, bound);
    }
}

/// Weighted code-space squared distance for **per-dimension** q8 grids:
/// `Σ_j w[j] · (a[j] − b[j])²` accumulated in f64, with `w[j]` the squared
/// grid step of lane `j` (see `VectorArena::q8_weights`).
///
/// With per-lane scales the reconstruction distance is no longer
/// `scale²·Σ d²` of one global grid; each lane contributes
/// `(scale_j·d_j)²`. The integer code difference squared (`≤ 255² =
/// 65025`) is exact in f64, so the only rounding is the weight product and
/// the four-lane accumulation, budgeted by [`q8w_accum_slack`]. Same
/// four-lane shape and checkpoint cadence as every other kernel here;
/// plain mul+add (no FMA gate) like [`dist2_f32`], so one fixed rounding
/// model backs the slack.
///
/// Degenerate lanes (constant coordinate, `scale = 0`) carry weight `0`
/// and contribute nothing — their reconstruction is exact, so per-lane
/// grids never force a whole block off the q8 tier the way a constant
/// block did under the old scalar grid.
///
/// The query side `a` is **wide** i32 codes (see [`Q8W_CODE_CAP`]): a
/// query coordinate outside the block's per-lane range encodes to a code
/// beyond `[0, 255]` instead of clamping to the grid edge. Per-leaf lanes
/// are narrow, so clamping would routinely inflate the query displacement
/// `r_q` to the full query-to-leaf distance and destroy the pruning
/// margin; wide codes keep `r_q` at half a grid step per lane. Code
/// differences stay `≤ 2·Q8W_CODE_CAP`, so `d²` is exact in both i64 and
/// f64.
#[inline]
pub fn dist2_q8w(a: &[i32], b: &[u8], w: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    debug_assert_eq!(a.len(), w.len(), "weight dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let cw = w.chunks_exact(4);
    let (ta, tb, tw) = (ca.remainder(), cb.remainder(), cw.remainder());
    for ((xa, xb), xw) in ca.zip(cb).zip(cw) {
        let d0 = (xa[0] as i64 - xb[0] as i64).pow(2) as f64;
        let d1 = (xa[1] as i64 - xb[1] as i64).pow(2) as f64;
        let d2 = (xa[2] as i64 - xb[2] as i64).pow(2) as f64;
        let d3 = (xa[3] as i64 - xb[3] as i64).pow(2) as f64;
        s0 += xw[0] * d0;
        s1 += xw[1] * d1;
        s2 += xw[2] * d2;
        s3 += xw[3] * d3;
    }
    for ((x, y), wj) in ta.iter().zip(tb).zip(tw) {
        let d = (*x as i64 - *y as i64).pow(2) as f64;
        s0 += wj * d;
    }
    (s0 + s1) + (s2 + s3)
}

/// Magnitude cap on the wide query codes of the weighted q8 kernels.
///
/// With `|code| ≤ 2²⁵` the difference against a row code (`∈ [0, 255]`)
/// stays below `2²⁶`, so its square is below `2⁵²` — exactly representable
/// in f64, preserving the "`d²` is exact" premise of
/// [`q8w_accum_slack`]. Queries that would encode beyond the cap are
/// clamped to it; the residual reconstruction error is charged to the
/// query displacement `r_q` by the encoder, so certification stays valid
/// (such a query is ≥ `2²⁵` grid steps outside the block — pruning power
/// there is irrelevant).
pub const Q8W_CODE_CAP: i32 = 1 << 25;

/// [`dist2_q8w`] with early abandon at the [`CHECKPOINT_LANES`] cadence,
/// plus the checkpoint count (see [`dist2_bounded_depth`]).
///
/// Every term `w[j]·d²` is non-negative and IEEE addition is monotone, so
/// a checkpoint above `bound` certifies the full sum would be too. An
/// overflowed (`+∞`) running sum abandons safely as well: reaching `∞`
/// requires the exact sum to exceed `f64::MAX / 2`, astronomically above
/// any threshold derived from a finite pruning bound.
#[inline]
pub fn dist2_q8w_bounded_depth(a: &[i32], b: &[u8], w: &[f64], bound: f64) -> (Option<f64>, u64) {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    debug_assert_eq!(a.len(), w.len(), "weight dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let mut cp = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let cw = w.chunks_exact(4);
    let (ta, tb, tw) = (ca.remainder(), cb.remainder(), cw.remainder());
    for ((xa, xb), xw) in ca.zip(cb).zip(cw) {
        let d0 = (xa[0] as i64 - xb[0] as i64).pow(2) as f64;
        let d1 = (xa[1] as i64 - xb[1] as i64).pow(2) as f64;
        let d2 = (xa[2] as i64 - xb[2] as i64).pow(2) as f64;
        let d3 = (xa[3] as i64 - xb[3] as i64).pow(2) as f64;
        s0 += xw[0] * d0;
        s1 += xw[1] * d1;
        s2 += xw[2] * d2;
        s3 += xw[3] * d3;
        cp += 1;
        if (s0 + s1) + (s2 + s3) > bound {
            return (None, cp);
        }
    }
    for ((x, y), wj) in ta.iter().zip(tb).zip(tw) {
        let d = (*x as i64 - *y as i64).pow(2) as f64;
        s0 += wj * d;
    }
    (Some((s0 + s1) + (s2 + s3)), cp)
}

/// [`dist2_q8w_bounded_depth`] without the depth counter.
#[inline]
pub fn dist2_q8w_bounded(a: &[i32], b: &[u8], w: &[f64], bound: f64) -> Option<f64> {
    dist2_q8w_bounded_depth(a, b, w, bound).0
}

/// Scans a row-major q8 code block against one quantized query with the
/// weighted per-dimension kernel, abandoning rows at `bound` and returning
/// `(abandoned_rows, abandon_checkpoints)` (see
/// [`dist2_batch_f32_bounded_depth`] for the accounting contract).
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim`, or the query or weight
/// vector has the wrong dimension.
pub fn dist2_batch_q8w_bounded_depth(
    query: &[i32],
    block: &[u8],
    w: &[f64],
    dim: usize,
    bound: f64,
    out: &mut [Option<f64>],
) -> (u64, u64) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(w.len(), dim, "weight dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    let (mut rows, mut cps) = (0u64, 0u64);
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        let (s, cp) = dist2_q8w_bounded_depth(query, row, w, bound);
        if s.is_none() {
            rows += 1;
            cps += cp;
        }
        *slot = s;
    }
    (rows, cps)
}

/// Relative padding applied wherever the certification helpers do f64
/// arithmetic of their own (a handful of mul/add/sqrt roundings, each
/// bounded by `ε₆₄ ≈ 2.2·10⁻¹⁶` relative).
///
/// `10⁻⁹` over-covers those roundings by six orders of magnitude while
/// costing a relative `10⁻⁹` of pruning power — unmeasurable. It also
/// absorbs the rounding of the *canonical f64 kernel itself*: a certified
/// prune guarantees `dist2 ≥ bound·(1+CERT_PAD)` in exact arithmetic, so
/// the computed [`dist2`] stays `≥ bound` as long as its own relative
/// error `2·(dim+4)·ε₆₄` is below `CERT_PAD`, i.e. for dimensions up to
/// about `2·10⁶`.
pub const CERT_PAD: f64 = 1e-9;

/// Relative forward-error budget of the f32 accumulation in
/// [`dist2_f32`]: the computed sum `S` and the exact sum `σ` satisfy
/// `|S − σ| ≤ f32_accum_slack(dim) · σ`.
///
/// Budgeted as `2·(dim + CHECKPOINT_LANES)·ε₃₂` with `ε₃₂ = f32::EPSILON`:
/// `dim` products, per-lane chains of at most `dim` additions, plus the
/// cross-lane reduction — a standard Higham-style bound, stated with the
/// full machine epsilon (twice the unit roundoff) for headroom. Returns a
/// value `≥ 1` only for absurd dimensions (`> 2²²`), where the f32 tier
/// certifies nothing and callers should stay on f64.
pub fn f32_accum_slack(dim: usize) -> f64 {
    2.0 * (dim + CHECKPOINT_LANES) as f64 * f32::EPSILON as f64
}

/// Relative forward-error budget of the weighted q8 accumulation in
/// [`dist2_q8w`]: the computed sum `S` and the exact `σ = Σ w_j·d_j²`
/// satisfy `|S − σ| ≤ q8w_accum_slack(dim) · σ`.
///
/// Per term: the weight itself carries one rounding (`scale_j²`), the
/// product `w_j·d_j²` another (`d_j²` is an exact integer in f64), and the
/// additions contribute a Higham chain of at most `dim` roundings per lane
/// plus the cross-lane reduction — `4·(dim + CHECKPOINT_LANES)·ε₆₄` covers
/// all of it with headroom (stated with the full machine epsilon, twice
/// the unit roundoff).
pub fn q8w_accum_slack(dim: usize) -> f64 {
    4.0 * (dim + CHECKPOINT_LANES) as f64 * f64::EPSILON
}

/// The abandon bound for a **permuted** f64 filter scan certifying against
/// a pruning radius `bound`: inflates the radius by [`CERT_PAD`] so that a
/// row abandoned on the energy-permuted accumulation provably has
/// **computed natural-order** [`dist2`] `≥ bound` as well.
///
/// Permuting coordinates re-orders the four-lane accumulation, so the
/// permuted sum and the canonical natural-order sum differ by a relative
/// `γ = 2·(dim + CHECKPOINT_LANES)·ε₆₄` each against the exact value. A
/// permuted checkpoint `S_p > bound·(1+CERT_PAD)` gives exact
/// `σ ≥ S_p/(1+γ) > bound·(1+CERT_PAD)/(1+γ)` and therefore computed
/// natural `D ≥ σ·(1−γ) > bound·(1+CERT_PAD)·(1−γ)/(1+γ) ≥ bound` as long
/// as `CERT_PAD ≥ ~2γ` — true for dimensions up to ~10⁶. Callers re-rank
/// every survivor with the natural-order kernel, so answers stay
/// bit-identical to a natural scan while abandons fire on the
/// highest-variance lanes first.
pub fn order_prune_bound(bound: f64) -> f64 {
    if bound.is_finite() {
        bound * (1.0 + CERT_PAD)
    } else {
        bound
    }
}

/// Overestimate of the displacement `‖v − m‖₂` between a row and its f32
/// mirror, suitable as the `r` input of the f32 certification helpers.
///
/// The sum runs in f64 over exactly representable inputs (f32 → f64 is
/// exact), so its error is purely relative and far below the
/// [`CERT_PAD`] inflation applied at the end.
pub fn displacement_norm_f32(v: &[f64], m: &[f32]) -> f64 {
    debug_assert_eq!(v.len(), m.len(), "dimension mismatch");
    let mut s = 0.0f64;
    for (x, y) in v.iter().zip(m) {
        let d = x - *y as f64;
        s += d * d;
    }
    s.sqrt() * (1.0 + CERT_PAD)
}

/// Overestimate of the displacement `‖v − x̂‖₂` between a row and its q8
/// reconstruction `x̂[i] = min + codes[i]·scale` (the *ideal* grid point in
/// exact arithmetic), suitable as the `r` input of the q8 helpers.
///
/// Unlike the f32 case the reconstruction is computed, not stored, so each
/// coordinate carries an absolute f64 error up to a few `ε₆₄·|x̂[i]|`; the
/// `8·ε₆₄·amax·√dim` term over-covers that before the relative
/// [`CERT_PAD`] inflation.
pub fn displacement_norm_q8(v: &[f64], codes: &[u8], min: f64, scale: f64) -> f64 {
    debug_assert_eq!(v.len(), codes.len(), "dimension mismatch");
    let mut s = 0.0f64;
    let mut amax = 0.0f64;
    for (x, c) in v.iter().zip(codes) {
        let r = min + *c as f64 * scale;
        amax = amax.max(r.abs()).max(x.abs());
        let d = x - r;
        s += d * d;
    }
    let fudge = 8.0 * f64::EPSILON * amax * (v.len() as f64).sqrt();
    (s.sqrt() + fudge) * (1.0 + CERT_PAD)
}

/// Per-dimension-grid counterpart of [`displacement_norm_q8`]: the
/// reconstruction of lane `j` is `mins[j] + codes[j]·scales[j]`, each lane
/// on its own grid. Degenerate lanes (`scales[j] = 0`) reconstruct to
/// `mins[j]` exactly.
pub fn displacement_norm_q8w(v: &[f64], codes: &[u8], mins: &[f64], scales: &[f64]) -> f64 {
    debug_assert_eq!(v.len(), codes.len(), "dimension mismatch");
    debug_assert_eq!(v.len(), mins.len(), "grid dimension mismatch");
    debug_assert_eq!(v.len(), scales.len(), "grid dimension mismatch");
    let mut s = 0.0f64;
    let mut amax = 0.0f64;
    for (j, (x, c)) in v.iter().zip(codes).enumerate() {
        let r = mins[j] + *c as f64 * scales[j];
        amax = amax.max(r.abs()).max(x.abs());
        let d = x - r;
        s += d * d;
    }
    let fudge = 8.0 * f64::EPSILON * amax * (v.len() as f64).sqrt();
    (s.sqrt() + fudge) * (1.0 + CERT_PAD)
}

/// [`displacement_norm_q8w`] for the **query** side's wide i32 codes (see
/// [`Q8W_CODE_CAP`]): identical math, but codes may lie outside
/// `[0, 255]`, so an in-range-per-lane query reconstructs within half a
/// grid step even when it falls outside the block's bounding box — this is
/// what keeps the q8 prune threshold tight on narrow per-leaf grids.
pub fn displacement_norm_q8w_query(v: &[f64], codes: &[i32], mins: &[f64], scales: &[f64]) -> f64 {
    debug_assert_eq!(v.len(), codes.len(), "dimension mismatch");
    debug_assert_eq!(v.len(), mins.len(), "grid dimension mismatch");
    debug_assert_eq!(v.len(), scales.len(), "grid dimension mismatch");
    let mut s = 0.0f64;
    let mut amax = 0.0f64;
    for (j, (x, c)) in v.iter().zip(codes).enumerate() {
        let r = mins[j] + *c as f64 * scales[j];
        amax = amax.max(r.abs()).max(x.abs());
        let d = x - r;
        s += d * d;
    }
    let fudge = 8.0 * f64::EPSILON * amax * (v.len() as f64).sqrt();
    (s.sqrt() + fudge) * (1.0 + CERT_PAD)
}

/// Certified lower bound on the **exact** squared f64 distance `‖q−x‖²`
/// from the f32 kernel sum `s = dist2_f32(q̂, x̂)` and displacement
/// overestimates `rq ≥ ‖q−q̂‖`, `rx ≥ ‖x−x̂‖`.
///
/// Non-finite `s` (overflow to `∞`, or NaN from `∞−∞` diffs) certifies
/// nothing and yields the trivial bound `0`.
pub fn lb2_from_f32(s: f32, rq: f64, rx: f64, dim: usize) -> f64 {
    if !s.is_finite() {
        return 0.0;
    }
    // σ ≥ S/(1+γ); deflate every own rounding toward zero.
    let sigma = s as f64 / ((1.0 + f32_accum_slack(dim)) * (1.0 + CERT_PAD));
    let lb = (sigma.sqrt() * (1.0 - CERT_PAD) - rq - rx).max(0.0);
    (lb * lb) * (1.0 - CERT_PAD)
}

/// Certified lower bound on the exact squared f64 distance from the q8
/// code-space sum `s = dist2_q8(q̂, x̂)` on a grid of step `scale`, with
/// displacement overestimates `rq`, `rx` from [`displacement_norm_q8`].
pub fn lb2_from_q8(s: u64, scale: f64, rq: f64, rx: f64) -> f64 {
    // ‖q̂−x̂‖ = scale·√s exactly in the reals; deflate the two roundings.
    let d_hat = scale * (s as f64).sqrt() / (1.0 + CERT_PAD);
    let lb = (d_hat - rq - rx).max(0.0);
    (lb * lb) * (1.0 - CERT_PAD)
}

/// Certified lower bound on the exact squared f64 distance from the
/// weighted per-dimension q8 kernel sum `s = dist2_q8w(q̂, x̂, w)` with
/// displacement overestimates `rq`, `rx` from [`displacement_norm_q8w`].
///
/// Mirrors [`lb2_from_f32`]: the kernel sum is inexact (weighted f64
/// accumulation), so it is deflated by [`q8w_accum_slack`] before the
/// triangle-inequality step. Non-finite sums certify nothing.
pub fn lb2_from_q8w(s: f64, rq: f64, rx: f64, dim: usize) -> f64 {
    if !s.is_finite() {
        return 0.0;
    }
    let sigma = s / ((1.0 + q8w_accum_slack(dim)) * (1.0 + CERT_PAD));
    let lb = (sigma.sqrt() * (1.0 - CERT_PAD) - rq - rx).max(0.0);
    (lb * lb) * (1.0 - CERT_PAD)
}

/// Phase-1 prune threshold for the f32 tier: a row whose f32 kernel sum
/// `S` satisfies `(S as f64) ≥ f32_prune_threshold(bound, rq, rx, dim)` is
/// certified to have **computed** f64 `dist2 ≥ bound` and may be dropped
/// without re-ranking (see [`f32_row_prunable`]).
///
/// Derivation: pruning needs the exact `‖q̂−x̂‖² = σ ≥ (√(bound·(1+pad)) +
/// rq + rx)²`; since `σ ≥ S/(1+γ)`, comparing `S` against `(1+γ)` times
/// that target suffices, with [`CERT_PAD`] inflations covering both this
/// function's own roundings and the canonical kernel's.
pub fn f32_prune_threshold(bound: f64, rq: f64, rx: f64, dim: usize) -> f64 {
    if !bound.is_finite() {
        return f64::INFINITY;
    }
    let w = (bound * (1.0 + CERT_PAD)).sqrt() + rq + rx;
    (1.0 + f32_accum_slack(dim)) * (w * w) * (1.0 + CERT_PAD)
}

/// Phase-1 prune threshold for the q8 tier, in **code space**: a row whose
/// integer sum `S` satisfies `(S as f64) ≥ q8_prune_threshold(...)` is
/// certified to have computed f64 `dist2 ≥ bound` (see
/// [`q8_row_prunable`]). Requires `scale > 0`; degenerate blocks
/// (`min == max`) must stay on the f64 path.
pub fn q8_prune_threshold(bound: f64, rq: f64, rx: f64, scale: f64) -> f64 {
    debug_assert!(scale > 0.0, "degenerate quantization grid");
    if !bound.is_finite() {
        return f64::INFINITY;
    }
    let w = ((bound * (1.0 + CERT_PAD)).sqrt() + rq + rx) / scale;
    (w * w) * (1.0 + CERT_PAD)
}

/// Phase-1 prune threshold for the per-dimension q8 tier: a row whose
/// weighted kernel sum `S` satisfies `S ≥ q8w_prune_threshold(...)` is
/// certified to have computed f64 `dist2 ≥ bound` (see
/// [`q8w_row_prunable`]). Same derivation as [`f32_prune_threshold`], with
/// [`q8w_accum_slack`] as the accumulation-error budget. The threshold is
/// the kernel's abandon bound directly — no cast step is needed, the sum
/// is already f64.
pub fn q8w_prune_threshold(bound: f64, rq: f64, rx: f64, dim: usize) -> f64 {
    if !bound.is_finite() {
        return f64::INFINITY;
    }
    let w = (bound * (1.0 + CERT_PAD)).sqrt() + rq + rx;
    (1.0 + q8w_accum_slack(dim)) * (w * w) * (1.0 + CERT_PAD)
}

/// The f32 bound to feed [`dist2_f32_bounded`] for a phase-1 threshold `t`
/// (from [`f32_prune_threshold`]).
///
/// Inflated by `10⁻⁶` before the cast so round-to-nearest can never land
/// below `t` (f32 cast error is `≤ 2⁻²⁴ ≈ 6·10⁻⁸` relative); when even the
/// inflated value overflows f32 the abandon path is disabled entirely
/// (`∞` bound) because an overflowed running sum would certify only
/// `σ ≳ 3.4·10³⁸`, which may be below `t` — such rows surface as
/// non-finite `Some` sums and survive to the f64 re-rank instead.
pub fn f32_kernel_bound(t: f64) -> f32 {
    let inflated = t * (1.0 + 1e-6);
    if inflated <= f32::MAX as f64 {
        inflated as f32
    } else {
        f32::INFINITY
    }
}

/// The integer bound to feed [`dist2_q8_bounded`] for a phase-1 threshold
/// `t` (from [`q8_prune_threshold`]): the largest sum **not** certified
/// prunable, so the kernel's strict `> bound` abandon fires exactly on
/// `S ≥ t`.
pub fn q8_kernel_bound(t: f64) -> u64 {
    if t <= 0.0 {
        0
    } else if t >= u64::MAX as f64 {
        u64::MAX
    } else {
        (t.ceil() as u64).saturating_sub(1)
    }
}

/// The certified phase-1 decision for one f32-tier row: `true` iff the row
/// provably has computed f64 `dist2 ≥` the bound that produced `t` via
/// [`f32_prune_threshold`].
///
/// `None` (abandoned at a checkpoint) is certified because
/// [`f32_kernel_bound`] only enables abandonment when the kernel bound is
/// finite and `≥ t`, and checkpoint sums are monotone. A finite `Some`
/// compares against `t` exactly in f64; non-finite sums certify nothing.
pub fn f32_row_prunable(s: Option<f32>, t: f64) -> bool {
    match s {
        None => true,
        Some(v) => v.is_finite() && v as f64 >= t,
    }
}

/// The certified phase-1 decision for one q8-tier row (counterpart of
/// [`f32_row_prunable`]; `(v as f64)` is exact for any realistic sum).
pub fn q8_row_prunable(s: Option<u64>, t: f64) -> bool {
    match s {
        None => true,
        Some(v) => v as f64 >= t,
    }
}

/// The certified phase-1 decision for one weighted q8-tier row. `None` is
/// certified because [`dist2_q8w_bounded_depth`] abandons on `sum > t`
/// with monotone non-negative accumulation (and an overflowed sum implies
/// an exact sum beyond any finite threshold); finite `Some` compares
/// against `t` in f64 directly.
pub fn q8w_row_prunable(s: Option<f64>, t: f64) -> bool {
    match s {
        None => true,
        Some(v) => v.is_finite() && v >= t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    fn vecs(dim: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic, mildly irregular coordinates covering the tail
        // paths of every chunking scheme.
        let a: Vec<f64> = (0..dim)
            .map(|i| (i as f64 * 0.37).sin() * 0.5 + 0.5)
            .collect();
        let b: Vec<f64> = (0..dim)
            .map(|i| (i as f64 * 0.61).cos() * 0.5 + 0.5)
            .collect();
        (a, b)
    }

    #[test]
    fn dist2_matches_naive_closely_for_all_tail_lengths() {
        for dim in 1..=17 {
            let (a, b) = vecs(dim);
            let k = dist2(&a, &b);
            let n = naive_dist2(&a, &b);
            assert!((k - n).abs() <= 1e-12 * n.max(1.0), "dim {dim}: {k} vs {n}");
        }
    }

    #[test]
    fn small_dims_are_exact() {
        // Dims below the unroll width take the pure tail path, which is the
        // plain sequential sum.
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        assert_eq!(chebyshev(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    #[test]
    fn bounded_some_is_bit_identical_to_full() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let (a, b) = vecs(dim);
            let full = dist2(&a, &b);
            // A bound the scan always survives.
            let got = dist2_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
            let full = manhattan(&a, &b);
            let got = manhattan_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
            let full = chebyshev(&a, &b);
            let got = chebyshev_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
        }
    }

    #[test]
    fn bounded_abandons_only_above_the_bound() {
        let (a, b) = vecs(32);
        let full = dist2(&a, &b);
        // Bound below the true distance: may abandon (and here, with 8
        // chunks, certainly does for a tiny bound).
        assert_eq!(dist2_bounded(&a, &b, full / 16.0), None);
        // Bound at exactly the true distance: `>` means it must survive.
        assert_eq!(dist2_bounded(&a, &b, full), Some(full));
        assert_eq!(
            manhattan_bounded(&a, &b, manhattan(&a, &b)),
            Some(manhattan(&a, &b))
        );
        assert_eq!(
            chebyshev_bounded(&a, &b, chebyshev(&a, &b)),
            Some(chebyshev(&a, &b))
        );
    }

    #[test]
    fn batch_matches_single_rows() {
        let dim = 7;
        let rows = 5;
        let (q, _) = vecs(dim);
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.13).fract()).collect();
        let mut out = vec![0.0; rows];
        dist2_batch(&q, &block, dim, &mut out);
        for (r, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[r].to_bits(), dist2(&q, row).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn batch_rejects_ragged_blocks() {
        let mut out = vec![0.0; 2];
        dist2_batch(&[0.5, 0.5], &[0.0; 5], 2, &mut out);
    }

    /// Pins the checkpoint cadence the certification depends on: bounded
    /// kernels check once per [`CHECKPOINT_LANES`] coordinates and never in
    /// the tail. If someone widens the unroll without updating
    /// [`CHECKPOINT_LANES`] (and with it the f32 slack), this fails.
    #[test]
    fn checkpoint_cadence_is_four_lanes() {
        // One full chunk whose sum exceeds the bound: must abandon at the
        // first (and only) checkpoint.
        let big = vec![10.0f64; CHECKPOINT_LANES * 2];
        let zero = vec![0.0f64; CHECKPOINT_LANES * 2];
        assert_eq!(dist2_bounded(&big, &zero, 1.0), None);
        // Same mass moved entirely into the tail (dim = lanes + 1, chunk
        // part zero): the tail is never checkpointed, so the kernel must
        // return Some(value > bound) instead of abandoning.
        let mut tail_heavy = vec![0.0f64; CHECKPOINT_LANES + 1];
        tail_heavy[CHECKPOINT_LANES] = 10.0;
        let zeros = vec![0.0f64; CHECKPOINT_LANES + 1];
        let got = dist2_bounded(&tail_heavy, &zeros, 1.0);
        assert_eq!(got, Some(100.0), "tail coordinates must not checkpoint");
        // The f32 and q8 bounded kernels share the cadence.
        let big32: Vec<f32> = big.iter().map(|&v| v as f32).collect();
        let zero32 = vec![0.0f32; big.len()];
        assert_eq!(dist2_f32_bounded(&big32, &zero32, 1.0), None);
        let mut t32 = vec![0.0f32; CHECKPOINT_LANES + 1];
        t32[CHECKPOINT_LANES] = 10.0;
        assert_eq!(
            dist2_f32_bounded(&t32, &vec![0.0f32; t32.len()], 1.0),
            Some(100.0)
        );
        let bigq = vec![200u8; CHECKPOINT_LANES * 2];
        let zeroq = vec![0u8; CHECKPOINT_LANES * 2];
        assert_eq!(dist2_q8_bounded(&bigq, &zeroq, 10), None);
        let mut tq = vec![0u8; CHECKPOINT_LANES + 1];
        tq[CHECKPOINT_LANES] = 200;
        assert_eq!(
            dist2_q8_bounded(&tq, &vec![0u8; tq.len()], 10),
            Some(200 * 200)
        );
    }

    #[test]
    fn f32_kernel_matches_f64_shape() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let (a, b) = vecs(dim);
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let s = dist2_f32(&a32, &b32);
            let full = dist2(&a, &b);
            // Same accumulation shape, lower precision: close, not equal.
            assert!(
                (s as f64 - full).abs() <= 1e-5 * full.max(1.0),
                "dim {dim}: {s} vs {full}"
            );
            // Unbounded survival is bit-identical to the plain kernel.
            let got = dist2_f32_bounded(&a32, &b32, f32::INFINITY).unwrap();
            assert_eq!(got.to_bits(), s.to_bits(), "dim {dim}");
        }
    }

    #[test]
    fn q8_kernel_is_exact_integer_arithmetic() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let a: Vec<u8> = (0..dim).map(|i| (i * 37 % 256) as u8).collect();
            let b: Vec<u8> = (0..dim).map(|i| (i * 91 % 256) as u8).collect();
            let naive: u64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = x as i64 - y as i64;
                    (d * d) as u64
                })
                .sum();
            assert_eq!(dist2_q8(&a, &b), naive, "dim {dim}");
            assert_eq!(dist2_q8_bounded(&a, &b, u64::MAX), Some(naive));
        }
    }

    #[test]
    fn tier_batches_match_row_kernels() {
        let dim = 7;
        let rows = 5;
        let block32: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.13).fract()).collect();
        let q32: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).fract()).collect();
        let mut out32 = vec![0.0f32; rows];
        dist2_batch_f32(&q32, &block32, dim, &mut out32);
        let mut bounded32 = vec![None; rows];
        dist2_batch_f32_bounded(&q32, &block32, dim, f32::INFINITY, &mut bounded32);
        for (r, row) in block32.chunks_exact(dim).enumerate() {
            assert_eq!(out32[r].to_bits(), dist2_f32(&q32, row).to_bits());
            assert_eq!(bounded32[r].unwrap().to_bits(), out32[r].to_bits());
        }
        let blockq: Vec<u8> = (0..rows * dim).map(|i| (i * 53 % 256) as u8).collect();
        let qq: Vec<u8> = (0..dim).map(|i| (i * 29 % 256) as u8).collect();
        let mut outq = vec![0u64; rows];
        dist2_batch_q8(&qq, &blockq, dim, &mut outq);
        let mut boundedq = vec![None; rows];
        dist2_batch_q8_bounded(&qq, &blockq, dim, u64::MAX, &mut boundedq);
        for (r, row) in blockq.chunks_exact(dim).enumerate() {
            assert_eq!(outq[r], dist2_q8(&qq, row));
            assert_eq!(boundedq[r], Some(outq[r]));
        }
    }

    #[test]
    fn kernel_bounds_round_in_the_safe_direction() {
        // f32: the cast bound never lands below the threshold.
        for t in [0.0, 1e-30, 1.0, 1e30, 1e38, 1e39, f64::INFINITY] {
            let b = f32_kernel_bound(t);
            assert!(b as f64 >= t || b == f32::INFINITY, "t={t}, b={b}");
            if t * (1.0 + 1e-6) > f32::MAX as f64 {
                assert_eq!(b, f32::INFINITY, "overflowing t must disable abandon");
            }
        }
        // q8: for positive thresholds the abandon test (sum > bound) fires
        // exactly on sum >= t — tight, not merely safe.
        for t in [0.5f64, 1.0, 1.5, 2.0, 65025.0] {
            let b = q8_kernel_bound(t);
            for s in 0u64..5 {
                assert_eq!(s > b, s as f64 >= t, "t={t}, s={s}");
            }
        }
        assert_eq!(q8_kernel_bound(0.0), 0);
        assert_eq!(q8_kernel_bound(-3.0), 0);
        assert_eq!(q8_kernel_bound(1e300), u64::MAX);
    }

    #[test]
    fn lower_bounds_stay_below_exact_distances() {
        for dim in [1usize, 4, 7, 16] {
            let (a, b) = vecs(dim);
            let exact = dist2(&a, &b);
            // f32 tier.
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let rq = displacement_norm_f32(&a, &a32);
            let rx = displacement_norm_f32(&b, &b32);
            let lb = lb2_from_f32(dist2_f32(&a32, &b32), rq, rx, dim);
            assert!(lb <= exact, "f32 dim {dim}: lb {lb} > exact {exact}");
            // q8 tier on a grid covering both vectors.
            let min = a.iter().chain(&b).cloned().fold(f64::INFINITY, f64::min);
            let max = a
                .iter()
                .chain(&b)
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let scale = ((max - min) / 255.0).max(f64::MIN_POSITIVE);
            let code = |v: f64| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8;
            let ca: Vec<u8> = a.iter().map(|&v| code(v)).collect();
            let cb: Vec<u8> = b.iter().map(|&v| code(v)).collect();
            let rq = displacement_norm_q8(&a, &ca, min, scale);
            let rx = displacement_norm_q8(&b, &cb, min, scale);
            let lb = lb2_from_q8(dist2_q8(&ca, &cb), scale, rq, rx);
            assert!(lb <= exact, "q8 dim {dim}: lb {lb} > exact {exact}");
        }
    }

    #[test]
    fn depth_variants_are_bit_identical_and_count_checkpoints() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 32] {
            let (a, b) = vecs(dim);
            // Survivors: same value, checkpoints = full chunks.
            let (s, cp) = dist2_bounded_depth(&a, &b, f64::INFINITY);
            assert_eq!(s.unwrap().to_bits(), dist2(&a, &b).to_bits(), "dim {dim}");
            assert_eq!(cp, (dim / CHECKPOINT_LANES) as u64, "dim {dim}");
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let (s32, cp32) = dist2_f32_bounded_depth(&a32, &b32, f32::INFINITY);
            assert_eq!(s32.unwrap().to_bits(), dist2_f32(&a32, &b32).to_bits());
            assert_eq!(cp32, (dim / CHECKPOINT_LANES) as u64);
        }
        // An abandon reports the checkpoint it fired at: uniform mass means
        // the very first checkpoint clears a tiny bound.
        let big = vec![1.0f64; 32];
        let zero = vec![0.0f64; 32];
        assert_eq!(dist2_bounded_depth(&big, &zero, 1.0), (None, 1));
        // Mass only in the last chunk: every earlier checkpoint survives.
        let mut late = vec![0.0f64; 32];
        late[31] = 10.0;
        assert_eq!(dist2_bounded_depth(&late, &zero, 1.0), (None, 8));
    }

    #[test]
    fn q8w_kernel_matches_naive_weighted_sum() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            // Query codes are wide i32 and may leave [0, 255].
            let a: Vec<i32> = (0..dim).map(|i| (i as i32 * 37 % 600) - 100).collect();
            let b: Vec<u8> = (0..dim).map(|i| (i * 91 % 256) as u8).collect();
            let w: Vec<f64> = (0..dim).map(|i| ((i * 7 % 5) as f64) * 1e-4).collect();
            let naive: f64 = a
                .iter()
                .zip(&b)
                .zip(&w)
                .map(|((&x, &y), &wj)| {
                    let d = ((x as i64 - y as i64).pow(2)) as f64;
                    wj * d
                })
                .sum();
            let got = dist2_q8w(&a, &b, &w);
            assert!(
                (got - naive).abs() <= 1e-12 * naive.max(1.0),
                "dim {dim}: {got} vs {naive}"
            );
            // Unbounded survival is bit-identical to the plain kernel, and
            // the checkpoint cadence matches the other tiers.
            let (s, cp) = dist2_q8w_bounded_depth(&a, &b, &w, f64::INFINITY);
            assert_eq!(s.unwrap().to_bits(), got.to_bits(), "dim {dim}");
            assert_eq!(cp, (dim / CHECKPOINT_LANES) as u64);
            assert_eq!(dist2_q8w_bounded(&a, &b, &w, f64::INFINITY), Some(got));
        }
        // Abandon fires at the checkpoint, never in the tail.
        let big = vec![200i32; CHECKPOINT_LANES * 2];
        let zero = vec![0u8; CHECKPOINT_LANES * 2];
        let w = vec![1.0f64; CHECKPOINT_LANES * 2];
        assert_eq!(dist2_q8w_bounded(&big, &zero, &w, 10.0), None);
        let mut tq = vec![0i32; CHECKPOINT_LANES + 1];
        tq[CHECKPOINT_LANES] = 200;
        let w = vec![1.0f64; CHECKPOINT_LANES + 1];
        assert_eq!(
            dist2_q8w_bounded(&tq, &vec![0u8; tq.len()], &w, 10.0),
            Some(40_000.0)
        );
        // Wide codes at the cap stay exact: d² = (2²⁵ + 255)² round-trips
        // through f64 with no rounding.
        let far = vec![Q8W_CODE_CAP];
        let row = vec![255u8];
        let d = Q8W_CODE_CAP as i64 - 255;
        assert_eq!(dist2_q8w(&[-255i32], &row, &[1.0]), (510i64 * 510) as f64);
        assert_eq!(dist2_q8w(&far, &row, &[1.0]), (d * d) as f64);
    }

    #[test]
    fn q8w_lower_bounds_stay_below_exact_distances() {
        for dim in [1usize, 4, 7, 16] {
            let (mut a, mut bq) = vecs(dim);
            // Per-lane grids spanning both vectors, one degenerate lane
            // forced equal so its scale collapses to zero.
            a[0] = 0.5;
            bq[0] = 0.5;
            let mins: Vec<f64> = (0..dim).map(|j| a[j].min(bq[j])).collect();
            let maxs: Vec<f64> = (0..dim).map(|j| a[j].max(bq[j])).collect();
            let scales: Vec<f64> = mins
                .iter()
                .zip(&maxs)
                .map(|(&lo, &hi)| if hi > lo { (hi - lo) / 255.0 } else { 0.0 })
                .collect();
            let w: Vec<f64> = scales.iter().map(|&s| s * s).collect();
            let code = |v: f64, j: usize| {
                if scales[j] > 0.0 {
                    (((v - mins[j]) / scales[j]).round().clamp(0.0, 255.0)) as u8
                } else {
                    0
                }
            };
            let qcode = |v: f64, j: usize| -> i32 {
                if scales[j] > 0.0 {
                    ((v - mins[j]) / scales[j])
                        .round()
                        .clamp(-(Q8W_CODE_CAP as f64), Q8W_CODE_CAP as f64)
                        as i32
                } else {
                    0
                }
            };
            let ca: Vec<i32> = a.iter().enumerate().map(|(j, &v)| qcode(v, j)).collect();
            let cb: Vec<u8> = bq.iter().enumerate().map(|(j, &v)| code(v, j)).collect();
            let rq = displacement_norm_q8w_query(&a, &ca, &mins, &scales);
            let rx = displacement_norm_q8w(&bq, &cb, &mins, &scales);
            let exact = dist2(&a, &bq);
            let lb = lb2_from_q8w(dist2_q8w(&ca, &cb, &w), rq, rx, dim);
            assert!(lb <= exact, "q8w dim {dim}: lb {lb} > exact {exact}");
            // The prune threshold is safe: a certified row really is ≥ the
            // bound that produced the threshold.
            let bound = exact * 0.5;
            let t = q8w_prune_threshold(bound, rq, rx, dim);
            let s = dist2_q8w(&ca, &cb, &w);
            if q8w_row_prunable(Some(s), t) {
                assert!(exact >= bound, "q8w dim {dim}: false prune");
            }
        }
    }

    /// Pins the tentpole's certification claim: the per-block radii, the
    /// prune thresholds and the abandon logic are all **permutation
    /// invariant** — the same multiset of coordinates in any lane order
    /// yields valid certificates, because the radii are inflated
    /// overestimates of order-independent real norms and the thresholds
    /// only consume those radii plus the dimension. A row pruned on the
    /// permuted layout is therefore provably `≥ bound` in natural order.
    #[test]
    fn certification_is_permutation_invariant() {
        let dim = 16;
        let (a, b) = vecs(dim);
        // An "energy" permutation: reverse order (any permutation works).
        let perm: Vec<usize> = (0..dim).rev().collect();
        let pa: Vec<f64> = perm.iter().map(|&p| a[p]).collect();
        let pb: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
        let natural = dist2(&a, &b);
        let permuted = dist2(&pa, &pb);
        // Not bit-identical in general — that is exactly why the energy
        // scan is a certified *filter*, not a re-ordered answer path.
        assert!((natural - permuted).abs() <= 1e-12 * natural.max(1.0));
        // An abandon under the padded bound certifies the natural kernel
        // value is ≥ the unpadded bound.
        for frac in [0.1, 0.5, 0.9, 0.999] {
            let bound = natural * frac;
            if dist2_bounded(&pa, &pb, order_prune_bound(bound)).is_none() {
                assert!(natural >= bound, "frac {frac}: false permuted prune");
            }
        }
        // Infinite bounds pass through untouched (abandon disabled).
        assert_eq!(order_prune_bound(f64::INFINITY), f64::INFINITY);
        // f32 certification survives permutation: permuted mirrors +
        // natural-order radii still lower-bound the exact distance.
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        let pa32: Vec<f32> = perm.iter().map(|&p| a32[p]).collect();
        let pb32: Vec<f32> = perm.iter().map(|&p| b32[p]).collect();
        let rq = displacement_norm_f32(&a, &a32);
        let rx = displacement_norm_f32(&b, &b32);
        let lb = lb2_from_f32(dist2_f32(&pa32, &pb32), rq, rx, dim);
        assert!(lb <= natural, "permuted f32 lb {lb} > exact {natural}");
    }
}
