//! Unrolled distance kernels over flat `&[f64]` slices.
//!
//! Every distance the workspace computes ultimately lands here: the
//! [`crate::Point`] methods and the [`crate::Metric`] implementations all
//! delegate to these kernels, so the arena-backed leaf scans and the
//! `Vec<Point>` paths produce **bit-identical** results by construction.
//!
//! The kernels process coordinates in chunks of four with four independent
//! accumulators, which breaks the add-latency dependency chain and lets the
//! compiler keep four FMAs (or mul+adds) in flight. The tail (`dim % 4`
//! coordinates) is folded into the first accumulator, and the accumulators
//! are combined as `(s0 + s1) + (s2 + s3)` — a fixed reduction order, so a
//! given build computes one well-defined value per input pair.
//!
//! The `*_bounded` variants implement **partial-distance early abandon**:
//! after each chunk of [`CHECKPOINT_LANES`] terms they compare the running
//! sum against the caller's bound (the current k-th-best distance) and bail
//! with `None` once it is exceeded. Because every term is non-negative and
//! IEEE-754 rounding is monotone, the running sum never decreases, so a
//! checkpoint that exceeds the bound proves the full distance would too —
//! abandoning is *exact*, never approximate. When the scan survives every
//! checkpoint, the returned `Some(value)` is bit-identical to the unbounded
//! kernel because both run the very same accumulation.
//!
//! # Precision tiers
//!
//! Next to the canonical f64 kernels this module carries two cheap tiers
//! used by the two-phase leaf scan: **f32** kernels over single-precision
//! mirrors ([`dist2_f32`], [`dist2_batch_f32`] and bounded variants) and
//! **q8** kernels over 8-bit scalar-quantized codes ([`dist2_q8`],
//! [`dist2_batch_q8`] and bounded variants, exact integer arithmetic).
//! Neither tier ever *answers* a query; their results are turned into
//! certified **lower bounds** on the true f64 distance via the
//! `lb2_from_*` / `*_prune_threshold` helpers below, so a row they
//! disqualify provably cannot enter the k-NN result and every survivor is
//! re-ranked with the canonical [`dist2`] — returned answers stay
//! bit-identical to a pure f64 scan.
//!
//! The certification argument is the triangle inequality plus a forward
//! error bound: with `q̂`, `x̂` the low-precision representations and
//! `r_q ≥ ‖q−q̂‖`, `r_x ≥ ‖x−x̂‖` (computed in f64, stored as
//! overestimates), `‖q−x‖ ≥ ‖q̂−x̂‖ − r_q − r_x`. The f32 kernel does not
//! compute `‖q̂−x̂‖²` exactly; its accumulated sum `S` satisfies
//! `S ≤ (1+γ)·σ` with `σ` the exact sum and `γ =` [`f32_accum_slack`], so
//! `σ ≥ S/(1+γ)` is still certain. The q8 kernel's code-space sum is exact
//! integer arithmetic; the only slack needed is the f64 rounding of the
//! reconstruction grid, absorbed into the stored `r` values by
//! [`displacement_norm_q8`]. Every helper rounds its slack *against* the
//! pruning decision, so `lb ≤ dist2` holds unconditionally (certified for
//! dimensions up to ~10⁶; see [`CERT_PAD`]).

/// Accumulator-lane count of every kernel in this module — and therefore
/// the **checkpoint cadence** of the `*_bounded` variants, which compare
/// the running sum against the bound once per `CHECKPOINT_LANES` terms.
///
/// This constant is load-bearing for the lower-bound certification, not a
/// style choice: [`f32_accum_slack`] budgets the accumulation error as
/// `2·(dim + CHECKPOINT_LANES)·ε₃₂`, where the `+ CHECKPOINT_LANES` term
/// pays for the final cross-lane reduction `(s0 + s1) + (s2 + s3)`. A wider
/// unroll without a matching slack update would under-estimate the error
/// and could certify a false prune. The kernel bodies hard-code the width
/// in their `chunks_exact(4)` / `xa[0..=3]` shape; the compile-time guard
/// below and `checkpoint_cadence_is_four_lanes` in the test module keep the
/// constant and the bodies from drifting apart.
pub const CHECKPOINT_LANES: usize = 4;

// The kernel bodies index lanes 0..=3 explicitly; they must agree with the
// advertised cadence.
const _: () = assert!(CHECKPOINT_LANES == 4);

/// Fused multiply-add when the target actually has an FMA unit, plain
/// mul+add otherwise.
///
/// On the baseline `x86-64` target (SSE2 only) `f64::mul_add` lowers to a
/// libm soft-float call that is an order of magnitude slower than a mul and
/// an add, so the fused form is only worth emitting when
/// `target_feature = "fma"` is enabled (e.g. `-C target-cpu=native`).
#[inline(always)]
fn fmadd(a: f64, b: f64, acc: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Squared Euclidean distance between two coordinate slices.
///
/// This is *the* canonical L2 arithmetic of the workspace:
/// [`crate::Point::dist2`] delegates here.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 = fmadd(d0, d0, s0);
        s1 = fmadd(d1, d1, s1);
        s2 = fmadd(d2, d2, s2);
        s3 = fmadd(d3, d3, s3);
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 = fmadd(d, d, s0);
    }
    (s0 + s1) + (s2 + s3)
}

/// Manhattan (L1) distance between two coordinate slices.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 += (xa[0] - xb[0]).abs();
        s1 += (xa[1] - xb[1]).abs();
        s2 += (xa[2] - xb[2]).abs();
        s3 += (xa[3] - xb[3]).abs();
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 += (x - y).abs();
    }
    (s0 + s1) + (s2 + s3)
}

/// Chebyshev (L∞ / maximum) distance between two coordinate slices.
///
/// `max` is exactly order-independent over non-negative terms, so this
/// kernel agrees bit-for-bit with any sequential fold.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 = s0.max((xa[0] - xb[0]).abs());
        s1 = s1.max((xa[1] - xb[1]).abs());
        s2 = s2.max((xa[2] - xb[2]).abs());
        s3 = s3.max((xa[3] - xb[3]).abs());
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 = s0.max((x - y).abs());
    }
    (s0.max(s1)).max(s2.max(s3))
}

/// Squared Euclidean distance with partial-distance early abandon.
///
/// Returns `None` as soon as a chunk checkpoint proves the full distance
/// exceeds `bound`; otherwise `Some(d2)` where `d2` is bit-identical to
/// [`dist2`]. `Some(d2)` with `d2 > bound` is possible when only the tail
/// coordinates push the sum over — callers comparing against an exact
/// radius must re-check.
#[inline]
pub fn dist2_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 = fmadd(d0, d0, s0);
        s1 = fmadd(d1, d1, s1);
        s2 = fmadd(d2, d2, s2);
        s3 = fmadd(d3, d3, s3);
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 = fmadd(d, d, s0);
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Manhattan distance with partial-distance early abandon (see
/// [`dist2_bounded`] for the contract).
#[inline]
pub fn manhattan_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 += (xa[0] - xb[0]).abs();
        s1 += (xa[1] - xb[1]).abs();
        s2 += (xa[2] - xb[2]).abs();
        s3 += (xa[3] - xb[3]).abs();
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 += (x - y).abs();
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Chebyshev distance with early abandon (see [`dist2_bounded`] for the
/// contract).
#[inline]
pub fn chebyshev_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f64;
    let mut s1 = 0.0f64;
    let mut s2 = 0.0f64;
    let mut s3 = 0.0f64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        s0 = s0.max((xa[0] - xb[0]).abs());
        s1 = s1.max((xa[1] - xb[1]).abs());
        s2 = s2.max((xa[2] - xb[2]).abs());
        s3 = s3.max((xa[3] - xb[3]).abs());
        if (s0.max(s1)).max(s2.max(s3)) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        s0 = s0.max((x - y).abs());
    }
    Some((s0.max(s1)).max(s2.max(s3)))
}

/// Scans a whole row-major block of vectors against one query, writing the
/// squared Euclidean distance of every row into `out`.
///
/// `block` must hold `out.len()` rows of `dim` coordinates each. Each
/// written distance is bit-identical to [`dist2`] on the corresponding row.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch(query: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2(query, row);
    }
}

/// Squared Euclidean distance between two f32 mirrors, single precision.
///
/// Four-lane accumulation like [`dist2`], but deliberately **without** the
/// FMA gate: the certification slack [`f32_accum_slack`] is derived for
/// plain round-to-nearest mul+add (FMA would only shrink the error, so the
/// slack stays valid either way, but one fixed shape keeps the analysis
/// readable). The result is *not* a distance anyone may return — it feeds
/// [`lb2_from_f32`] / [`f32_prune_threshold`] which turn it into a
/// certified lower bound on the f64 distance.
#[inline]
pub fn dist2_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 += d * d;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`dist2_f32`] with partial-distance early abandon at the
/// [`CHECKPOINT_LANES`] cadence.
///
/// Abandoning is certified by monotonicity exactly as for
/// [`dist2_bounded`]: non-negative terms under round-to-nearest never
/// shrink a lane, so a checkpoint above `bound` proves the full sum ends
/// above `bound` too. Overflow is safe by the same argument — once a lane
/// reaches `+∞` it stays there, and `∞ > bound` holds for every finite
/// bound. Callers that pass `bound = f32::INFINITY` disable abandonment
/// (nothing exceeds it, including `∞` itself) and must treat non-finite
/// `Some` sums as uncertified (see [`f32_row_prunable`]).
#[inline]
pub fn dist2_f32_bounded(a: &[f32], b: &[f32], bound: f32) -> Option<f32> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = x - y;
        s0 += d * d;
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Scans a row-major f32 block against one f32 query, writing every row's
/// [`dist2_f32`] into `out`.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_f32(query: &[f32], block: &[f32], dim: usize, out: &mut [f32]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_f32(query, row);
    }
}

/// Bounded variant of [`dist2_batch_f32`]: every row runs
/// [`dist2_f32_bounded`] against the same `bound`, `None` marking rows
/// abandoned at a checkpoint.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_f32_bounded(
    query: &[f32],
    block: &[f32],
    dim: usize,
    bound: f32,
    out: &mut [Option<f32>],
) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_f32_bounded(query, row, bound);
    }
}

/// Code-space squared distance between two 8-bit quantized rows: the
/// **exact** integer `Σ (a[i] − b[i])²` over the u8 codes.
///
/// Four u64 lanes; each term is at most `255² = 65025`, so the sum is
/// exact for any realistic dimension (no overflow below `dim ≈ 2⁵⁰`), and
/// `(sum as f64)` is exact below `2⁵³`. The caller owns the grid (per-block
/// `min`/`scale`); [`lb2_from_q8`] / [`q8_prune_threshold`] convert the
/// code-space sum into a certified lower bound on the f64 distance.
#[inline]
pub fn dist2_q8(a: &[u8], b: &[u8]) -> u64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0u64;
    let mut s1 = 0u64;
    let mut s2 = 0u64;
    let mut s3 = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] as i32 - xb[0] as i32;
        let d1 = xa[1] as i32 - xb[1] as i32;
        let d2 = xa[2] as i32 - xb[2] as i32;
        let d3 = xa[3] as i32 - xb[3] as i32;
        s0 += (d0 * d0) as u64;
        s1 += (d1 * d1) as u64;
        s2 += (d2 * d2) as u64;
        s3 += (d3 * d3) as u64;
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = *x as i32 - *y as i32;
        s0 += (d * d) as u64;
    }
    (s0 + s1) + (s2 + s3)
}

/// [`dist2_q8`] with early abandon at the [`CHECKPOINT_LANES`] cadence.
///
/// Integer accumulation is exact and strictly monotone, so a checkpoint
/// above `bound` proves the full code-space sum exceeds it — no rounding
/// argument is even needed here.
#[inline]
pub fn dist2_q8_bounded(a: &[u8], b: &[u8], bound: u64) -> Option<u64> {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut s0 = 0u64;
    let mut s1 = 0u64;
    let mut s2 = 0u64;
    let mut s3 = 0u64;
    let ca = a.chunks_exact(4);
    let cb = b.chunks_exact(4);
    let (ta, tb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        let d0 = xa[0] as i32 - xb[0] as i32;
        let d1 = xa[1] as i32 - xb[1] as i32;
        let d2 = xa[2] as i32 - xb[2] as i32;
        let d3 = xa[3] as i32 - xb[3] as i32;
        s0 += (d0 * d0) as u64;
        s1 += (d1 * d1) as u64;
        s2 += (d2 * d2) as u64;
        s3 += (d3 * d3) as u64;
        if (s0 + s1) + (s2 + s3) > bound {
            return None;
        }
    }
    for (x, y) in ta.iter().zip(tb) {
        let d = *x as i32 - *y as i32;
        s0 += (d * d) as u64;
    }
    Some((s0 + s1) + (s2 + s3))
}

/// Scans a row-major q8 code block against one quantized query, writing
/// every row's [`dist2_q8`] into `out`.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_q8(query: &[u8], block: &[u8], dim: usize, out: &mut [u64]) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_q8(query, row);
    }
}

/// Bounded variant of [`dist2_batch_q8`]: every row runs
/// [`dist2_q8_bounded`] against the same `bound`.
///
/// # Panics
///
/// Panics if `block.len() != out.len() * dim` or the query has the wrong
/// dimension.
pub fn dist2_batch_q8_bounded(
    query: &[u8],
    block: &[u8],
    dim: usize,
    bound: u64,
    out: &mut [Option<u64>],
) {
    assert!(dim > 0, "zero-dimensional block");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(block.len(), out.len() * dim, "block/out shape mismatch");
    for (row, slot) in block.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = dist2_q8_bounded(query, row, bound);
    }
}

/// Relative padding applied wherever the certification helpers do f64
/// arithmetic of their own (a handful of mul/add/sqrt roundings, each
/// bounded by `ε₆₄ ≈ 2.2·10⁻¹⁶` relative).
///
/// `10⁻⁹` over-covers those roundings by six orders of magnitude while
/// costing a relative `10⁻⁹` of pruning power — unmeasurable. It also
/// absorbs the rounding of the *canonical f64 kernel itself*: a certified
/// prune guarantees `dist2 ≥ bound·(1+CERT_PAD)` in exact arithmetic, so
/// the computed [`dist2`] stays `≥ bound` as long as its own relative
/// error `2·(dim+4)·ε₆₄` is below `CERT_PAD`, i.e. for dimensions up to
/// about `2·10⁶`.
pub const CERT_PAD: f64 = 1e-9;

/// Relative forward-error budget of the f32 accumulation in
/// [`dist2_f32`]: the computed sum `S` and the exact sum `σ` satisfy
/// `|S − σ| ≤ f32_accum_slack(dim) · σ`.
///
/// Budgeted as `2·(dim + CHECKPOINT_LANES)·ε₃₂` with `ε₃₂ = f32::EPSILON`:
/// `dim` products, per-lane chains of at most `dim` additions, plus the
/// cross-lane reduction — a standard Higham-style bound, stated with the
/// full machine epsilon (twice the unit roundoff) for headroom. Returns a
/// value `≥ 1` only for absurd dimensions (`> 2²²`), where the f32 tier
/// certifies nothing and callers should stay on f64.
pub fn f32_accum_slack(dim: usize) -> f64 {
    2.0 * (dim + CHECKPOINT_LANES) as f64 * f32::EPSILON as f64
}

/// Overestimate of the displacement `‖v − m‖₂` between a row and its f32
/// mirror, suitable as the `r` input of the f32 certification helpers.
///
/// The sum runs in f64 over exactly representable inputs (f32 → f64 is
/// exact), so its error is purely relative and far below the
/// [`CERT_PAD`] inflation applied at the end.
pub fn displacement_norm_f32(v: &[f64], m: &[f32]) -> f64 {
    debug_assert_eq!(v.len(), m.len(), "dimension mismatch");
    let mut s = 0.0f64;
    for (x, y) in v.iter().zip(m) {
        let d = x - *y as f64;
        s += d * d;
    }
    s.sqrt() * (1.0 + CERT_PAD)
}

/// Overestimate of the displacement `‖v − x̂‖₂` between a row and its q8
/// reconstruction `x̂[i] = min + codes[i]·scale` (the *ideal* grid point in
/// exact arithmetic), suitable as the `r` input of the q8 helpers.
///
/// Unlike the f32 case the reconstruction is computed, not stored, so each
/// coordinate carries an absolute f64 error up to a few `ε₆₄·|x̂[i]|`; the
/// `8·ε₆₄·amax·√dim` term over-covers that before the relative
/// [`CERT_PAD`] inflation.
pub fn displacement_norm_q8(v: &[f64], codes: &[u8], min: f64, scale: f64) -> f64 {
    debug_assert_eq!(v.len(), codes.len(), "dimension mismatch");
    let mut s = 0.0f64;
    let mut amax = 0.0f64;
    for (x, c) in v.iter().zip(codes) {
        let r = min + *c as f64 * scale;
        amax = amax.max(r.abs()).max(x.abs());
        let d = x - r;
        s += d * d;
    }
    let fudge = 8.0 * f64::EPSILON * amax * (v.len() as f64).sqrt();
    (s.sqrt() + fudge) * (1.0 + CERT_PAD)
}

/// Certified lower bound on the **exact** squared f64 distance `‖q−x‖²`
/// from the f32 kernel sum `s = dist2_f32(q̂, x̂)` and displacement
/// overestimates `rq ≥ ‖q−q̂‖`, `rx ≥ ‖x−x̂‖`.
///
/// Non-finite `s` (overflow to `∞`, or NaN from `∞−∞` diffs) certifies
/// nothing and yields the trivial bound `0`.
pub fn lb2_from_f32(s: f32, rq: f64, rx: f64, dim: usize) -> f64 {
    if !s.is_finite() {
        return 0.0;
    }
    // σ ≥ S/(1+γ); deflate every own rounding toward zero.
    let sigma = s as f64 / ((1.0 + f32_accum_slack(dim)) * (1.0 + CERT_PAD));
    let lb = (sigma.sqrt() * (1.0 - CERT_PAD) - rq - rx).max(0.0);
    (lb * lb) * (1.0 - CERT_PAD)
}

/// Certified lower bound on the exact squared f64 distance from the q8
/// code-space sum `s = dist2_q8(q̂, x̂)` on a grid of step `scale`, with
/// displacement overestimates `rq`, `rx` from [`displacement_norm_q8`].
pub fn lb2_from_q8(s: u64, scale: f64, rq: f64, rx: f64) -> f64 {
    // ‖q̂−x̂‖ = scale·√s exactly in the reals; deflate the two roundings.
    let d_hat = scale * (s as f64).sqrt() / (1.0 + CERT_PAD);
    let lb = (d_hat - rq - rx).max(0.0);
    (lb * lb) * (1.0 - CERT_PAD)
}

/// Phase-1 prune threshold for the f32 tier: a row whose f32 kernel sum
/// `S` satisfies `(S as f64) ≥ f32_prune_threshold(bound, rq, rx, dim)` is
/// certified to have **computed** f64 `dist2 ≥ bound` and may be dropped
/// without re-ranking (see [`f32_row_prunable`]).
///
/// Derivation: pruning needs the exact `‖q̂−x̂‖² = σ ≥ (√(bound·(1+pad)) +
/// rq + rx)²`; since `σ ≥ S/(1+γ)`, comparing `S` against `(1+γ)` times
/// that target suffices, with [`CERT_PAD`] inflations covering both this
/// function's own roundings and the canonical kernel's.
pub fn f32_prune_threshold(bound: f64, rq: f64, rx: f64, dim: usize) -> f64 {
    if !bound.is_finite() {
        return f64::INFINITY;
    }
    let w = (bound * (1.0 + CERT_PAD)).sqrt() + rq + rx;
    (1.0 + f32_accum_slack(dim)) * (w * w) * (1.0 + CERT_PAD)
}

/// Phase-1 prune threshold for the q8 tier, in **code space**: a row whose
/// integer sum `S` satisfies `(S as f64) ≥ q8_prune_threshold(...)` is
/// certified to have computed f64 `dist2 ≥ bound` (see
/// [`q8_row_prunable`]). Requires `scale > 0`; degenerate blocks
/// (`min == max`) must stay on the f64 path.
pub fn q8_prune_threshold(bound: f64, rq: f64, rx: f64, scale: f64) -> f64 {
    debug_assert!(scale > 0.0, "degenerate quantization grid");
    if !bound.is_finite() {
        return f64::INFINITY;
    }
    let w = ((bound * (1.0 + CERT_PAD)).sqrt() + rq + rx) / scale;
    (w * w) * (1.0 + CERT_PAD)
}

/// The f32 bound to feed [`dist2_f32_bounded`] for a phase-1 threshold `t`
/// (from [`f32_prune_threshold`]).
///
/// Inflated by `10⁻⁶` before the cast so round-to-nearest can never land
/// below `t` (f32 cast error is `≤ 2⁻²⁴ ≈ 6·10⁻⁸` relative); when even the
/// inflated value overflows f32 the abandon path is disabled entirely
/// (`∞` bound) because an overflowed running sum would certify only
/// `σ ≳ 3.4·10³⁸`, which may be below `t` — such rows surface as
/// non-finite `Some` sums and survive to the f64 re-rank instead.
pub fn f32_kernel_bound(t: f64) -> f32 {
    let inflated = t * (1.0 + 1e-6);
    if inflated <= f32::MAX as f64 {
        inflated as f32
    } else {
        f32::INFINITY
    }
}

/// The integer bound to feed [`dist2_q8_bounded`] for a phase-1 threshold
/// `t` (from [`q8_prune_threshold`]): the largest sum **not** certified
/// prunable, so the kernel's strict `> bound` abandon fires exactly on
/// `S ≥ t`.
pub fn q8_kernel_bound(t: f64) -> u64 {
    if t <= 0.0 {
        0
    } else if t >= u64::MAX as f64 {
        u64::MAX
    } else {
        (t.ceil() as u64).saturating_sub(1)
    }
}

/// The certified phase-1 decision for one f32-tier row: `true` iff the row
/// provably has computed f64 `dist2 ≥` the bound that produced `t` via
/// [`f32_prune_threshold`].
///
/// `None` (abandoned at a checkpoint) is certified because
/// [`f32_kernel_bound`] only enables abandonment when the kernel bound is
/// finite and `≥ t`, and checkpoint sums are monotone. A finite `Some`
/// compares against `t` exactly in f64; non-finite sums certify nothing.
pub fn f32_row_prunable(s: Option<f32>, t: f64) -> bool {
    match s {
        None => true,
        Some(v) => v.is_finite() && v as f64 >= t,
    }
}

/// The certified phase-1 decision for one q8-tier row (counterpart of
/// [`f32_row_prunable`]; `(v as f64)` is exact for any realistic sum).
pub fn q8_row_prunable(s: Option<u64>, t: f64) -> bool {
    match s {
        None => true,
        Some(v) => v as f64 >= t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    fn vecs(dim: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic, mildly irregular coordinates covering the tail
        // paths of every chunking scheme.
        let a: Vec<f64> = (0..dim)
            .map(|i| (i as f64 * 0.37).sin() * 0.5 + 0.5)
            .collect();
        let b: Vec<f64> = (0..dim)
            .map(|i| (i as f64 * 0.61).cos() * 0.5 + 0.5)
            .collect();
        (a, b)
    }

    #[test]
    fn dist2_matches_naive_closely_for_all_tail_lengths() {
        for dim in 1..=17 {
            let (a, b) = vecs(dim);
            let k = dist2(&a, &b);
            let n = naive_dist2(&a, &b);
            assert!((k - n).abs() <= 1e-12 * n.max(1.0), "dim {dim}: {k} vs {n}");
        }
    }

    #[test]
    fn small_dims_are_exact() {
        // Dims below the unroll width take the pure tail path, which is the
        // plain sequential sum.
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        assert_eq!(chebyshev(&[0.0, 0.0], &[3.0, 4.0]), 4.0);
    }

    #[test]
    fn bounded_some_is_bit_identical_to_full() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let (a, b) = vecs(dim);
            let full = dist2(&a, &b);
            // A bound the scan always survives.
            let got = dist2_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
            let full = manhattan(&a, &b);
            let got = manhattan_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
            let full = chebyshev(&a, &b);
            let got = chebyshev_bounded(&a, &b, f64::INFINITY).unwrap();
            assert_eq!(got.to_bits(), full.to_bits(), "dim {dim}");
        }
    }

    #[test]
    fn bounded_abandons_only_above_the_bound() {
        let (a, b) = vecs(32);
        let full = dist2(&a, &b);
        // Bound below the true distance: may abandon (and here, with 8
        // chunks, certainly does for a tiny bound).
        assert_eq!(dist2_bounded(&a, &b, full / 16.0), None);
        // Bound at exactly the true distance: `>` means it must survive.
        assert_eq!(dist2_bounded(&a, &b, full), Some(full));
        assert_eq!(
            manhattan_bounded(&a, &b, manhattan(&a, &b)),
            Some(manhattan(&a, &b))
        );
        assert_eq!(
            chebyshev_bounded(&a, &b, chebyshev(&a, &b)),
            Some(chebyshev(&a, &b))
        );
    }

    #[test]
    fn batch_matches_single_rows() {
        let dim = 7;
        let rows = 5;
        let (q, _) = vecs(dim);
        let block: Vec<f64> = (0..rows * dim).map(|i| (i as f64 * 0.13).fract()).collect();
        let mut out = vec![0.0; rows];
        dist2_batch(&q, &block, dim, &mut out);
        for (r, row) in block.chunks_exact(dim).enumerate() {
            assert_eq!(out[r].to_bits(), dist2(&q, row).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn batch_rejects_ragged_blocks() {
        let mut out = vec![0.0; 2];
        dist2_batch(&[0.5, 0.5], &[0.0; 5], 2, &mut out);
    }

    /// Pins the checkpoint cadence the certification depends on: bounded
    /// kernels check once per [`CHECKPOINT_LANES`] coordinates and never in
    /// the tail. If someone widens the unroll without updating
    /// [`CHECKPOINT_LANES`] (and with it the f32 slack), this fails.
    #[test]
    fn checkpoint_cadence_is_four_lanes() {
        // One full chunk whose sum exceeds the bound: must abandon at the
        // first (and only) checkpoint.
        let big = vec![10.0f64; CHECKPOINT_LANES * 2];
        let zero = vec![0.0f64; CHECKPOINT_LANES * 2];
        assert_eq!(dist2_bounded(&big, &zero, 1.0), None);
        // Same mass moved entirely into the tail (dim = lanes + 1, chunk
        // part zero): the tail is never checkpointed, so the kernel must
        // return Some(value > bound) instead of abandoning.
        let mut tail_heavy = vec![0.0f64; CHECKPOINT_LANES + 1];
        tail_heavy[CHECKPOINT_LANES] = 10.0;
        let zeros = vec![0.0f64; CHECKPOINT_LANES + 1];
        let got = dist2_bounded(&tail_heavy, &zeros, 1.0);
        assert_eq!(got, Some(100.0), "tail coordinates must not checkpoint");
        // The f32 and q8 bounded kernels share the cadence.
        let big32: Vec<f32> = big.iter().map(|&v| v as f32).collect();
        let zero32 = vec![0.0f32; big.len()];
        assert_eq!(dist2_f32_bounded(&big32, &zero32, 1.0), None);
        let mut t32 = vec![0.0f32; CHECKPOINT_LANES + 1];
        t32[CHECKPOINT_LANES] = 10.0;
        assert_eq!(
            dist2_f32_bounded(&t32, &vec![0.0f32; t32.len()], 1.0),
            Some(100.0)
        );
        let bigq = vec![200u8; CHECKPOINT_LANES * 2];
        let zeroq = vec![0u8; CHECKPOINT_LANES * 2];
        assert_eq!(dist2_q8_bounded(&bigq, &zeroq, 10), None);
        let mut tq = vec![0u8; CHECKPOINT_LANES + 1];
        tq[CHECKPOINT_LANES] = 200;
        assert_eq!(
            dist2_q8_bounded(&tq, &vec![0u8; tq.len()], 10),
            Some(200 * 200)
        );
    }

    #[test]
    fn f32_kernel_matches_f64_shape() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let (a, b) = vecs(dim);
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let s = dist2_f32(&a32, &b32);
            let full = dist2(&a, &b);
            // Same accumulation shape, lower precision: close, not equal.
            assert!(
                (s as f64 - full).abs() <= 1e-5 * full.max(1.0),
                "dim {dim}: {s} vs {full}"
            );
            // Unbounded survival is bit-identical to the plain kernel.
            let got = dist2_f32_bounded(&a32, &b32, f32::INFINITY).unwrap();
            assert_eq!(got.to_bits(), s.to_bits(), "dim {dim}");
        }
    }

    #[test]
    fn q8_kernel_is_exact_integer_arithmetic() {
        for dim in [1usize, 3, 4, 5, 8, 13, 16, 31] {
            let a: Vec<u8> = (0..dim).map(|i| (i * 37 % 256) as u8).collect();
            let b: Vec<u8> = (0..dim).map(|i| (i * 91 % 256) as u8).collect();
            let naive: u64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = x as i64 - y as i64;
                    (d * d) as u64
                })
                .sum();
            assert_eq!(dist2_q8(&a, &b), naive, "dim {dim}");
            assert_eq!(dist2_q8_bounded(&a, &b, u64::MAX), Some(naive));
        }
    }

    #[test]
    fn tier_batches_match_row_kernels() {
        let dim = 7;
        let rows = 5;
        let block32: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.13).fract()).collect();
        let q32: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).fract()).collect();
        let mut out32 = vec![0.0f32; rows];
        dist2_batch_f32(&q32, &block32, dim, &mut out32);
        let mut bounded32 = vec![None; rows];
        dist2_batch_f32_bounded(&q32, &block32, dim, f32::INFINITY, &mut bounded32);
        for (r, row) in block32.chunks_exact(dim).enumerate() {
            assert_eq!(out32[r].to_bits(), dist2_f32(&q32, row).to_bits());
            assert_eq!(bounded32[r].unwrap().to_bits(), out32[r].to_bits());
        }
        let blockq: Vec<u8> = (0..rows * dim).map(|i| (i * 53 % 256) as u8).collect();
        let qq: Vec<u8> = (0..dim).map(|i| (i * 29 % 256) as u8).collect();
        let mut outq = vec![0u64; rows];
        dist2_batch_q8(&qq, &blockq, dim, &mut outq);
        let mut boundedq = vec![None; rows];
        dist2_batch_q8_bounded(&qq, &blockq, dim, u64::MAX, &mut boundedq);
        for (r, row) in blockq.chunks_exact(dim).enumerate() {
            assert_eq!(outq[r], dist2_q8(&qq, row));
            assert_eq!(boundedq[r], Some(outq[r]));
        }
    }

    #[test]
    fn kernel_bounds_round_in_the_safe_direction() {
        // f32: the cast bound never lands below the threshold.
        for t in [0.0, 1e-30, 1.0, 1e30, 1e38, 1e39, f64::INFINITY] {
            let b = f32_kernel_bound(t);
            assert!(b as f64 >= t || b == f32::INFINITY, "t={t}, b={b}");
            if t * (1.0 + 1e-6) > f32::MAX as f64 {
                assert_eq!(b, f32::INFINITY, "overflowing t must disable abandon");
            }
        }
        // q8: for positive thresholds the abandon test (sum > bound) fires
        // exactly on sum >= t — tight, not merely safe.
        for t in [0.5f64, 1.0, 1.5, 2.0, 65025.0] {
            let b = q8_kernel_bound(t);
            for s in 0u64..5 {
                assert_eq!(s > b, s as f64 >= t, "t={t}, s={s}");
            }
        }
        assert_eq!(q8_kernel_bound(0.0), 0);
        assert_eq!(q8_kernel_bound(-3.0), 0);
        assert_eq!(q8_kernel_bound(1e300), u64::MAX);
    }

    #[test]
    fn lower_bounds_stay_below_exact_distances() {
        for dim in [1usize, 4, 7, 16] {
            let (a, b) = vecs(dim);
            let exact = dist2(&a, &b);
            // f32 tier.
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let rq = displacement_norm_f32(&a, &a32);
            let rx = displacement_norm_f32(&b, &b32);
            let lb = lb2_from_f32(dist2_f32(&a32, &b32), rq, rx, dim);
            assert!(lb <= exact, "f32 dim {dim}: lb {lb} > exact {exact}");
            // q8 tier on a grid covering both vectors.
            let min = a.iter().chain(&b).cloned().fold(f64::INFINITY, f64::min);
            let max = a
                .iter()
                .chain(&b)
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let scale = ((max - min) / 255.0).max(f64::MIN_POSITIVE);
            let code = |v: f64| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8;
            let ca: Vec<u8> = a.iter().map(|&v| code(v)).collect();
            let cb: Vec<u8> = b.iter().map(|&v| code(v)).collect();
            let rq = displacement_norm_q8(&a, &ca, min, scale);
            let rx = displacement_norm_q8(&b, &cb, min, scale);
            let lb = lb2_from_q8(dist2_q8(&ca, &cb), scale, rq, rx);
            assert!(lb <= exact, "q8 dim {dim}: lb {lb} > exact {exact}");
        }
    }
}
