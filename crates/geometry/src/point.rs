//! Feature vectors (points) in the d-dimensional data space.

use std::fmt;
use std::ops::{Deref, Index};

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;

/// A d-dimensional feature vector.
///
/// The paper maps multimedia objects (images, CAD parts, text substrings)
/// into points of a feature space; similarity search becomes
/// nearest-neighbor search over these points (Definition 1). The data space
/// is assumed to be `[0,1]^d` without loss of generality; [`Point::new`]
/// enforces finite coordinates but not the unit range, because intermediate
/// computations (e.g. raw Fourier coefficients before normalization) may
/// leave it. Use [`Point::clamped_unit`] to force a point into the unit cube.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::ZeroDimensional`] for an empty vector and
    /// [`GeometryError::NonFiniteCoordinate`] if any coordinate is NaN or
    /// infinite.
    pub fn new(coords: Vec<f64>) -> Result<Self, GeometryError> {
        if coords.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        for (axis, &value) in coords.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeometryError::NonFiniteCoordinate { axis, value });
            }
        }
        Ok(Point {
            coords: coords.into_boxed_slice(),
        })
    }

    /// Creates a point without validation.
    ///
    /// Intended for generators that construct coordinates from arithmetic
    /// that is finite by construction. Panics in debug builds if the
    /// invariants are violated.
    pub fn from_vec(coords: Vec<f64>) -> Self {
        debug_assert!(!coords.is_empty(), "zero-dimensional point");
        debug_assert!(
            coords.iter().all(|c| c.is_finite()),
            "non-finite coordinate"
        );
        Point {
            coords: coords.into_boxed_slice(),
        }
    }

    /// The origin of a d-dimensional space.
    pub fn origin(dim: usize) -> Self {
        assert!(dim > 0, "zero-dimensional point");
        Point {
            coords: vec![0.0; dim].into_boxed_slice(),
        }
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Returns a copy with every coordinate clamped into `[0,1]`.
    pub fn clamped_unit(&self) -> Self {
        Point {
            coords: self.coords.iter().map(|c| c.clamp(0.0, 1.0)).collect(),
        }
    }

    /// True if every coordinate lies in `[0,1]`.
    pub fn in_unit_cube(&self) -> bool {
        self.coords.iter().all(|&c| (0.0..=1.0).contains(&c))
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Kept on `Point` (in addition to the [`crate::Metric`] trait) because
    /// it is the single hottest operation of every nearest-neighbor search.
    /// Delegates to [`crate::kernel::dist2`], so point-based and
    /// arena-based scans compute bit-identical distances.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        crate::kernel::dist2(&self.coords, &other.coords)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }
}

impl Deref for Point {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        &self.coords
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, axis: usize) -> &f64 {
        &self.coords[axis]
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", &self.coords)
    }
}

impl From<Point> for Vec<f64> {
    fn from(p: Point) -> Vec<f64> {
        p.coords.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Point::new(vec![]), Err(GeometryError::ZeroDimensional));
    }

    #[test]
    fn new_rejects_nan() {
        let err = Point::new(vec![0.0, f64::NAN]).unwrap_err();
        assert!(matches!(
            err,
            GeometryError::NonFiniteCoordinate { axis: 1, .. }
        ));
    }

    #[test]
    fn new_rejects_infinity() {
        let err = Point::new(vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(
            err,
            GeometryError::NonFiniteCoordinate { axis: 0, .. }
        ));
    }

    #[test]
    fn distances() {
        let a = Point::new(vec![0.0, 0.0]).unwrap();
        let b = Point::new(vec![3.0, 4.0]).unwrap();
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn clamp_into_unit_cube() {
        let p = Point::new(vec![-0.5, 0.5, 1.5]).unwrap();
        assert!(!p.in_unit_cube());
        let c = p.clamped_unit();
        assert!(c.in_unit_cube());
        assert_eq!(c.coords(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn origin_is_zero() {
        let o = Point::origin(4);
        assert_eq!(o.dim(), 4);
        assert!(o.coords().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn deref_and_index() {
        let p = Point::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(p[1], 0.75);
        assert_eq!(p.iter().sum::<f64>(), 1.0);
    }
}
