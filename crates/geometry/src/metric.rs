//! Distance metrics over feature vectors.
//!
//! Similarity of two multimedia objects is defined as proximity of their
//! feature vectors under some metric; the paper (like most of the feature
//! vector literature it cites) uses the Euclidean metric, but the index and
//! engine are generic over [`Metric`] so that Manhattan and maximum metrics
//! can be used where a domain calls for them.

use crate::kernel;
use crate::point::Point;
use crate::rect::HyperRect;

/// A metric on the d-dimensional data space.
///
/// Implementations must satisfy the usual metric axioms and must make
/// [`Metric::min_dist_rect`] a *lower bound* of the distance from the query
/// point to any point contained in the rectangle — the property that makes
/// branch-and-bound nearest-neighbor search correct.
pub trait Metric: Send + Sync {
    /// Distance between two points.
    fn dist(&self, a: &Point, b: &Point) -> f64;

    /// Distance raised to a power that preserves ordering (e.g. the squared
    /// Euclidean distance). Cheaper than [`Metric::dist`] and sufficient for
    /// comparisons. The default squares the true distance.
    fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        let d = self.dist(a, b);
        d * d
    }

    /// Converts a comparison distance back to a true distance.
    fn cmp_to_dist(&self, cmp: f64) -> f64 {
        cmp.sqrt()
    }

    /// Converts a true distance to a comparison distance.
    fn dist_to_cmp(&self, dist: f64) -> f64 {
        dist * dist
    }

    /// `MINDIST(q, R)` in comparison units: a lower bound of
    /// `dist_cmp(q, p)` over all points `p ∈ R`.
    fn min_dist_rect(&self, q: &Point, rect: &HyperRect) -> f64;

    /// Comparison distance between raw coordinate slices — the hot-path
    /// entry point used by arena-backed leaf scans, which never materialize
    /// a [`Point`]. Must equal `dist_cmp` on the corresponding points; the
    /// built-in metrics delegate to the [`crate::kernel`] functions.
    fn dist_cmp_coords(&self, q: &[f64], row: &[f64]) -> f64 {
        self.dist_cmp(&Point::from_vec(q.to_vec()), &Point::from_vec(row.to_vec()))
    }

    /// [`Metric::dist_cmp_coords`] with early abandon: `None` means the
    /// comparison distance provably exceeds `bound`; `Some(d)` is
    /// bit-identical to the unbounded result but may still exceed `bound`
    /// (a checkpoint is not placed after every coordinate). Exact-radius
    /// callers must re-check.
    fn dist_cmp_coords_bounded(&self, q: &[f64], row: &[f64], bound: f64) -> Option<f64> {
        let d = self.dist_cmp_coords(q, row);
        if d > bound {
            None
        } else {
            Some(d)
        }
    }
}

/// The Euclidean (L2) metric — the paper's metric of choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        a.dist(b)
    }

    #[inline]
    fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        a.dist2(b)
    }

    #[inline]
    fn min_dist_rect(&self, q: &Point, rect: &HyperRect) -> f64 {
        rect.min_dist2(q)
    }

    #[inline]
    fn dist_cmp_coords(&self, q: &[f64], row: &[f64]) -> f64 {
        kernel::dist2(q, row)
    }

    #[inline]
    fn dist_cmp_coords_bounded(&self, q: &[f64], row: &[f64], bound: f64) -> Option<f64> {
        kernel::dist2_bounded(q, row, bound)
    }
}

/// The Manhattan (L1) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        kernel::manhattan(a, b)
    }

    #[inline]
    fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        self.dist(a, b)
    }

    fn cmp_to_dist(&self, cmp: f64) -> f64 {
        cmp
    }

    fn dist_to_cmp(&self, dist: f64) -> f64 {
        dist
    }

    #[inline]
    fn dist_cmp_coords(&self, q: &[f64], row: &[f64]) -> f64 {
        kernel::manhattan(q, row)
    }

    #[inline]
    fn dist_cmp_coords_bounded(&self, q: &[f64], row: &[f64], bound: f64) -> Option<f64> {
        kernel::manhattan_bounded(q, row, bound)
    }

    fn min_dist_rect(&self, q: &Point, rect: &HyperRect) -> f64 {
        q.iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = rect.lo(i);
                let hi = rect.hi(i);
                if c < lo {
                    lo - c
                } else if c > hi {
                    c - hi
                } else {
                    0.0
                }
            })
            .sum()
    }
}

/// The maximum (L∞ / Chebyshev) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim());
        kernel::chebyshev(a, b)
    }

    #[inline]
    fn dist_cmp(&self, a: &Point, b: &Point) -> f64 {
        self.dist(a, b)
    }

    fn cmp_to_dist(&self, cmp: f64) -> f64 {
        cmp
    }

    fn dist_to_cmp(&self, dist: f64) -> f64 {
        dist
    }

    #[inline]
    fn dist_cmp_coords(&self, q: &[f64], row: &[f64]) -> f64 {
        kernel::chebyshev(q, row)
    }

    #[inline]
    fn dist_cmp_coords_bounded(&self, q: &[f64], row: &[f64], bound: f64) -> Option<f64> {
        kernel::chebyshev_bounded(q, row, bound)
    }

    fn min_dist_rect(&self, q: &Point, rect: &HyperRect) -> f64 {
        q.iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = rect.lo(i);
                let hi = rect.hi(i);
                if c < lo {
                    lo - c
                } else if c > hi {
                    c - hi
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).unwrap()
    }

    #[test]
    fn euclidean_matches_point_methods() {
        let a = p(&[0.1, 0.2, 0.3]);
        let b = p(&[0.4, 0.0, 0.9]);
        assert_eq!(Euclidean.dist(&a, &b), a.dist(&b));
        assert_eq!(Euclidean.dist_cmp(&a, &b), a.dist2(&b));
    }

    #[test]
    fn manhattan_distance() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[0.3, 0.4]);
        assert!((Manhattan.dist(&a, &b) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_distance() {
        let a = p(&[0.0, 0.0]);
        let b = p(&[0.3, 0.4]);
        assert!((Chebyshev.dist(&a, &b) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn mindist_lower_bounds_all_metrics() {
        // For a point inside the rectangle the bound must be zero; outside
        // it must lower-bound the distance to the nearest corner.
        let rect = HyperRect::new(vec![0.2, 0.2], vec![0.6, 0.6]).unwrap();
        let inside = p(&[0.3, 0.5]);
        let outside = p(&[0.0, 0.0]);
        let corner = p(&[0.2, 0.2]);

        assert_eq!(Euclidean.min_dist_rect(&inside, &rect), 0.0);
        assert_eq!(Manhattan.min_dist_rect(&inside, &rect), 0.0);
        assert_eq!(Chebyshev.min_dist_rect(&inside, &rect), 0.0);

        assert!(Euclidean.min_dist_rect(&outside, &rect) <= Euclidean.dist_cmp(&outside, &corner));
        assert!(Manhattan.min_dist_rect(&outside, &rect) <= Manhattan.dist_cmp(&outside, &corner));
        assert!(Chebyshev.min_dist_rect(&outside, &rect) <= Chebyshev.dist_cmp(&outside, &corner));
    }

    #[test]
    fn cmp_round_trips() {
        let d = 0.37;
        assert!((Euclidean.cmp_to_dist(Euclidean.dist_to_cmp(d)) - d).abs() < 1e-12);
        assert_eq!(Manhattan.cmp_to_dist(Manhattan.dist_to_cmp(d)), d);
        assert_eq!(Chebyshev.cmp_to_dist(Chebyshev.dist_to_cmp(d)), d);
    }
}
