//! The binary quadrant partition of the data space.
//!
//! In high-dimensional spaces no more than a *binary* partition of each
//! dimension is feasible (a complete binary split of a 16-d space already
//! yields 65 536 partitions), so the paper takes the buckets to be the 2^d
//! **quadrants** of the data space. A bucket is characterized by a bit per
//! dimension — `0` if the point lies below the split value of that
//! dimension, `1` otherwise — and identified by its *bucket number*
//! `bn(b) = Σ c_i · 2^i` (Definition 2).
//!
//! Two buckets are **direct neighbors** if their bitstrings differ in
//! exactly one bit and **indirect neighbors** if they differ in exactly two
//! bits (Definition 3). These relations define the disk assignment graph the
//! declustering crate colors.

use serde::{Deserialize, Serialize};

use crate::error::GeometryError;
use crate::point::Point;
use crate::rect::HyperRect;

/// Maximum dimensionality representable by a [`BucketId`] bitstring.
pub const MAX_QUADRANT_DIM: usize = 63;

/// A bucket (quadrant) number: the d-bit string `(c_0 … c_{d-1})` packed
/// into a `u64` with bit `i` = `c_i` (Definition 2 of the paper).
pub type BucketId = u64;

/// Returns whether two buckets are direct neighbors (differ in exactly one
/// bit). Applying XOR to direct neighbors yields a bitstring of the form
/// `0…010…0`.
#[inline]
pub fn are_direct_neighbors(b: BucketId, c: BucketId) -> bool {
    (b ^ c).count_ones() == 1
}

/// Returns whether two buckets are indirect neighbors (differ in exactly two
/// bits). Applying XOR to indirect neighbors yields a bitstring with exactly
/// two bits set.
#[inline]
pub fn are_indirect_neighbors(b: BucketId, c: BucketId) -> bool {
    (b ^ c).count_ones() == 2
}

/// Enumerates the `d` direct neighbors of bucket `b` in a d-dimensional
/// space.
pub fn direct_neighbors(b: BucketId, dim: usize) -> impl Iterator<Item = BucketId> {
    debug_assert!(dim <= MAX_QUADRANT_DIM);
    (0..dim).map(move |i| b ^ (1u64 << i))
}

/// Enumerates the `d·(d−1)/2` indirect neighbors of bucket `b`.
pub fn indirect_neighbors(b: BucketId, dim: usize) -> impl Iterator<Item = BucketId> {
    debug_assert!(dim <= MAX_QUADRANT_DIM);
    (0..dim).flat_map(move |i| (i + 1..dim).map(move |j| b ^ (1u64 << i) ^ (1u64 << j)))
}

/// Enumerates direct and indirect neighbors (the edge set of the disk
/// assignment graph incident to `b`).
pub fn all_neighbors(b: BucketId, dim: usize) -> impl Iterator<Item = BucketId> {
    direct_neighbors(b, dim).chain(indirect_neighbors(b, dim))
}

/// Number of buckets an algorithm considering `levels` levels of indirection
/// would have to distribute: `1 + Σ_{k=1..levels} C(d, k)` (Section 3.1 of
/// the paper; for two levels in 16-d this is already 137, which is why the
/// paper stops at two).
pub fn neighborhood_size(dim: usize, levels: u32) -> u128 {
    let mut total: u128 = 1;
    for k in 1..=levels as u128 {
        total += binomial(dim as u128, k);
    }
    total
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

/// Maps points to quadrant bucket numbers using per-dimension split values.
///
/// With the default mid-point splits this is the partition of Section 3.1;
/// with data-dependent 0.5-quantile splits it is the skew adaptation of
/// Section 4.3.
///
/// ```
/// use parsim_geometry::{Point, QuadrantSplitter};
///
/// let q = QuadrantSplitter::midpoint(3).unwrap();
/// // Bit i is set iff coordinate i lies in the upper half.
/// let p = Point::new(vec![0.9, 0.1, 0.9]).unwrap();
/// assert_eq!(q.bucket_of(&p), 0b101);
/// assert!(q.bucket_region(0b101).contains_point(&p));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuadrantSplitter {
    splits: Box<[f64]>,
}

impl QuadrantSplitter {
    /// Splits every dimension at the midpoint `0.5` of the unit data space.
    pub fn midpoint(dim: usize) -> Result<Self, GeometryError> {
        Self::with_splits(vec![0.5; dim])
    }

    /// Splits dimension `i` at `splits[i]` (e.g. measured 0.5-quantiles).
    pub fn with_splits(splits: Vec<f64>) -> Result<Self, GeometryError> {
        if splits.is_empty() {
            return Err(GeometryError::ZeroDimensional);
        }
        if splits.len() > MAX_QUADRANT_DIM {
            return Err(GeometryError::DimensionTooLarge {
                requested: splits.len(),
                max: MAX_QUADRANT_DIM,
            });
        }
        for (axis, &value) in splits.iter().enumerate() {
            if !value.is_finite() {
                return Err(GeometryError::NonFiniteCoordinate { axis, value });
            }
        }
        Ok(QuadrantSplitter {
            splits: splits.into_boxed_slice(),
        })
    }

    /// Dimensionality of the partitioned space.
    #[inline]
    pub fn dim(&self) -> usize {
        self.splits.len()
    }

    /// The split value of dimension `axis`.
    #[inline]
    pub fn split(&self, axis: usize) -> f64 {
        self.splits[axis]
    }

    /// Total number of buckets, `2^d`.
    pub fn bucket_count(&self) -> u64 {
        1u64 << self.dim()
    }

    /// The bucket number of a point: bit `i` is set iff
    /// `p[i] >= split[i]`.
    #[inline]
    pub fn bucket_of(&self, p: &Point) -> BucketId {
        debug_assert_eq!(p.dim(), self.dim(), "dimension mismatch");
        let mut id: u64 = 0;
        for (i, &c) in p.iter().enumerate() {
            if c >= self.splits[i] {
                id |= 1u64 << i;
            }
        }
        id
    }

    /// The region of the data space covered by bucket `id`, as a
    /// hyper-rectangle inside `[0,1]^d`.
    pub fn bucket_region(&self, id: BucketId) -> HyperRect {
        let d = self.dim();
        let mut lo = vec![0.0; d];
        let mut hi = vec![1.0; d];
        for i in 0..d {
            if id & (1u64 << i) != 0 {
                lo[i] = self.splits[i];
            } else {
                hi[i] = self.splits[i];
            }
        }
        HyperRect::new(lo, hi).expect("bucket region bounds are ordered by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).unwrap()
    }

    #[test]
    fn bucket_of_midpoint_2d() {
        let q = QuadrantSplitter::midpoint(2).unwrap();
        assert_eq!(q.bucket_of(&p(&[0.1, 0.1])), 0b00);
        assert_eq!(q.bucket_of(&p(&[0.9, 0.1])), 0b01);
        assert_eq!(q.bucket_of(&p(&[0.1, 0.9])), 0b10);
        assert_eq!(q.bucket_of(&p(&[0.9, 0.9])), 0b11);
        // Boundary belongs to the upper bucket.
        assert_eq!(q.bucket_of(&p(&[0.5, 0.5])), 0b11);
    }

    #[test]
    fn custom_splits() {
        let q = QuadrantSplitter::with_splits(vec![0.9, 0.1]).unwrap();
        assert_eq!(q.bucket_of(&p(&[0.5, 0.5])), 0b10);
    }

    #[test]
    fn splitter_validation() {
        assert!(QuadrantSplitter::with_splits(vec![]).is_err());
        assert!(QuadrantSplitter::with_splits(vec![f64::NAN]).is_err());
        assert!(QuadrantSplitter::with_splits(vec![0.5; 64]).is_err());
        assert!(QuadrantSplitter::with_splits(vec![0.5; 63]).is_ok());
    }

    #[test]
    fn bucket_region_round_trip() {
        let q = QuadrantSplitter::midpoint(3).unwrap();
        for id in 0..q.bucket_count() {
            let region = q.bucket_region(id);
            let center = region.center();
            assert_eq!(q.bucket_of(&center), id, "bucket {id}");
        }
    }

    #[test]
    fn regions_tile_the_space() {
        let q = QuadrantSplitter::midpoint(4).unwrap();
        let total: f64 = (0..q.bucket_count())
            .map(|id| q.bucket_region(id).volume())
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direct_neighbor_relation() {
        assert!(are_direct_neighbors(0b000, 0b001));
        assert!(are_direct_neighbors(0b101, 0b100));
        assert!(!are_direct_neighbors(0b000, 0b011));
        assert!(!are_direct_neighbors(0b000, 0b000));
    }

    #[test]
    fn indirect_neighbor_relation() {
        assert!(are_indirect_neighbors(0b000, 0b011));
        assert!(are_indirect_neighbors(0b110, 0b000));
        assert!(!are_indirect_neighbors(0b000, 0b001));
        assert!(!are_indirect_neighbors(0b000, 0b111));
    }

    #[test]
    fn neighbor_counts() {
        let d = 5;
        let b = 0b10101;
        assert_eq!(direct_neighbors(b, d).count(), d);
        assert_eq!(indirect_neighbors(b, d).count(), d * (d - 1) / 2);
        assert_eq!(all_neighbors(b, d).count(), d + d * (d - 1) / 2);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let d = 6;
        for b in 0..(1u64 << d) {
            for c in direct_neighbors(b, d) {
                assert!(direct_neighbors(c, d).any(|x| x == b));
            }
            for c in indirect_neighbors(b, d) {
                assert!(indirect_neighbors(c, d).any(|x| x == b));
            }
        }
    }

    #[test]
    fn paper_neighborhood_size_example() {
        // Section 3.1: two levels of indirection in a 16-d space give
        // 1 + 16 + 120 = 137 buckets.
        assert_eq!(neighborhood_size(16, 2), 137);
        // One level: 1 + d.
        assert_eq!(neighborhood_size(16, 1), 17);
        assert_eq!(neighborhood_size(3, 2), 7);
    }

    #[test]
    fn direct_neighbor_regions_share_a_face() {
        // Direct neighbors share a (d-1)-dimensional surface, indirect
        // neighbors a (d-2)-dimensional one (Section 3.1).
        let q = QuadrantSplitter::midpoint(3).unwrap();
        let a = q.bucket_region(0b000);
        let b = q.bucket_region(0b001);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_volume(&b), 0.0);
    }
}
