//! Property tests of the geometric primitives.

use proptest::prelude::*;

use parsim_geometry::highdim::{sphere_radius, sphere_volume};
use parsim_geometry::quadrant::{are_direct_neighbors, are_indirect_neighbors};
use parsim_geometry::{HyperRect, Point, QuadrantSplitter};

fn arb_point(dim: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(0.0f64..1.0, dim).prop_map(Point::from_vec)
}

fn arb_rect(dim: usize) -> impl Strategy<Value = HyperRect> {
    (
        prop::collection::vec(0.0f64..1.0, dim),
        prop::collection::vec(0.0f64..1.0, dim),
    )
        .prop_map(|(a, b)| {
            let lo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let hi: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            HyperRect::new(lo, hi).expect("ordered bounds")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Union is commutative, contains both operands, and enlargement is
    /// non-negative.
    #[test]
    fn union_properties(a in arb_rect(5), b in arb_rect(5)) {
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        prop_assert_eq!(&u1, &u2);
        prop_assert!(u1.contains_rect(&a));
        prop_assert!(u1.contains_rect(&b));
        prop_assert!(a.enlargement(&b) >= -1e-12);
        prop_assert!(u1.volume() + 1e-12 >= a.volume().max(b.volume()));
    }

    /// Overlap is symmetric, bounded by either volume, and zero iff the
    /// interiors are disjoint.
    #[test]
    fn overlap_properties(a in arb_rect(4), b in arb_rect(4)) {
        let o1 = a.overlap_volume(&b);
        prop_assert!((o1 - b.overlap_volume(&a)).abs() < 1e-12);
        prop_assert!(o1 <= a.volume() + 1e-12);
        prop_assert!(o1 <= b.volume() + 1e-12);
        if !a.intersects(&b) {
            prop_assert_eq!(o1, 0.0);
        }
    }

    /// Expanding a rectangle to a point makes it contain the point and
    /// grow minimally on each axis.
    #[test]
    fn expansion_covers_point(mut r in arb_rect(4), p in arb_point(4)) {
        let before = r.clone();
        r.expand_to_point(&p);
        prop_assert!(r.contains_point(&p));
        prop_assert!(r.contains_rect(&before));
        // Minimality per axis: bounds only moved to the point.
        for i in 0..4 {
            prop_assert!(r.lo(i) == before.lo(i) || r.lo(i) == p[i]);
            prop_assert!(r.hi(i) == before.hi(i) || r.hi(i) == p[i]);
        }
    }

    /// MINDIST² of a contained point is 0; of an outside point it equals
    /// the squared distance to the clamped projection.
    #[test]
    fn mindist_is_projection_distance(r in arb_rect(6), q in arb_point(6)) {
        let projection = Point::from_vec(
            (0..6).map(|i| q[i].clamp(r.lo(i), r.hi(i))).collect(),
        );
        prop_assert!((r.min_dist2(&q) - q.dist2(&projection)).abs() < 1e-12);
    }

    /// Splitting preserves total volume and both halves stay within the
    /// original bounds.
    #[test]
    fn split_preserves_volume(r in arb_rect(3), axis in 0usize..3, t in 0.0f64..1.0) {
        let value = r.lo(axis) + t * (r.hi(axis) - r.lo(axis));
        let (a, b) = r.split_at(axis, value);
        prop_assert!((a.volume() + b.volume() - r.volume()).abs() < 1e-12);
        prop_assert!(r.contains_rect(&a));
        prop_assert!(r.contains_rect(&b));
    }

    /// Quadrant bucket numbers are stable under region round trips, and
    /// neighbor predicates agree with XOR popcounts.
    #[test]
    fn quadrant_consistency(p in arb_point(8), other in any::<u64>()) {
        let splitter = QuadrantSplitter::midpoint(8).unwrap();
        let bucket = splitter.bucket_of(&p);
        prop_assert!(splitter.bucket_region(bucket).contains_point(&p));
        let other = other & 0xFF;
        let bits = (bucket ^ other).count_ones();
        prop_assert_eq!(are_direct_neighbors(bucket, other), bits == 1);
        prop_assert_eq!(are_indirect_neighbors(bucket, other), bits == 2);
    }

    /// Sphere volume/radius are inverse and monotone in both arguments.
    #[test]
    fn sphere_volume_radius_inverse(dim in 1usize..=32, r in 0.01f64..2.0) {
        let v = sphere_volume(dim, r);
        prop_assert!(v > 0.0);
        let r_back = sphere_radius(dim, v);
        prop_assert!((r_back - r).abs() / r < 1e-9);
        // Monotone in radius.
        prop_assert!(sphere_volume(dim, r * 1.1) > v);
    }
}
