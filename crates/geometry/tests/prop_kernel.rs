//! Property tests for the unrolled distance kernels.
//!
//! The kernels accumulate in four lanes, so their sums may differ from a
//! naive sequential loop by rounding only — the properties here pin the
//! tolerance for all dimensions `1..=64` and all three metrics. The
//! early-abandon variants must be *bit-for-bound* honest: a returned
//! value is bit-identical to the full kernel, and `None` occurs only when
//! the true result exceeds the caller's bound.

use parsim_geometry::kernel;
use proptest::prelude::*;

fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn naive_manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn naive_chebyshev(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Two random vectors of one random dimension in `1..=max_dim`.
fn pair(max_dim: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=max_dim).prop_flat_map(|dim| {
        (
            prop::collection::vec(-1.0f64..1.0, dim),
            prop::collection::vec(-1.0f64..1.0, dim),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dist2_matches_naive((a, b) in pair(64)) {
        let got = kernel::dist2(&a, &b);
        let want = naive_dist2(&a, &b);
        prop_assert!(
            (got - want).abs() <= 1e-12 * want.max(1.0),
            "dim {}: {got} vs {want}", a.len()
        );
    }

    #[test]
    fn manhattan_matches_naive((a, b) in pair(64)) {
        let got = kernel::manhattan(&a, &b);
        let want = naive_manhattan(&a, &b);
        prop_assert!(
            (got - want).abs() <= 1e-12 * want.max(1.0),
            "dim {}: {got} vs {want}", a.len()
        );
    }

    #[test]
    fn chebyshev_is_bit_identical_to_naive((a, b) in pair(64)) {
        // Max has no rounding, so lane order cannot change the result.
        let got = kernel::chebyshev(&a, &b);
        prop_assert_eq!(got.to_bits(), naive_chebyshev(&a, &b).to_bits());
    }

    #[test]
    fn bounded_kernels_are_bit_for_bound((a, b) in pair(64), frac in 0.0f64..1.5) {
        type Full = fn(&[f64], &[f64]) -> f64;
        type Bounded = fn(&[f64], &[f64], f64) -> Option<f64>;
        let cases: [(Full, Bounded); 3] = [
            (kernel::dist2, kernel::dist2_bounded),
            (kernel::manhattan, kernel::manhattan_bounded),
            (kernel::chebyshev, kernel::chebyshev_bounded),
        ];
        for (full, bounded) in cases {
            let v = full(&a, &b);
            let bound = v * frac;
            match bounded(&a, &b, bound) {
                // A returned value is the full kernel's value, bit for bit.
                Some(got) => prop_assert_eq!(got.to_bits(), v.to_bits()),
                // Abandoning is only allowed when the truth exceeds the bound.
                None => prop_assert!(v > bound, "abandoned although {v} <= {bound}"),
            }
        }
    }

    #[test]
    fn batch_matches_row_kernels(
        (dim, q, block) in (1usize..=32).prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(-1.0f64..1.0, dim),
                (0usize..=8).prop_flat_map(move |rows| {
                    prop::collection::vec(-1.0f64..1.0, rows * dim)
                }),
            )
        })
    ) {
        let rows = block.len() / dim;
        let mut out = vec![0.0f64; rows];
        kernel::dist2_batch(&q, &block, dim, &mut out);
        for (i, o) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            prop_assert_eq!(o.to_bits(), kernel::dist2(&q, row).to_bits());
        }
    }
}
