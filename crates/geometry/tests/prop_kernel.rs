//! Property tests for the unrolled distance kernels.
//!
//! The kernels accumulate in four lanes, so their sums may differ from a
//! naive sequential loop by rounding only — the properties here pin the
//! tolerance for all dimensions `1..=64` and all three metrics. The
//! early-abandon variants must be *bit-for-bound* honest: a returned
//! value is bit-identical to the full kernel, and `None` occurs only when
//! the true result exceeds the caller's bound.

use parsim_geometry::kernel;
use proptest::prelude::*;

fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn naive_manhattan(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn naive_chebyshev(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Two random vectors of one random dimension in `1..=max_dim`.
fn pair(max_dim: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=max_dim).prop_flat_map(|dim| {
        (
            prop::collection::vec(-1.0f64..1.0, dim),
            prop::collection::vec(-1.0f64..1.0, dim),
        )
    })
}

/// A query/row pair of one random dimension, each vector scaled by its own
/// adversarial power of two — stresses the certification helpers across
/// ~36 decimal orders of magnitude, including f32 overflow territory.
fn scaled_pair(max_dim: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=max_dim, -60i32..=60, -60i32..=60).prop_flat_map(|(dim, eq, ex)| {
        (
            prop::collection::vec(-1.0f64..1.0, dim)
                .prop_map(move |v| v.into_iter().map(|c| c * 2f64.powi(eq)).collect()),
            prop::collection::vec(-1.0f64..1.0, dim)
                .prop_map(move |v| v.into_iter().map(|c| c * 2f64.powi(ex)).collect()),
        )
    })
}

/// The arena's q8 quantization rule: nearest grid point, clamped to the
/// code range (out-of-grid queries clamp; the displacement norm covers it).
fn q8_quantize(v: &[f64], min: f64, scale: f64) -> Vec<u8> {
    v.iter()
        .map(|&c| ((c - min) / scale).round().clamp(0.0, 255.0) as u8)
        .collect()
}

/// A row-derived q8 grid, `None` when degenerate (all coordinates equal),
/// matching the arena's "stay on f64" rule.
fn q8_grid(x: &[f64]) -> Option<(f64, f64)> {
    let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let scale = (hi - lo) / 255.0;
    (scale > 0.0 && scale.is_finite()).then_some((lo, scale))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dist2_matches_naive((a, b) in pair(64)) {
        let got = kernel::dist2(&a, &b);
        let want = naive_dist2(&a, &b);
        prop_assert!(
            (got - want).abs() <= 1e-12 * want.max(1.0),
            "dim {}: {got} vs {want}", a.len()
        );
    }

    #[test]
    fn manhattan_matches_naive((a, b) in pair(64)) {
        let got = kernel::manhattan(&a, &b);
        let want = naive_manhattan(&a, &b);
        prop_assert!(
            (got - want).abs() <= 1e-12 * want.max(1.0),
            "dim {}: {got} vs {want}", a.len()
        );
    }

    #[test]
    fn chebyshev_is_bit_identical_to_naive((a, b) in pair(64)) {
        // Max has no rounding, so lane order cannot change the result.
        let got = kernel::chebyshev(&a, &b);
        prop_assert_eq!(got.to_bits(), naive_chebyshev(&a, &b).to_bits());
    }

    #[test]
    fn bounded_kernels_are_bit_for_bound((a, b) in pair(64), frac in 0.0f64..1.5) {
        type Full = fn(&[f64], &[f64]) -> f64;
        type Bounded = fn(&[f64], &[f64], f64) -> Option<f64>;
        let cases: [(Full, Bounded); 3] = [
            (kernel::dist2, kernel::dist2_bounded),
            (kernel::manhattan, kernel::manhattan_bounded),
            (kernel::chebyshev, kernel::chebyshev_bounded),
        ];
        for (full, bounded) in cases {
            let v = full(&a, &b);
            let bound = v * frac;
            match bounded(&a, &b, bound) {
                // A returned value is the full kernel's value, bit for bit.
                Some(got) => prop_assert_eq!(got.to_bits(), v.to_bits()),
                // Abandoning is only allowed when the truth exceeds the bound.
                None => prop_assert!(v > bound, "abandoned although {v} <= {bound}"),
            }
        }
    }

    #[test]
    fn f32_lower_bound_never_exceeds_the_exact_distance((q, x) in scaled_pair(64)) {
        let dim = q.len();
        let q32: Vec<f32> = q.iter().map(|&c| c as f32).collect();
        let x32: Vec<f32> = x.iter().map(|&c| c as f32).collect();
        let rq = kernel::displacement_norm_f32(&q, &q32);
        let rx = kernel::displacement_norm_f32(&x, &x32);
        let s = kernel::dist2_f32(&q32, &x32);
        let lb = kernel::lb2_from_f32(s, rq, rx, dim);
        let exact = kernel::dist2(&q, &x);
        prop_assert!(lb <= exact, "dim {dim}: lb {lb} > dist2 {exact}");
    }

    #[test]
    fn q8_lower_bound_never_exceeds_the_exact_distance((q, x) in scaled_pair(64)) {
        if let Some((min, scale)) = q8_grid(&x) {
            let xc = q8_quantize(&x, min, scale);
            let qc = q8_quantize(&q, min, scale);
            let rx = kernel::displacement_norm_q8(&x, &xc, min, scale);
            let rq = kernel::displacement_norm_q8(&q, &qc, min, scale);
            let s = kernel::dist2_q8(&qc, &xc);
            let lb = kernel::lb2_from_q8(s, scale, rq, rx);
            let exact = kernel::dist2(&q, &x);
            prop_assert!(lb <= exact, "dim {}: lb {lb} > dist2 {exact}", q.len());
        }
    }

    #[test]
    fn f32_certified_prune_implies_dist2_at_least_bound(
        (q, x) in scaled_pair(64),
        frac in 0.0f64..2.0,
    ) {
        let dim = q.len();
        let q32: Vec<f32> = q.iter().map(|&c| c as f32).collect();
        let x32: Vec<f32> = x.iter().map(|&c| c as f32).collect();
        let rq = kernel::displacement_norm_f32(&q, &q32);
        let rx = kernel::displacement_norm_f32(&x, &x32);
        let exact = kernel::dist2(&q, &x);
        let bound = exact * frac;
        let t = kernel::f32_prune_threshold(bound, rq, rx, dim);
        let s = kernel::dist2_f32_bounded(&q32, &x32, kernel::f32_kernel_bound(t));
        if kernel::f32_row_prunable(s, t) {
            // A certified prune must never drop a row whose computed f64
            // distance is inside the bound.
            prop_assert!(exact >= bound, "dim {dim}: pruned although {exact} < {bound}");
        }
    }

    #[test]
    fn q8_certified_prune_implies_dist2_at_least_bound(
        (q, x) in scaled_pair(64),
        frac in 0.0f64..2.0,
    ) {
        if let Some((min, scale)) = q8_grid(&x) {
            let xc = q8_quantize(&x, min, scale);
            let qc = q8_quantize(&q, min, scale);
            let rx = kernel::displacement_norm_q8(&x, &xc, min, scale);
            let rq = kernel::displacement_norm_q8(&q, &qc, min, scale);
            let exact = kernel::dist2(&q, &x);
            let bound = exact * frac;
            let t = kernel::q8_prune_threshold(bound, rq, rx, scale);
            let s = kernel::dist2_q8_bounded(&qc, &xc, kernel::q8_kernel_bound(t));
            if kernel::q8_row_prunable(s, t) {
                prop_assert!(
                    exact >= bound,
                    "dim {}: pruned although {exact} < {bound}", q.len()
                );
            }
        }
    }

    #[test]
    fn batch_matches_row_kernels(
        (dim, q, block) in (1usize..=32).prop_flat_map(|dim| {
            (
                Just(dim),
                prop::collection::vec(-1.0f64..1.0, dim),
                (0usize..=8).prop_flat_map(move |rows| {
                    prop::collection::vec(-1.0f64..1.0, rows * dim)
                }),
            )
        })
    ) {
        let rows = block.len() / dim;
        let mut out = vec![0.0f64; rows];
        kernel::dist2_batch(&q, &block, dim, &mut out);
        for (i, o) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            prop_assert_eq!(o.to_bits(), kernel::dist2(&q, row).to_bits());
        }
    }
}
