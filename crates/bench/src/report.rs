//! Experiment report formatting.

/// The result of one regenerated figure: a table plus the paper's expected
/// shape, printable as text or as a Markdown section for EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "fig13".
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// What the paper reports for this figure (the shape we must match).
    pub paper: &'static str,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form observations comparing measured vs paper.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Pretty-prints the report to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        println!("paper: {}", self.paper);
        println!();
        let widths = self.column_widths();
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("  {}", header_line.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("  {}", line.join("  "));
        }
        for note in &self.notes {
            println!("  note: {note}");
        }
    }

    /// Renders the report as a Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("**Paper:** {}\n\n", self.paper));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for note in &self.notes {
                out.push_str(&format!("**Measured:** {note}\n\n"));
            }
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

/// Formats a float with a fixed number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentReport {
        ExperimentReport {
            id: "figX",
            title: "sample",
            paper: "goes up",
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2.50".into()]],
            notes: vec!["it went up".into()],
        }
    }

    #[test]
    fn markdown_contains_table() {
        let md = sample().to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2.50 |"));
        assert!(md.contains("**Measured:** it went up"));
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.2345, 2), "1.23");
        assert_eq!(fmt(10.0, 1), "10.0");
    }
}
