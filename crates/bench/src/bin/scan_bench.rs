//! Regenerates `BENCH_pr9.json` — the energy-ordered scan-layout benchmark
//! record (abandon depth, q8 re-rank fraction, and kernel work per
//! (dataset, scan order, precision tier) cell, answers asserted
//! bit-identical in every cell). See EXPERIMENTS.md for the format.
//!
//! ```sh
//! cargo run --release -p parsim-bench --bin scan_bench -- BENCH_pr9.json
//! cargo run --release -p parsim-bench --bin scan_bench -- out.json --scale 0.5
//! ```

use parsim_bench::experiments::ext14;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a number");
                    std::process::exit(2);
                });
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| "BENCH_pr9.json".to_string());
    let m = ext14::measure(scale);
    let json = ext14::to_json(&m, scale);
    std::fs::write(&path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    });
    print!("{json}");
    eprintln!("written to {path}");
}
