//! Regenerates `BENCH_pr10.json` — the approximate-tier benchmark record
//! (recall@10 vs modeled-QPS frontier of the declustered LSH backend
//! against the exact engine, with the acceptance bar recall ≥ 0.9 at
//! ≥ 2× exact QPS asserted in-measure). See EXPERIMENTS.md for the
//! format.
//!
//! ```sh
//! cargo run --release -p parsim-bench --bin lsh_bench -- BENCH_pr10.json
//! cargo run --release -p parsim-bench --bin lsh_bench -- out.json --scale 0.5
//! ```

use parsim_bench::experiments::ext15;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a number");
                    std::process::exit(2);
                });
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let m = ext15::measure(scale);
    let json = ext15::to_json(&m, scale);
    std::fs::write(&path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    });
    print!("{json}");
    eprintln!("written to {path}");
}
