//! Scratch probe for calibrating experiment regimes (not part of the
//! published figure set).

use std::sync::Arc;

use parsim_bench::experiments::common::uniform_queries;
use parsim_datagen::{DataGenerator, FourierGenerator, QueryWorkload, UniformGenerator};
use parsim_decluster::quantile::median_splits;
use parsim_decluster::{BucketDecluster, DiskModulo, FxXor, HilbertDecluster, NearOptimal};
use parsim_parallel::{DeclusteredXTree, EngineConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dim: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(15);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let k: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let fourier = args.get(3).map(|s| s == "fourier").unwrap_or(false);
    let disks = 16;
    let (data, queries) = if fourier {
        let gen = FourierGenerator::new(dim);
        let data = gen.generate(n, 1);
        let queries = QueryWorkload::DataLike { data_count: n }.generate(&gen, 10, 1);
        (data, queries)
    } else {
        (
            UniformGenerator::new(dim).generate(n, 1),
            uniform_queries(dim, 10, 2),
        )
    };
    let config = EngineConfig::paper_defaults(dim);
    println!("dim={dim} n={n} k={k} disks={disks} fourier={fourier}");

    let methods: Vec<(&str, Arc<dyn BucketDecluster>)> = vec![
        ("disk-modulo", Arc::new(DiskModulo::new(disks).unwrap())),
        ("fx", Arc::new(FxXor::new(disks).unwrap())),
        (
            "hilbert",
            Arc::new(HilbertDecluster::new(dim, disks).unwrap()),
        ),
        (
            "near-optimal",
            Arc::new(NearOptimal::new(dim, disks.min(16)).unwrap()),
        ),
    ];
    // Round-robin over items and pages first.
    let rri = DeclusteredXTree::build(
        &data,
        std::sync::Arc::new(parsim_decluster::RoundRobin::new(disks).unwrap()),
        config,
    )
    .unwrap();
    report("rr-items", &rri, &queries, k);
    let rr = DeclusteredXTree::build_round_robin_pages(&data, disks, config).unwrap();
    report("rr-pages", &rr, &queries, k);
    for (name, m) in methods {
        let splitter = median_splits(&data).unwrap();
        let e = DeclusteredXTree::build_bucket(&data, m, splitter, config).unwrap();
        report(name, &e, &queries, k);
    }
}

fn report(name: &str, e: &DeclusteredXTree, queries: &[parsim_geometry::Point], k: usize) {
    let mut max = 0u64;
    let mut tot = 0u64;
    let mut dir = 0u64;
    for q in queries {
        let (_, c, d) = e.knn_detailed(q, k).unwrap();
        max += c.max_reads;
        tot += c.total_reads;
        dir += d;
    }
    let nq = queries.len() as f64;
    println!(
        "{name:>12}: max={:>7.1} tot={:>8.1} dir={:>6.1} speedup={:.2}",
        max as f64 / nq,
        tot as f64 / nq,
        dir as f64 / nq,
        tot as f64 / max as f64
    );
}
