//! Experiment harness for the paper's evaluation section.
//!
//! Every figure of the paper has a module under [`experiments`] that
//! regenerates it:
//!
//! | module | paper figure |
//! |---|---|
//! | [`experiments::fig01`] | Fig. 1 — sequential X-tree NN time vs dimension |
//! | [`experiments::fig02`] | Fig. 2 — speed-up of round-robin parallel NN |
//! | [`experiments::fig03`] | Fig. 3 — improvement of Hilbert over round robin |
//! | [`experiments::fig05`] | Fig. 5 — data points near the space surface |
//! | [`experiments::fig07`] | Fig. 7 — DM/FX/Hilbert are not near-optimal |
//! | [`experiments::fig10`] | Fig. 10 — colors required by `col` (staircase) |
//! | [`experiments::fig12`] | Fig. 12 — speed-up of our technique, uniform data |
//! | [`experiments::fig13`] | Fig. 13 — speed-up ours vs Hilbert, Fourier data |
//! | [`experiments::fig14`] | Fig. 14 — improvement factor over Hilbert |
//! | [`experiments::fig15`] | Fig. 15 — scale-up (disks and data grow together) |
//! | [`experiments::fig16`] | Fig. 16 — effect of recursive declustering |
//! | [`experiments::fig17`] | Fig. 17 — ours vs Hilbert on text descriptors |
//!
//! Run them with the `figures` binary:
//!
//! ```sh
//! cargo run --release -p parsim-bench --bin figures -- all
//! cargo run --release -p parsim-bench --bin figures -- fig13 --scale 2.0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod svg;

pub use report::ExperimentReport;
