//! Shared experiment machinery.

use std::sync::Arc;

use parsim_datagen::{DataGenerator, QueryWorkload};
use parsim_decluster::quantile::median_splits;
use parsim_decluster::{
    BucketBased, Declusterer, DiskModulo, FxXor, HilbertDecluster, NearOptimal, RoundRobin,
};
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_parallel::metrics::{run_declustered_workload, run_sequential_workload};
use parsim_parallel::{
    run_knn_workload, DeclusteredXTree, EngineConfig, ParallelKnnEngine, SequentialEngine,
    SplitStrategy, WorkloadCost,
};

/// Declustering methods available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Round robin (`j mod n`).
    RoundRobin,
    /// Disk modulo \[DS 82\].
    DiskModulo,
    /// FX \[KP 88\].
    Fx,
    /// Hilbert \[FB 93\] — the strongest baseline.
    Hilbert,
    /// The paper's near-optimal declustering.
    NearOptimal,
}

impl Method {
    /// Builds the point-level declusterer for this method.
    pub fn declusterer(
        self,
        points: &[Point],
        dim: usize,
        disks: usize,
        config: &EngineConfig,
    ) -> Arc<dyn Declusterer> {
        let splitter = || -> QuadrantSplitter {
            match config.splits {
                SplitStrategy::Midpoint => {
                    QuadrantSplitter::midpoint(dim).expect("valid dimension")
                }
                SplitStrategy::DataMedian => median_splits(points).expect("non-empty data"),
            }
        };
        match self {
            Method::RoundRobin => Arc::new(RoundRobin::new(disks).expect("disks > 0")),
            Method::DiskModulo => Arc::new(BucketBased::new(
                DiskModulo::new(disks).expect("disks > 0"),
                splitter(),
            )),
            Method::Fx => Arc::new(BucketBased::new(
                FxXor::new(disks).expect("disks > 0"),
                splitter(),
            )),
            Method::Hilbert => Arc::new(BucketBased::new(
                HilbertDecluster::new(dim, disks).expect("valid dimension"),
                splitter(),
            )),
            Method::NearOptimal => {
                let capped =
                    disks.min(parsim_decluster::near_optimal::colors_required(dim) as usize);
                Arc::new(BucketBased::new(
                    NearOptimal::new(dim, capped).expect("valid dimension"),
                    splitter(),
                ))
            }
        }
    }
}

/// Builds the paper's **page-declustered parallel X-tree** over `points`
/// with the chosen method. Round robin distributes *items* `j mod n` (the
/// paper's definition); all other methods decluster quadrant buckets.
pub fn build_declustered(
    method: Method,
    points: &[Point],
    disks: usize,
    config: EngineConfig,
) -> DeclusteredXTree {
    let make_splitter = || -> QuadrantSplitter {
        match config.splits {
            SplitStrategy::Midpoint => QuadrantSplitter::midpoint(config.dim).expect("valid dim"),
            SplitStrategy::DataMedian => median_splits(points).expect("non-empty data"),
        }
    };
    match method {
        Method::RoundRobin => DeclusteredXTree::build(
            points,
            Arc::new(RoundRobin::new(disks).expect("disks > 0")),
            config,
        ),
        Method::DiskModulo => DeclusteredXTree::build_bucket(
            points,
            Arc::new(DiskModulo::new(disks).expect("disks > 0")),
            make_splitter(),
            config,
        ),
        Method::Fx => DeclusteredXTree::build_bucket(
            points,
            Arc::new(FxXor::new(disks).expect("disks > 0")),
            make_splitter(),
            config,
        ),
        Method::Hilbert => DeclusteredXTree::build_bucket(
            points,
            Arc::new(HilbertDecluster::new(config.dim, disks).expect("valid dim")),
            make_splitter(),
            config,
        ),
        Method::NearOptimal => {
            let capped =
                disks.min(parsim_decluster::near_optimal::colors_required(config.dim) as usize);
            DeclusteredXTree::build_bucket(
                points,
                Arc::new(NearOptimal::new(config.dim, capped).expect("valid dim")),
                make_splitter(),
                config,
            )
        }
    }
    .expect("engine builds on experiment data")
}

/// Runs a k-NN workload on a page-declustered tree.
pub fn declustered_cost(engine: &DeclusteredXTree, queries: &[Point], k: usize) -> WorkloadCost {
    run_declustered_workload(engine, queries, k).expect("workload matches engine")
}

/// The sequential baseline in the page-declustered cost model: the same
/// global X-tree confined to a single disk (directory likewise cached).
pub fn sequential_declustered_cost(
    points: &[Point],
    queries: &[Point],
    k: usize,
    config: EngineConfig,
) -> WorkloadCost {
    let seq =
        DeclusteredXTree::build_round_robin_pages(points, 1, config).expect("baseline builds");
    run_declustered_workload(&seq, queries, k).expect("workload matches baseline")
}

/// Builds a parallel engine over `points` with the chosen method.
pub fn build_engine(
    method: Method,
    points: &[Point],
    disks: usize,
    config: EngineConfig,
) -> ParallelKnnEngine {
    let d = method.declusterer(points, config.dim, disks, &config);
    ParallelKnnEngine::builder(config.dim)
        .config(config)
        .declusterer(d)
        .build(points)
        .expect("engine builds on experiment data")
}

/// Runs a k-NN workload and returns the aggregate cost.
pub fn parallel_cost(engine: &ParallelKnnEngine, queries: &[Point], k: usize) -> WorkloadCost {
    run_knn_workload(engine, queries, k).expect("workload queries match the engine")
}

/// Builds the sequential baseline and runs the same workload.
pub fn sequential_cost(
    points: &[Point],
    queries: &[Point],
    k: usize,
    config: EngineConfig,
) -> WorkloadCost {
    let seq = SequentialEngine::build(points, config).expect("baseline builds");
    run_sequential_workload(&seq, queries, k).expect("workload matches baseline")
}

/// Generates data-distributed queries for a generator-backed dataset.
pub fn data_queries(gen: &dyn DataGenerator, data_count: usize, n: usize, seed: u64) -> Vec<Point> {
    QueryWorkload::DataLike { data_count }.generate(gen, n, seed)
}

/// Generates uniform queries.
pub fn uniform_queries(dim: usize, n: usize, seed: u64) -> Vec<Point> {
    QueryWorkload::Uniform { dim }.generate(&parsim_datagen::UniformGenerator::new(dim), n, seed)
}

/// Scales a base count by the experiment scale factor.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(16)
}

/// The disk counts swept by the speed-up figures (the paper plots up to 16
/// disks; powers of two avoid confounding the sweep with the
/// arbitrary-disk color folding, which figure 14 examines separately).
pub const DISK_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];
