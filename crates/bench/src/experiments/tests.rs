//! Smoke tests of the experiment harness: the cheap experiments run at a
//! tiny scale and produce well-formed reports with the expected shape.
//! (The expensive figures are exercised end-to-end by the `figures`
//! binary; these tests keep the harness itself from regressing.)

use super::*;

#[test]
fn dispatcher_covers_all_and_rejects_unknown() {
    assert_eq!(ALL.len(), 27);
    assert!(run("nonsense", 1.0).is_none());
    assert!(run("fig99", 1.0).is_none());
}

#[test]
fn analytic_experiments_produce_reports() {
    for id in ["fig5", "fig7", "fig10"] {
        let report = run(id, 0.05).expect("known id");
        assert_eq!(report.id, id);
        assert!(!report.rows.is_empty(), "{id}: empty rows");
        let width = report.headers.len();
        assert!(report.rows.iter().all(|r| r.len() == width), "{id}: ragged");
        let md = report.to_markdown();
        assert!(md.contains(report.title));
    }
}

#[test]
fn fig16_runs_at_tiny_scale() {
    let report = run("fig16", 0.2).expect("fig16");
    assert_eq!(report.rows.len(), 2);
    // The improvement note must be present.
    assert!(report.notes[0].contains("improvement factor"));
}

#[test]
fn ext13_runs_at_tiny_scale() {
    let report = run("ext13", 0.05).expect("ext13");
    assert_eq!(report.rows.len(), 3);
    // The in-measure bit-identity assertions passed in every phase.
    let verdicts: Vec<&str> = report
        .rows
        .iter()
        .map(|r| r.last().unwrap().as_str())
        .collect();
    assert_eq!(verdicts, ["yes", "yes", "yes"]);
    assert!(report.notes[1].contains("reconciled exactly"));
}

#[test]
fn ext2_runs_at_tiny_scale() {
    let report = run("ext2", 0.1).expect("ext2");
    assert_eq!(report.rows.len(), 6);
    // Model and measured columns are positive numbers.
    for row in &report.rows {
        let model: f64 = row[2].parse().unwrap();
        assert!(model > 0.0);
    }
}

#[test]
fn ext6_reports_modeled_and_measured_speedup() {
    let report = run("ext6", 0.05).expect("ext6");
    assert_eq!(report.rows.len(), 4);
    for row in &report.rows {
        let modeled: f64 = row[3].parse().unwrap();
        let measured: f64 = row[4].parse().unwrap();
        assert!(modeled > 0.0, "modeled speed-up must be positive");
        assert!(measured > 0.0, "measured speed-up must be positive");
    }
    // The host-parallelism caveat must be recorded next to the numbers.
    assert!(report.notes[0].contains("thread"));
}

#[test]
fn ext7_reports_abandoned_evaluations_and_exactness() {
    let report = run("ext7", 0.05).expect("ext7");
    assert_eq!(report.rows.len(), 4);
    for row in &report.rows {
        let evals: u64 = row[1].parse().unwrap();
        let saved: u64 = row[2].parse().unwrap();
        assert!(evals > 0, "leaf scans must evaluate distances");
        assert!(saved <= evals);
        assert_eq!(row[4], "yes", "distances must stay bit-identical");
    }
    // Clustered workloads must abandon at least somewhere in the sweep.
    let total_saved: u64 = report
        .rows
        .iter()
        .map(|r| r[2].parse::<u64>().unwrap())
        .sum();
    assert!(total_saved > 0, "early abandon never fired");
}

#[test]
fn ext8_degraded_answers_stay_bit_identical() {
    let report = run("ext8", 0.05).expect("ext8");
    assert!(report.rows.len() >= 2, "needs a healthy row and ≥1 failure");
    assert_eq!(report.rows[0][0], "0");
    // Healthy baseline has zero overhead and zero failovers.
    assert_eq!(report.rows[0][3], "0.0");
    assert_eq!(report.rows[0][4], "0.00");
    // The bit-identity check must have passed for every degraded run.
    assert!(report.notes[0].contains("bit-identical"));
    assert!(report.notes[0].ends_with("yes"), "{}", report.notes[0]);
    // With at least one disk failed, some bucket must fail over.
    let failovers: f64 = report.rows[1][4].parse().unwrap();
    assert!(failovers > 0.0, "failing a loaded disk must cause failover");
}

#[test]
fn ext9_pipelined_schedule_beats_the_barrier() {
    let report = run("ext9", 0.05).expect("ext9");
    assert_eq!(report.rows.len(), 6, "3 disk counts x 2 modes");
    // Row pairs are (scoped, pooled) per disk count; the modeled pipelined
    // makespan can never exceed the barrier makespan, and at >= 4 disks
    // the pipeline must strictly win on modeled throughput.
    for pair in report.rows.chunks(2) {
        assert_eq!(pair[0][1], "scoped");
        assert_eq!(pair[1][1], "pooled");
        let barrier: f64 = pair[0][5].parse().unwrap();
        let pipelined: f64 = pair[1][5].parse().unwrap();
        assert!(barrier > 0.0 && pipelined > 0.0);
        // At this tiny scale every per-disk tree is about one page, so
        // the schedules can tie; the strict win at real scale is recorded
        // in the committed BENCH_pr4.json.
        assert!(
            pipelined <= barrier,
            "pipelined makespan {pipelined} must never exceed barrier {barrier}"
        );
    }
    // The JSON record round-trips the same rows.
    let rows = ext09::measure(0.05);
    let json = ext09::to_json(&rows, 0.05);
    assert!(json.contains("\"bench\": \"pr4-query-backbone\""));
    assert_eq!(json.matches("\"mode\": \"pooled\"").count(), 3);
    assert_eq!(json.matches("\"mode\": \"scoped\"").count(), 3);
}

#[test]
fn ext10_registry_totals_match_trace_sums() {
    let report = run("ext10", 0.05).expect("ext10");
    // 2 modes x 2 conditions x 6 cross-checked counters.
    assert_eq!(report.rows.len(), 24);
    for row in &report.rows {
        assert_eq!(row[3], row[4], "{}: registry != trace sum", row[2]);
        assert_eq!(row[5], "yes");
    }
    // The degraded runs actually failed something over.
    let replica_rows: u64 = report
        .rows
        .iter()
        .filter(|r| r[1] == "degraded" && r[2] == "parsim_replica_pages_total")
        .map(|r| r[3].parse::<u64>().unwrap())
        .sum();
    assert!(
        replica_rows > 0,
        "degraded condition never touched replicas"
    );
    assert!(report.notes[1].contains("mismatching rows: 0"));
}

#[test]
fn ext11_coalescing_raises_saturation_and_reconciles() {
    let m = ext11::measure(0.05);
    // Live batch: answers were asserted bit-identical inside measure();
    // here the bookkeeping must reconcile and the effect must exist.
    assert!(m.queries > 0 && m.logical_pages > 0);
    assert_eq!(
        m.registry_coalesced, m.trace_coalesced,
        "registry counter must equal the per-query trace sum"
    );
    assert!(
        m.trace_coalesced > 0,
        "waves of near-identical queries must coalesce"
    );
    assert!(
        m.sat_coalesced_qps > m.sat_plain_qps,
        "coalescing must raise modeled saturation ({} vs {})",
        m.sat_coalesced_qps,
        m.sat_plain_qps
    );
    // Open-loop sweep: 5 offered loads x 2 modes, and at every load the
    // coalesced tail is no worse than the plain tail.
    assert_eq!(m.rows.len(), 10);
    for pair in m.rows.chunks(2) {
        assert_eq!(pair[0].mode, "plain");
        assert_eq!(pair[1].mode, "coalesced");
        assert!(
            pair[1].p99_ms <= pair[0].p99_ms,
            "coalesced p99 {} must not exceed plain p99 {} at load {}",
            pair[1].p99_ms,
            pair[0].p99_ms,
            pair[0].offered
        );
    }
    // The JSON record carries the reconciliation facts.
    let json = ext11::to_json(&m, 0.05);
    assert!(json.contains("\"bench\": \"pr6-open-loop-serve\""));
    assert_eq!(json.matches("\"mode\": \"coalesced\"").count(), 5);
    assert_eq!(json.matches("\"mode\": \"plain\"").count(), 5);
    // And the tabulated report is well-formed.
    let report = run("ext11", 0.05).expect("ext11");
    assert_eq!(report.rows.len(), 10);
    assert!(report.notes[0].contains("reconciles exactly"));
}

#[test]
fn ext12_reduces_f64_evals_and_stays_exact() {
    let m = ext12::measure(0.05);
    // 3 datasets x 3 tiers; answers were asserted bit-identical inside
    // measure(), and the rows record that fact.
    assert_eq!(m.rows.len(), 9);
    assert!(m.rows.iter().all(|r| r.exact), "a tier diverged from f64");
    let cell = |dataset: &str, tier: &str| {
        m.rows
            .iter()
            .find(|r| r.dataset == dataset && r.tier == tier)
            .unwrap()
    };
    for dataset in ["uniform", "clustered", "correlated"] {
        let base = cell(dataset, "f64");
        assert!(base.f64_evals > 0, "{dataset}: f64 scan did no work");
        assert_eq!(base.lb_evals, 0, "{dataset}: f64 tier has no phase 1");
        assert_eq!(base.rerank_evals, 0);
        for tier in ["f32", "q8"] {
            let c = cell(dataset, tier);
            assert!(c.lb_evals > 0, "{dataset}/{tier}: phase 1 never ran");
            assert!(
                c.rerank_evals <= c.lb_evals,
                "{dataset}/{tier}: more survivors than rows scanned"
            );
            assert!(
                c.f64_evals <= base.f64_evals,
                "{dataset}/{tier}: cheap tier did more f64 work"
            );
        }
    }
    // The acceptance bar: on uniform data both cheap tiers cut exact f64
    // row evaluations by at least 2x.
    let base = cell("uniform", "f64").f64_evals;
    for tier in ["f32", "q8"] {
        let c = cell("uniform", tier);
        assert!(
            c.f64_evals * 2 <= base,
            "uniform/{tier}: {} f64 evals vs baseline {base} — under 2x",
            c.f64_evals
        );
    }
    // The JSON record carries the schema and every cell.
    let json = ext12::to_json(&m, 0.05);
    assert!(json.contains("\"bench\": \"pr7-two-tier-leaf-scan\""));
    assert_eq!(json.matches("\"exact\": true").count(), 9);
    for tier in ["f64", "f32", "q8"] {
        assert_eq!(json.matches(&format!("\"tier\": \"{tier}\"")).count(), 3);
    }
    // And the tabulated report is well-formed.
    let report = run("ext12", 0.05).expect("ext12");
    assert_eq!(report.rows.len(), 9);
    assert!(report.notes[0].contains("bit-identical"));
}

#[test]
fn ext14_energy_order_abandons_earlier_and_stays_exact() {
    let m = ext14::measure(0.05);
    // 3 datasets x 2 orders x 3 tiers; answers were asserted bit-identical
    // against the natural-order f64 scan inside measure().
    assert_eq!(m.rows.len(), 18);
    assert!(m.rows.iter().all(|r| r.exact), "a cell diverged");
    let cell = |dataset: &str, order: &str, tier: &str| {
        m.rows
            .iter()
            .find(|r| r.dataset == dataset && r.order == order && r.tier == tier)
            .unwrap()
    };
    for dataset in ["uniform", "high-d", "correlated"] {
        for order in ["natural", "energy"] {
            let f64c = cell(dataset, order, "f64");
            assert!(f64c.f64_evals > 0, "{dataset}/{order}: f64 scan idle");
            for tier in ["f32", "q8"] {
                let c = cell(dataset, order, tier);
                assert!(c.lb_evals > 0, "{dataset}/{order}/{tier}: no phase 1");
                assert!(c.rerank_evals <= c.lb_evals);
            }
        }
    }
    // The abandon-depth counters are self-consistent: every abandoned row
    // ran at least one checkpoint.
    for r in &m.rows {
        assert!(
            r.abandon_checkpoints >= r.abandoned_rows,
            "{}/{}/{}: fewer checkpoints than abandoned rows",
            r.dataset,
            r.order,
            r.tier
        );
    }
    // The JSON record carries the schema and every cell.
    let json = ext14::to_json(&m, 0.05);
    assert!(json.contains("\"bench\": \"pr9-energy-ordered-scan-layout\""));
    assert_eq!(json.matches("\"exact\": true").count(), 18);
    for order in ["natural", "energy"] {
        assert_eq!(json.matches(&format!("\"order\": \"{order}\"")).count(), 9);
    }
    // And the tabulated report is well-formed.
    let report = run("ext14", 0.05).expect("ext14");
    assert_eq!(report.rows.len(), 18);
    assert!(report.notes[0].contains("abandon depth"));
}

#[test]
fn ext15_frontier_is_sound_and_monotone_in_probes() {
    let m = ext15::measure(0.05);
    // 3 datasets x (1 exact + 4 probe widths). The 2x-at-recall-0.9
    // acceptance bar is asserted inside measure() at benchmark scale
    // (the committed BENCH_pr10.json); this smoke scale sits below the
    // disk-bound threshold and checks the harness itself.
    assert_eq!(m.rows.len(), 15);
    for r in &m.rows {
        assert!((0.0..=1.0).contains(&r.recall), "recall out of range");
        assert!(r.modeled_qps > 0.0, "modeled QPS must be positive");
        if r.mode == "exact" {
            assert_eq!(r.probes, 0);
            assert_eq!(r.lsh_probes, 0);
            assert_eq!(r.lsh_candidates, 0);
            assert!(r.recall >= 0.9, "{}: exact recall {}", r.dataset, r.recall);
        } else {
            // Every probe is attempted on every table for every query,
            // and every unique candidate gets exactly one f64 kernel.
            assert_eq!(r.lsh_probes, (m.queries * m.tables * r.probes) as u64);
            assert_eq!(r.lsh_candidates, r.dist_evals);
            assert!(r.empty_probe_frac <= 1.0);
        }
    }
    // Mean recall never decreases as probes widen (pointwise monotonicity
    // is pinned by prop_lsh; the aggregate inherits it).
    for dataset in ["clustered", "correlated", "fourier"] {
        let recalls: Vec<f64> = m
            .rows
            .iter()
            .filter(|r| r.dataset == dataset && r.mode == "approx")
            .map(|r| r.recall)
            .collect();
        assert!(
            recalls.windows(2).all(|w| w[1] >= w[0]),
            "{dataset}: recall not monotone in probes: {recalls:?}"
        );
    }
    // The JSON record carries the schema and every cell.
    let json = ext15::to_json(&m, 0.05);
    assert!(json.contains("\"bench\": \"pr10-declustered-lsh-approximate-tier\""));
    assert_eq!(json.matches("\"mode\": \"approx\"").count(), 12);
    assert_eq!(json.matches("\"mode\": \"exact\"").count(), 3);
    // And the tabulated report is well-formed.
    let report = run("ext15", 0.05).expect("ext15");
    assert_eq!(report.rows.len(), 15);
    assert!(report.notes[1].contains("modeled_parallel"));
}

#[test]
fn scaled_clamps_to_minimum() {
    use super::common::scaled;
    assert_eq!(scaled(100, 1.0), 100);
    assert_eq!(scaled(100, 2.0), 200);
    assert_eq!(scaled(100, 0.0), 16);
}
