//! Figure 2: speed-up of parallel NN search with the round-robin
//! declustering — the simple experiment showing parallelism pays off at
//! all.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::metrics::speedup;
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{
    build_declustered, declustered_cost, scaled, uniform_queries, Method, DISK_SWEEP,
};

/// Runs the experiment: round-robin (item-level, `v_j` to disk `j mod n`)
/// parallel NN / 10-NN speed-up over the sequential X-tree, 15-d uniform
/// data.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 15;
    let n = scaled(50_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 21);
    let queries = uniform_queries(dim, 15, 201);
    let config = EngineConfig::paper_defaults(dim);
    // The sequential baseline is the identical global X-tree on one disk,
    // so the speed-up isolates the parallelism (1 disk = 1.0 by
    // construction, as in the paper's plots).
    let baseline = build_declustered(Method::RoundRobin, &data, 1, config);
    let seq1 = declustered_cost(&baseline, &queries, 1);
    let seq10 = declustered_cost(&baseline, &queries, 10);

    let mut rows = Vec::new();
    let mut last = (0.0, 0.0);
    for disks in DISK_SWEEP {
        let engine = build_declustered(Method::RoundRobin, &data, disks, config);
        let s1 = speedup(&seq1, &declustered_cost(&engine, &queries, 1));
        let s10 = speedup(&seq10, &declustered_cost(&engine, &queries, 10));
        last = (s1, s10);
        rows.push(vec![disks.to_string(), fmt(s1, 2), fmt(s10, 2)]);
    }
    ExperimentReport {
        id: "fig2",
        title: "speed-up of parallel NN search with round-robin declustering",
        paper: "speed-up increases nearly linearly with the number of disks (NN and 10-NN)",
        headers: vec![
            "disks".into(),
            "NN speed-up".into(),
            "10-NN speed-up".into(),
        ],
        rows,
        notes: vec![format!(
            "at 16 disks: NN speed-up {:.1}, 10-NN speed-up {:.1} — parallelism helps even naively",
            last.0, last.1
        )],
    }
}
