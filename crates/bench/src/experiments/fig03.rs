//! Figure 3: the improvement of Hilbert declustering over round robin —
//! growing with the number of disks and with the amount of data.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{build_declustered, declustered_cost, scaled, uniform_queries, Method};

/// Runs both panels: improvement vs disks (fixed data) and improvement vs
/// data volume (fixed 16 disks). Improvement = round-robin parallel time /
/// Hilbert parallel time for a 10-NN workload.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 15;
    let k = 10;
    let config = EngineConfig::paper_defaults(dim);
    let mut rows = Vec::new();

    // Panel (a): vs number of disks. The quadrant structure only pays off
    // once pages are small relative to the NN sphere, so this figure runs
    // at a larger scale than the others (the paper makes the same point:
    // the improvement grows with the amount of data).
    let n = scaled(400_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 31);
    let queries = uniform_queries(dim, 8, 301);
    for disks in [2usize, 4, 8, 16] {
        let rr = build_declustered(Method::RoundRobin, &data, disks, config);
        let hi = build_declustered(Method::Hilbert, &data, disks, config);
        let imp = declustered_cost(&rr, &queries, k).avg_parallel_ms
            / declustered_cost(&hi, &queries, k).avg_parallel_ms;
        rows.push(vec![
            format!("disks={disks}"),
            format!("{n} pts"),
            fmt(imp, 2),
        ]);
    }

    // Panel (b): vs amount of data at 16 disks.
    for base in [50_000usize, 100_000, 200_000, 400_000] {
        let n = scaled(base, scale);
        let data = UniformGenerator::new(dim).generate(n, 32);
        let queries = uniform_queries(dim, 8, 302);
        let rr = build_declustered(Method::RoundRobin, &data, 16, config);
        let hi = build_declustered(Method::Hilbert, &data, 16, config);
        let imp = declustered_cost(&rr, &queries, k).avg_parallel_ms
            / declustered_cost(&hi, &queries, k).avg_parallel_ms;
        rows.push(vec!["disks=16".into(), format!("{n} pts"), fmt(imp, 2)]);
    }

    ExperimentReport {
        id: "fig3",
        title: "improvement of Hilbert declustering over round robin",
        paper: "improvement factor grows both with the number of disks and with the data volume",
        headers: vec!["sweep".into(), "data".into(), "improvement (RR/HI)".into()],
        rows,
        notes: vec![
            "the improvement factor grows with the data volume and crosses 1 at paper-scale data \
             (hundreds of thousands of vectors); in high dimensions small databases leave all \
             methods reading nearly every page, as Section 3.1 predicts"
                .into(),
        ],
    }
}
