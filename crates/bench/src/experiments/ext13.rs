//! Extension experiment 13: streaming ingest — sustained insert rate
//! under an open-loop query stream, with online reorganize.
//!
//! The streaming-ingest subsystem (PR 8) buffers writes in a bounded
//! delta overlay that every k-NN query merges exactly, and drains the
//! buffer with a background shadow rebuild that swaps the engine state
//! atomically under live readers. This experiment drives a live engine
//! through three phases and **asserts in-measure** that the answers never
//! drift from a from-scratch bulk load of the same logical contents:
//!
//! 1. **pre-reorganize churn** — a single-threaded insert/remove stream
//!    interleaved with queries against the growing delta;
//! 2. an explicit **online reorganize** (shadow rebuild + swap), after
//!    which the same probes must still answer bit-identically;
//! 3. **concurrent serve** — a writer thread streaming inserts (tripping
//!    background shadow rebuilds via the size threshold) while query
//!    threads serve an open-loop stream against the same engine.
//!
//! Reported per phase: write and query counts, the sustained insert rate
//! on this host (wall-clock — indicative only), the modeled query cost
//! (pages on the busiest disk, host-independent), and the bit-identity
//! verdict. The engine's metrics registry must **reconcile exactly**:
//! every issued write appears in the ingest counters exactly once, across
//! all rebuild swaps.

use std::time::Instant;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_parallel::{EngineBuilder, IngestConfig, ParallelKnnEngine};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

const DIM: usize = 8;
const DISKS: usize = 8;
const K: usize = 10;
const PROBES: usize = 12;

/// One phase of the ingest workload.
pub struct IngestRow {
    /// `"churn"`, `"reorganize"`, or `"concurrent-serve"`.
    pub phase: &'static str,
    /// Writes applied in the phase (inserts + removes).
    pub writes: usize,
    /// Queries answered in the phase.
    pub queries: usize,
    /// Sustained insert rate on this host, writes/s (indicative only;
    /// 0 for the reorganize phase, which applies no writes).
    pub write_rate_per_s: f64,
    /// Mean modeled query cost: pages on the busiest disk
    /// (host-independent; 0 for the reorganize phase).
    pub avg_max_pages: f64,
    /// Wall-clock of the phase, milliseconds (indicative only).
    pub measured_ms: f64,
    /// Whether the probe answers were bit-identical to a from-scratch
    /// bulk load of the engine's logical contents after the phase.
    pub bit_identical: bool,
}

/// Everything `measure` learns.
pub struct IngestMeasurement {
    /// Points bulk-loaded before the stream starts.
    pub base_points: usize,
    /// The phases in order.
    pub rows: Vec<IngestRow>,
    /// Total inserts issued across all phases.
    pub inserts_issued: u64,
    /// Total removes issued across all phases.
    pub removes_issued: u64,
    /// `parsim_rebuilds_total` at the end (explicit + background).
    pub rebuilds: u64,
    /// Whether the registry's ingest counters equal the issued counts
    /// exactly (and nothing was rejected).
    pub registry_reconciles: bool,
}

/// Normalized answer for bit-exact comparison: `(dist bits, item)`, sorted.
fn normalized(engine: &ParallelKnnEngine, q: &Point) -> Vec<(u64, u64)> {
    let (neighbors, _) = engine.knn(q, K).expect("probe query");
    let mut v: Vec<(u64, u64)> = neighbors
        .iter()
        .map(|nb| (nb.dist.to_bits(), nb.item))
        .collect();
    v.sort_unstable();
    v
}

/// Asserts the live engine answers every probe bit-identically to a
/// fresh bulk load of `contents`.
fn assert_bit_identity(
    engine: &ParallelKnnEngine,
    contents: &[(Point, u64)],
    probes: &[Point],
    phase: &str,
) -> bool {
    let fresh = EngineBuilder::new(DIM)
        .disks(DISKS)
        .build_with_items(contents.to_vec())
        .expect("reference bulk load");
    for q in probes {
        assert_eq!(
            normalized(engine, q),
            normalized(&fresh, q),
            "{phase}: live engine diverged from fresh bulk load"
        );
    }
    true
}

/// Runs the three-phase ingest workload with in-measure assertions.
pub fn measure(scale: f64) -> IngestMeasurement {
    let base_n = scaled(6_000, scale);
    let per_phase = scaled(1_500, scale);
    let initial = UniformGenerator::new(DIM).generate(base_n, 81);
    let probes = UniformGenerator::new(DIM).generate(PROBES, 82);

    let engine = EngineBuilder::new(DIM)
        .disks(DISKS)
        .metrics(true)
        .ingest(
            IngestConfig::new(base_n.max(4 * per_phase)).with_rebuild_threshold(per_phase.max(64)),
        )
        .build(&initial)
        .expect("engine builds on experiment data");

    let mut contents: Vec<(Point, u64)> = initial
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let mut inserts_issued = 0u64;
    let mut removes_issued = 0u64;
    let mut rows = Vec::new();

    // Phase 1: single-threaded churn — inserts and removes interleaved
    // with queries against the growing delta overlay.
    let stream = UniformGenerator::new(DIM).generate(per_phase, 83);
    let mut pages = 0u64;
    let mut queries = 0usize;
    let start = Instant::now();
    for (i, p) in stream.iter().enumerate() {
        if i % 5 == 4 {
            let (_, id) = contents.remove((i * 7) % contents.len());
            engine.remove(id).expect("remove accepted");
            removes_issued += 1;
        } else {
            let id = engine.insert(p.clone()).expect("insert accepted");
            contents.push((p.clone(), id));
            inserts_issued += 1;
        }
        if i % 25 == 0 {
            let q = &probes[i % probes.len()];
            let (_, cost) = engine.knn(q, K).expect("interleaved query");
            pages += cost.max_reads;
            queries += 1;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let bit = assert_bit_identity(&engine, &contents, &probes, "churn");
    rows.push(IngestRow {
        phase: "churn",
        writes: stream.len(),
        queries,
        write_rate_per_s: stream.len() as f64 / elapsed.max(1e-9),
        avg_max_pages: pages as f64 / queries.max(1) as f64,
        measured_ms: elapsed * 1e3,
        bit_identical: bit,
    });

    // Phase 2: explicit online reorganize — shadow rebuild + atomic swap
    // drains the delta; the same probes must not move by a bit.
    let start = Instant::now();
    engine.reorganize().expect("online reorganize");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(engine.delta_size(), 0, "reorganize drained the delta");
    let bit = assert_bit_identity(&engine, &contents, &probes, "reorganize");
    rows.push(IngestRow {
        phase: "reorganize",
        writes: 0,
        queries: 0,
        write_rate_per_s: 0.0,
        avg_max_pages: 0.0,
        measured_ms: elapsed * 1e3,
        bit_identical: bit,
    });

    // Phase 3: concurrent serve — a writer thread streams inserts
    // (tripping background shadow rebuilds) while two query threads
    // serve an open-loop stream against the same engine.
    let stream = UniformGenerator::new(DIM).generate(per_phase, 84);
    let serve = UniformGenerator::new(DIM).generate(PROBES * 4, 85);
    let start = Instant::now();
    let served: usize = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for p in &stream {
                engine
                    .insert(p.clone())
                    .expect("concurrent insert accepted");
            }
        });
        let askers: Vec<_> = (0..2usize)
            .map(|t| {
                let (serve, engine) = (&serve, &engine);
                s.spawn(move || {
                    let mut n = 0usize;
                    for q in serve.iter().skip(t).step_by(2) {
                        let (res, _) = engine.knn(q, K).expect("open-loop query");
                        assert_eq!(res.len(), K);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        writer.join().expect("writer thread");
        askers
            .into_iter()
            .map(|h| h.join().expect("query thread"))
            .sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let next = contents.iter().map(|&(_, id)| id).max().unwrap_or(0) + 1;
    contents.extend(
        stream
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), next + i as u64)),
    );
    inserts_issued += stream.len() as u64;
    engine.flush().expect("final drain");
    let bit = assert_bit_identity(&engine, &contents, &probes, "concurrent-serve");
    rows.push(IngestRow {
        phase: "concurrent-serve",
        writes: stream.len(),
        queries: served,
        write_rate_per_s: stream.len() as f64 / elapsed.max(1e-9),
        avg_max_pages: 0.0,
        measured_ms: elapsed * 1e3,
        bit_identical: bit,
    });

    // The registry must reconcile exactly: every issued write counted
    // once, none rejected, across every rebuild swap.
    let s = engine.metrics().expect("metrics enabled").snapshot();
    let rebuilds = s.counter_total("parsim_rebuilds_total");
    let registry_reconciles = s.counter_total("parsim_ingest_inserts_total") == inserts_issued
        && s.counter_total("parsim_ingest_removes_total") == removes_issued
        && s.counter_total("parsim_ingest_rejected_total") == 0
        && s.counter_total("parsim_rebuilds_failed_total") == 0;
    assert!(
        registry_reconciles,
        "ingest counters do not reconcile: {} inserts counted vs {} issued, \
         {} removes counted vs {} issued",
        s.counter_total("parsim_ingest_inserts_total"),
        inserts_issued,
        s.counter_total("parsim_ingest_removes_total"),
        removes_issued,
    );
    assert!(rebuilds >= 2, "explicit + background rebuilds expected");

    IngestMeasurement {
        base_points: base_n,
        rows,
        inserts_issued,
        removes_issued,
        rebuilds,
        registry_reconciles,
    }
}

/// Renders the measurement as the committed `BENCH_pr8.json` document
/// (plain formatting — the workspace carries no JSON serializer).
pub fn to_json(m: &IngestMeasurement, scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pr8-streaming-ingest\",\n");
    out.push_str("  \"experiment\": \"ext13\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!(
        "  \"dim\": {DIM},\n  \"disks\": {DISKS},\n  \"k\": {K},\n"
    ));
    out.push_str(&format!(
        "  \"base_points\": {},\n  \"inserts_issued\": {},\n  \"removes_issued\": {},\n",
        m.base_points, m.inserts_issued, m.removes_issued
    ));
    out.push_str(&format!(
        "  \"rebuilds\": {},\n  \"registry_reconciles\": {},\n",
        m.rebuilds, m.registry_reconciles
    ));
    out.push_str(
        "  \"note\": \"write_rate_per_s and measured_ms are wall-clock on the build host and \
         indicative only; avg_max_pages is the modeled pages-on-busiest-disk query cost and is \
         host-independent; bit_identical means every probe answered bit-identically to a \
         from-scratch bulk load of the engine's logical contents at that phase boundary; \
         registry_reconciles means the ingest counters equal the issued write counts exactly \
         across all rebuild swaps\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"phase\": \"{}\", \"writes\": {}, \"queries\": {}, \
             \"write_rate_per_s\": {:.1}, \"avg_max_pages\": {:.3}, \"measured_ms\": {:.3}, \
             \"bit_identical\": {}}}{}\n",
            r.phase,
            r.writes,
            r.queries,
            r.write_rate_per_s,
            r.avg_max_pages,
            r.measured_ms,
            r.bit_identical,
            if i + 1 < m.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the ingest workload and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let m = measure(scale);
    let churn_rate = m.rows[0].write_rate_per_s;
    let concurrent_rate = m.rows[2].write_rate_per_s;
    ExperimentReport {
        id: "ext13",
        title: "EXTENSION — streaming ingest: sustained insert rate under an open-loop query \
                stream, with online reorganize (answers bit-identical to a fresh bulk load at \
                every phase boundary)",
        paper: "beyond the paper: the paper's structures are bulk-loaded and static; here \
                writes flow through a bounded delta overlay merged exactly into every k-NN \
                answer, drained by a background shadow rebuild that swaps the engine state \
                atomically under live readers",
        headers: vec![
            "phase".into(),
            "writes".into(),
            "queries".into(),
            "writes/s".into(),
            "avg max pages".into(),
            "measured ms".into(),
            "bit-identical".into(),
        ],
        rows: m
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.phase.to_string(),
                    r.writes.to_string(),
                    r.queries.to_string(),
                    fmt(r.write_rate_per_s, 1),
                    fmt(r.avg_max_pages, 3),
                    fmt(r.measured_ms, 3),
                    if r.bit_identical { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect(),
        notes: vec![
            format!(
                "sustained {} writes/s single-threaded and {} writes/s while two query \
                 threads served an open-loop stream (wall-clock, indicative); {} shadow \
                 rebuilds ran (1 explicit + {} background)",
                fmt(churn_rate, 0),
                fmt(concurrent_rate, 0),
                m.rebuilds,
                m.rebuilds.saturating_sub(1),
            ),
            format!(
                "registry reconciled exactly: {} inserts and {} removes issued, every one \
                 counted once across all rebuild swaps, none rejected",
                m.inserts_issued, m.removes_issued
            ),
        ],
    }
}
