//! Extension experiment 2: the \[BBKK 97\] cost model against measurement.
//!
//! The paper's argument for parallelism rests on its companion cost model:
//! the expected number of pages a sequential NN query reads explodes with
//! the dimension. Here the executable model
//! ([`parsim_index::predict_leaf_accesses`]) is compared against measured
//! leaf accesses of the simulator across dimensions.

use std::sync::Arc;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::{
    predict_leaf_accesses, DiskSink, KnnAlgorithm, SpatialTree, TreeParams, TreeVariant,
};
use parsim_storage::SimDisk;

use crate::report::{fmt, ExperimentReport};

use super::common::{scaled, uniform_queries};

/// Runs the experiment: model vs measured leaf accesses, 10-NN, uniform
/// data.
pub fn run(scale: f64) -> ExperimentReport {
    let n = scaled(20_000, scale);
    let k = 10;
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for dim in [4usize, 6, 8, 10, 12, 14] {
        let items: Vec<(Point, u64)> = UniformGenerator::new(dim)
            .generate(n, 191)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let disk = Arc::new(SimDisk::new(0));
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).expect("valid dim");
        let tree = SpatialTree::bulk_load(params, items)
            .expect("bulk load")
            .with_sink(Arc::new(DiskSink(Arc::clone(&disk))));

        let prediction = predict_leaf_accesses(&tree, k);
        let queries = uniform_queries(dim, 20, 1901);
        let inner_nodes = tree.iter_nodes().filter(|nd| !nd.is_leaf()).count() as f64;
        let before = disk.read_count();
        for q in &queries {
            tree.knn(q, k, KnnAlgorithm::Hs);
        }
        let measured =
            ((disk.read_count() - before) as f64 / queries.len() as f64 - inner_nodes).max(0.0);
        let ratio = prediction.expected_leaf_pages / measured.max(1.0);
        ratios.push(ratio);
        rows.push(vec![
            dim.to_string(),
            fmt(prediction.radius, 3),
            fmt(prediction.expected_leaf_pages, 1),
            fmt(measured, 1),
            fmt(ratio, 2),
        ]);
    }
    ExperimentReport {
        id: "ext2",
        title: "EXTENSION — BBKK97-style cost model vs simulator measurement",
        paper: "the companion cost model predicts rapidly growing page accesses with dimension (basis of Figure 1 and Section 3.1)",
        headers: vec![
            "dim".into(),
            "NN-sphere radius".into(),
            "model leaf pages".into(),
            "measured leaf pages".into(),
            "model/measured".into(),
        ],
        rows,
        notes: vec![format!(
            "the box-extension model over-estimates by design (it encloses the sphere) but stays \
             within a factor of {:.1} while both grow by orders of magnitude across dimensions",
            ratios.iter().copied().fold(0.0f64, f64::max)
        )],
    }
}
