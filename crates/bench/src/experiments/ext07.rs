//! Extension experiment 7: what the early-abandon distance kernels save.
//!
//! The hot k-NN scan computes point distances with unrolled kernels that
//! checkpoint the partial sum against the current k-th-best bound and
//! abandon a point as soon as the partial sum alone proves it cannot
//! qualify ([`parsim_geometry::kernel`]). On clustered data — the regime
//! the paper's image and CAD workloads live in — most leaf points are far
//! from the query's cluster, so a large share of evaluations stops after
//! the first few coordinate blocks. This experiment sweeps the dimension,
//! counts started vs abandoned evaluations from the per-query traces, and
//! verifies on every query that the pruned search returns distances
//! **bit-identical** to a brute-force scan: abandoning only skips points,
//! it never changes arithmetic.

use parsim_datagen::{ClusteredGenerator, DataGenerator};
use parsim_geometry::Point;
use parsim_index::knn::brute_force_knn;
use parsim_parallel::{EngineConfig, ParallelKnnEngine};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

/// Runs the experiment: dimension sweep on clustered data, 8 disks.
pub fn run(scale: f64) -> ExperimentReport {
    let k = 10;
    let disks = 8;
    let n = scaled(12_000, scale);

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut total_saved = 0u64;
    for dim in [4usize, 8, 16, 24] {
        let data = ClusteredGenerator::new(dim, 8, 0.03).generate(n, 71);
        let items: Vec<(Point, u64)> = data
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        // Queries from the same distribution land inside clusters, the
        // paper's similarity-search access pattern.
        let queries = ClusteredGenerator::new(dim, 8, 0.03).generate(12, 72);
        let config = EngineConfig::paper_defaults(dim);
        let par = ParallelKnnEngine::builder(dim)
            .config(config)
            .disks(disks)
            .build(&data)
            .expect("engine builds");

        let mut evals = 0u64;
        let mut saved = 0u64;
        let mut identical = true;
        for q in &queries {
            let (got, trace) = par.knn_traced(q, k).expect("traced query");
            evals += trace.dist_evals;
            saved += trace.dist_evals_saved;
            let want = brute_force_knn(&items, q, k);
            for (g, w) in got.iter().zip(&want) {
                identical &= g.dist.to_bits() == w.dist.to_bits();
            }
        }
        all_identical &= identical;
        total_saved += saved;
        let pct = if evals == 0 {
            0.0
        } else {
            100.0 * saved as f64 / evals as f64
        };
        rows.push(vec![
            dim.to_string(),
            evals.to_string(),
            saved.to_string(),
            fmt(pct, 1),
            if identical { "yes".into() } else { "NO".into() },
        ]);
    }

    ExperimentReport {
        id: "ext7",
        title: "EXTENSION — early-abandon distance kernels on clustered data",
        paper: "the paper's CPU cost is dominated by leaf-level distance computations; the \
                partial-distance early-abandon kernels cut evaluations short against the \
                k-th-best bound without changing a single returned bit",
        headers: vec![
            "dim".into(),
            "dist evals started".into(),
            "evals abandoned early".into(),
            "abandoned %".into(),
            "bit-identical to brute force".into(),
        ],
        rows,
        notes: vec![
            format!(
                "early abandon cut short {total_saved} evaluations over the sweep; \
                 abandoning rises with dimension because more coordinate blocks remain \
                 after the partial sum first exceeds the bound"
            ),
            format!(
                "exactness: every query's distances were {} to a brute-force scan",
                if all_identical {
                    "bit-identical"
                } else {
                    "NOT identical (regression!)"
                }
            ),
        ],
    }
}
