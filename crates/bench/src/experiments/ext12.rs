//! Extension experiment 12: two-tier leaf scan — kernel cost across the
//! precision tiers on uniform, clustered, and correlated data.
//!
//! The tiered leaf scan (PR 7) runs every leaf through a cheap
//! low-precision phase first — an f32 mirror scan or an 8-bit quantized
//! code scan — and re-ranks only the survivors with the exact f64 batch
//! kernel, so answers stay **bit-identical** to the pure-f64 scan (asserted
//! here on every query of every cell). The experiment sweeps the three
//! tiers over three data distributions and reports, per cell:
//!
//! * the exact-kernel work (`dist_evals`: f64 row evaluations started),
//!   the phase-1 work (`lb_evals`) and the survivors re-ranked
//!   (`rerank_evals`) — all host-independent trace counters;
//! * a **modeled kernel cost** in megabytes of vector data streamed
//!   through the distance kernels (f64 rows are `8·dim` bytes, f32 mirrors
//!   `4·dim`, q8 codes `1·dim`) — the bandwidth-bound proxy that makes the
//!   tiers comparable without a wall clock;
//! * the **measured** wall-clock of the same workload on this host
//!   (single batch worker, deterministic forest search) — indicative only,
//!   and recorded with that caveat.

use std::time::Instant;

use parsim_datagen::{ClusteredGenerator, CorrelatedGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_parallel::{ParallelKnnEngine, QueryOptions, QueryResult, ScanTier};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

const DIM: usize = 8;
const DISKS: usize = 8;
const K: usize = 10;
const QUERIES: usize = 16;

/// The swept tiers with their display names and phase-1 bytes per
/// coordinate (0 for the pure f64 tier — it has no phase 1).
const TIERS: [(ScanTier, &str, u64); 3] = [
    (ScanTier::F64, "f64", 0),
    (ScanTier::F32, "f32", 4),
    (ScanTier::Q8, "q8", 1),
];

/// One (dataset, tier) cell of the sweep.
pub struct TierRow {
    /// `"uniform"`, `"clustered"`, or `"correlated"`.
    pub dataset: &'static str,
    /// `"f64"`, `"f32"`, or `"q8"`.
    pub tier: &'static str,
    /// Exact f64 row evaluations started over the workload.
    pub f64_evals: u64,
    /// Phase-1 low-precision rows scanned (0 on the f64 tier).
    pub lb_evals: u64,
    /// Phase-1 survivors re-ranked by the exact kernel.
    pub rerank_evals: u64,
    /// Modeled kernel traffic, megabytes of vector data streamed.
    pub modeled_mb: f64,
    /// Measured wall-clock of the workload on this host, milliseconds.
    pub measured_ms: f64,
    /// Whether every neighbor distance was bit-identical to the f64 tier.
    pub exact: bool,
}

/// Everything `measure` learns: the sweep plus its fixed shape facts.
pub struct TierMeasurement {
    /// Points per dataset.
    pub points: usize,
    /// Queries per dataset.
    pub queries: usize,
    /// The sweep, grouped by dataset, tiers in f64/f32/q8 order.
    pub rows: Vec<TierRow>,
}

fn datasets(n: usize) -> Vec<(&'static str, Vec<Point>, Vec<Point>)> {
    vec![
        (
            "uniform",
            UniformGenerator::new(DIM).generate(n, 71),
            UniformGenerator::new(DIM).generate(QUERIES, 72),
        ),
        (
            "clustered",
            ClusteredGenerator::new(DIM, 8, 0.03).generate(n, 73),
            ClusteredGenerator::new(DIM, 8, 0.03).generate(QUERIES, 74),
        ),
        (
            "correlated",
            CorrelatedGenerator::new(DIM, 0.05).generate(n, 75),
            CorrelatedGenerator::new(DIM, 0.05).generate(QUERIES, 76),
        ),
    ]
}

/// Runs every (dataset, tier) cell, asserting bit-identical answers
/// against the pure-f64 tier of the same engine.
pub fn measure(scale: f64) -> TierMeasurement {
    let n = scaled(6_000, scale);
    let mut rows = Vec::new();
    for (dataset, pts, queries) in datasets(n) {
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .build(&pts)
            .expect("engine builds on experiment data");
        // Single batch worker: each query runs the deterministic forest
        // search, so the trace counters are exact and reproducible.
        let run = |tier: ScanTier| -> (Vec<QueryResult>, f64) {
            let opts = QueryOptions::traced(K).with_workers(1).with_tier(tier);
            let start = Instant::now();
            let res = engine
                .query_batch(&queries, &opts)
                .expect("workload queries match the engine");
            (res, start.elapsed().as_secs_f64() * 1e3)
        };
        let (base, _) = run(ScanTier::F64);
        for (tier, name, lb_bytes) in TIERS {
            let (res, measured_ms) = run(tier);
            let mut f64_evals = 0u64;
            let mut lb_evals = 0u64;
            let mut rerank_evals = 0u64;
            let mut exact = true;
            for (got, want) in res.iter().zip(&base) {
                exact &= got.neighbors.len() == want.neighbors.len()
                    && got
                        .neighbors
                        .iter()
                        .zip(&want.neighbors)
                        .all(|(g, w)| g.dist.to_bits() == w.dist.to_bits());
                let t = got.trace.as_ref().expect("traced");
                f64_evals += t.dist_evals;
                lb_evals += t.lb_evals;
                rerank_evals += t.rerank_evals;
            }
            assert!(exact, "{dataset}/{name}: answers diverged from f64");
            let modeled_mb = ((f64_evals * 8 + lb_evals * lb_bytes) * DIM as u64) as f64 / 1e6;
            rows.push(TierRow {
                dataset,
                tier: name,
                f64_evals,
                lb_evals,
                rerank_evals,
                modeled_mb,
                measured_ms,
                exact,
            });
        }
    }
    TierMeasurement {
        points: n,
        queries: QUERIES,
        rows,
    }
}

/// Renders the measurement as the committed `BENCH_pr7.json` document
/// (plain formatting — the workspace carries no JSON serializer).
pub fn to_json(m: &TierMeasurement, scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pr7-two-tier-leaf-scan\",\n");
    out.push_str("  \"experiment\": \"ext12\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!(
        "  \"dim\": {DIM},\n  \"disks\": {DISKS},\n  \"k\": {K},\n"
    ));
    out.push_str(&format!(
        "  \"points_per_dataset\": {},\n  \"queries_per_dataset\": {},\n",
        m.points, m.queries
    ));
    out.push_str(
        "  \"note\": \"f64_evals/lb_evals/rerank_evals are host-independent trace counters \
         (exact f64 rows started, phase-1 low-precision rows scanned, survivors re-ranked); \
         modeled_mb is the bandwidth proxy 8B/4B/1B per coordinate for f64/f32/q8 rows; \
         measured_ms is wall-clock of the single-worker deterministic batch on the build host \
         and is indicative only; exact means every neighbor distance was bit-identical to the \
         f64 tier\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"tier\": \"{}\", \"f64_evals\": {}, \"lb_evals\": {}, \
             \"rerank_evals\": {}, \"modeled_mb\": {:.3}, \"measured_ms\": {:.3}, \
             \"exact\": {}}}{}\n",
            r.dataset,
            r.tier,
            r.f64_evals,
            r.lb_evals,
            r.rerank_evals,
            r.modeled_mb,
            r.measured_ms,
            r.exact,
            if i + 1 < m.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the tier sweep and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let m = measure(scale);
    let reduction = |dataset: &str| -> (f64, f64) {
        let evals = |tier: &str| -> f64 {
            m.rows
                .iter()
                .find(|r| r.dataset == dataset && r.tier == tier)
                .map(|r| r.f64_evals as f64)
                .unwrap_or(0.0)
        };
        let base = evals("f64").max(1.0);
        (base / evals("f32").max(1.0), base / evals("q8").max(1.0))
    };
    let (uf32, uq8) = reduction("uniform");
    ExperimentReport {
        id: "ext12",
        title: "EXTENSION — two-tier leaf scan: f64 kernel work vs precision tier on uniform, \
                clustered, and correlated data (answers bit-identical in every cell)",
        paper: "beyond the paper: the leaf scan runs a certified low-precision lower-bound pass \
                (f32 mirrors or 8-bit quantized codes) before the exact f64 kernel, re-ranking \
                only rows the cheap pass cannot prune; the triangle-inequality certification \
                makes every tier return the paper's arithmetic bit for bit",
        headers: vec![
            "dataset".into(),
            "tier".into(),
            "f64 evals".into(),
            "lb evals".into(),
            "rerank evals".into(),
            "modeled MB".into(),
            "measured ms".into(),
            "exact".into(),
        ],
        rows: m
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.tier.to_string(),
                    r.f64_evals.to_string(),
                    r.lb_evals.to_string(),
                    r.rerank_evals.to_string(),
                    fmt(r.modeled_mb, 3),
                    fmt(r.measured_ms, 3),
                    if r.exact { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect(),
        notes: vec![
            format!(
                "uniform data: the cheap tiers cut exact f64 row evaluations by {}x (f32) and \
                 {}x (q8); every cell's answers were asserted bit-identical to the f64 tier",
                fmt(uf32, 1),
                fmt(uq8, 1),
            ),
            "f64/lb/rerank eval counts and modeled MB are host-independent (trace counters and \
             a bytes-streamed bandwidth proxy); measured ms is wall-clock on the build host and \
             indicative only"
                .to_string(),
        ],
    }
}
