//! Figure 15 (printed as Figure 5 in some copies): scale-up — the number
//! of disks and the amount of data grow proportionally; the search time
//! should stay constant.

use parsim_datagen::{DataGenerator, FourierGenerator};
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{build_declustered, data_queries, declustered_cost, scaled, Method};

/// Runs the experiment: (disks, data) grow together ×2 per step; reported
/// are NN and 10-NN parallel search times of the near-optimal technique.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 16;
    let gen = FourierGenerator::new(dim);
    let config = EngineConfig::paper_defaults(dim);

    let mut rows = Vec::new();
    let mut times = Vec::new();
    for (disks, base) in [
        (2usize, 12_500usize),
        (4, 25_000),
        (8, 50_000),
        (16, 100_000),
    ] {
        let n = scaled(base, scale);
        let data = gen.generate(n, 151);
        let queries = data_queries(&gen, n, 10, 151);
        let engine = build_declustered(Method::NearOptimal, &data, disks, config);
        let c1 = declustered_cost(&engine, &queries, 1);
        let c10 = declustered_cost(&engine, &queries, 10);
        times.push(c10.avg_parallel_ms);
        rows.push(vec![
            disks.to_string(),
            n.to_string(),
            fmt(c1.avg_parallel_ms, 1),
            fmt(c10.avg_parallel_ms, 1),
        ]);
    }
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(0.0_f64, f64::max);
    ExperimentReport {
        id: "fig15",
        title: "scale-up: disks and data grow proportionally",
        paper: "total search time stays nearly constant for NN and 10-NN queries",
        headers: vec![
            "disks".into(),
            "points".into(),
            "NN time (ms)".into(),
            "10-NN time (ms)".into(),
        ],
        rows,
        notes: vec![format!(
            "10-NN time varies only {:.2}x across an 8x problem-size growth (1.0 = perfectly constant)",
            max / min
        )],
    }
}
