//! Extension experiment 9: sustained query throughput of the pooled
//! backbone vs the scoped reference, by disk count.
//!
//! The scoped engine answers a query by occupying every disk until the
//! slowest one finishes — a per-query barrier. The persistent worker pool
//! pipelines instead: while query `i` searches disk 3, query `i+1`
//! already searches disk 1, so a batch's modeled makespan drops from
//! Σᵢ maxᵈ t(i,d) (barrier per query) to maxᵈ Σᵢ t(i,d) (the busiest
//! disk's total work). Both modeled columns are computed from the same
//! per-query page traces with the paper's disk model, so they are
//! host-independent; the measured columns (QPS, latency percentiles) are
//! wall-clock on the current host and recorded in `BENCH_pr4.json`.

use std::time::Instant;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::{ExecutionMode, ParallelKnnEngine, QueryOptions};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

/// One measured configuration: a (disk count, execution mode) pair.
pub struct BackboneRow {
    /// Disks in the engine.
    pub disks: usize,
    /// `"scoped"` or `"pooled"`.
    pub mode: &'static str,
    /// Measured sustained queries per second over the repeated batch.
    pub measured_qps: f64,
    /// Median measured single-query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile measured single-query latency, milliseconds.
    pub p99_ms: f64,
    /// Modeled batch makespan under this mode's schedule, milliseconds.
    pub modeled_makespan_ms: f64,
    /// Modeled sustained throughput: queries / modeled makespan.
    pub modeled_qps: f64,
}

/// Percentile of an unsorted sample (nearest-rank), in the sample's unit.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    if samples.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Runs the full sweep and returns one row per (disks, mode).
pub fn measure(scale: f64) -> Vec<BackboneRow> {
    let dim = 8;
    let k = 5; // small k: little work per disk, so scheduling dominates
    let n = scaled(8_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 91);
    let queries = UniformGenerator::new(dim).generate(64, 92);
    let repeats = 3usize;
    let mut rows = Vec::new();

    for disks in [4usize, 8, 16] {
        // The modeled schedule needs the per-query page traces; RKV traces
        // are identical in both modes, so one traced batch serves both.
        let scoped = ParallelKnnEngine::builder(dim)
            .disks(disks)
            .build(&data)
            .expect("scoped engine builds");
        let pooled = ParallelKnnEngine::builder(dim)
            .disks(disks)
            .execution(ExecutionMode::Pooled)
            .build(&data)
            .expect("pooled engine builds");
        let model = *scoped.array().model();
        let traces: Vec<_> = scoped
            .knn_batch(&queries, k)
            .expect("traced batch succeeds")
            .into_iter()
            .map(|(_, t)| t)
            .collect();

        // Barrier schedule: each query holds all disks until its busiest
        // disk finishes.
        let barrier_s: f64 = traces
            .iter()
            .map(|t| {
                let max = t.per_disk_pages.iter().copied().max().unwrap_or(0);
                model.service_time(max).as_secs_f64()
            })
            .sum();
        // Pipelined schedule: disks never idle waiting for a query's other
        // disks, so the busiest disk's total work gates the batch.
        let pipelined_s = (0..disks)
            .map(|d| {
                let total: u64 = traces.iter().map(|t| t.per_disk_pages[d]).sum();
                model.service_time(total).as_secs_f64()
            })
            .fold(0.0f64, f64::max);

        for (mode, engine, modeled_s) in [
            ("scoped", &scoped, barrier_s),
            ("pooled", &pooled, pipelined_s),
        ] {
            let opts = QueryOptions::new(k);
            // Sustained throughput: the whole batch, repeated.
            let start = Instant::now();
            for _ in 0..repeats {
                engine.query_batch(&queries, &opts).expect("batch succeeds");
            }
            let measured_qps = (repeats * queries.len()) as f64 / start.elapsed().as_secs_f64();
            // Closed-loop latency percentiles.
            let mut lat_ms: Vec<f64> = queries
                .iter()
                .map(|q| {
                    let t0 = Instant::now();
                    engine.query(q, &opts).expect("query succeeds");
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .collect();
            let p50_ms = percentile(&mut lat_ms, 50.0);
            let p99_ms = percentile(&mut lat_ms, 99.0);
            rows.push(BackboneRow {
                disks,
                mode,
                measured_qps,
                p50_ms,
                p99_ms,
                modeled_makespan_ms: modeled_s * 1e3,
                modeled_qps: if modeled_s > 0.0 {
                    queries.len() as f64 / modeled_s
                } else {
                    0.0
                },
            });
        }
    }
    rows
}

/// Renders the rows as the committed `BENCH_pr4.json` document (built with
/// plain formatting — the workspace carries no JSON serializer).
pub fn to_json(rows: &[BackboneRow], scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pr4-query-backbone\",\n");
    out.push_str("  \"experiment\": \"ext9\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str("  \"dim\": 8,\n  \"k\": 5,\n  \"queries\": 64,\n  \"batch_repeats\": 3,\n");
    out.push_str(
        "  \"note\": \"modeled_* columns are host-independent (paper disk model over identical \
         page traces); measured_* columns are wall-clock on the build host\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"disks\": {}, \"mode\": \"{}\", \"measured_qps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"modeled_makespan_ms\": {:.4}, \
             \"modeled_qps\": {:.1}}}{}\n",
            r.disks,
            r.mode,
            r.measured_qps,
            r.p50_ms,
            r.p99_ms,
            r.modeled_makespan_ms,
            r.modeled_qps,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the backbone throughput sweep and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let rows = measure(scale);
    let gain: Vec<String> = rows
        .chunks(2)
        .map(|pair| {
            format!(
                "{} disks: modeled pipelined/barrier throughput = {}x",
                pair[0].disks,
                fmt(pair[1].modeled_qps / pair[0].modeled_qps.max(1e-12), 2)
            )
        })
        .collect();
    ExperimentReport {
        id: "ext9",
        title: "EXTENSION — query backbone: pooled pipeline vs scoped barrier throughput",
        paper: "beyond the paper: the persistent per-disk worker pool pipelines queries across \
                disks (no per-query barrier), so the batch makespan falls from the sum of \
                per-query critical paths to the busiest disk's total work; answers and page \
                traces are bit-identical to the scoped reference",
        headers: vec![
            "disks".into(),
            "mode".into(),
            "measured qps".into(),
            "p50 ms".into(),
            "p99 ms".into(),
            "modeled makespan ms".into(),
            "modeled qps".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.disks.to_string(),
                    r.mode.to_string(),
                    fmt(r.measured_qps, 1),
                    fmt(r.p50_ms, 3),
                    fmt(r.p99_ms, 3),
                    fmt(r.modeled_makespan_ms, 3),
                    fmt(r.modeled_qps, 1),
                ]
            })
            .collect(),
        notes: {
            let mut notes = vec![
                "modeled columns are host-independent: both schedules are computed from the \
                 same per-query page traces under the paper's disk model"
                    .to_string(),
                "measured columns are wall-clock on the build host and depend on its core count"
                    .to_string(),
            ];
            notes.extend(gain);
            notes
        },
    }
}
