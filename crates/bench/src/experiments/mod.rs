//! One module per regenerated figure.

pub mod common;
pub mod ext01;
pub mod ext02;
pub mod ext03;
pub mod ext04;
pub mod ext05;
pub mod ext06;
pub mod ext07;
pub mod ext08;
pub mod ext09;
pub mod ext10;
pub mod ext11;
pub mod ext12;
pub mod ext13;
pub mod ext14;
pub mod ext15;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig05;
pub mod fig07;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;

#[cfg(test)]
mod tests;

use crate::ExperimentReport;

/// All experiment ids: the paper's figures in order, then the extension
/// experiments.
pub const ALL: [&str; 27] = [
    "fig1", "fig2", "fig3", "fig5", "fig7", "fig10", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9", "ext10",
    "ext11", "ext12", "ext13", "ext14", "ext15",
];

/// Runs an experiment by id. `scale` multiplies the default dataset sizes.
pub fn run(id: &str, scale: f64) -> Option<ExperimentReport> {
    match id {
        "fig1" => Some(fig01::run(scale)),
        "fig2" => Some(fig02::run(scale)),
        "fig3" => Some(fig03::run(scale)),
        "fig5" => Some(fig05::run(scale)),
        "fig7" => Some(fig07::run(scale)),
        "fig10" => Some(fig10::run(scale)),
        "fig12" => Some(fig12::run(scale)),
        "fig13" => Some(fig13::run(scale)),
        "fig14" => Some(fig14::run(scale)),
        "fig15" => Some(fig15::run(scale)),
        "fig16" => Some(fig16::run(scale)),
        "fig17" => Some(fig17::run(scale)),
        "ext1" => Some(ext01::run(scale)),
        "ext2" => Some(ext02::run(scale)),
        "ext3" => Some(ext03::run(scale)),
        "ext4" => Some(ext04::run(scale)),
        "ext5" => Some(ext05::run(scale)),
        "ext6" => Some(ext06::run(scale)),
        "ext7" => Some(ext07::run(scale)),
        "ext8" => Some(ext08::run(scale)),
        "ext9" => Some(ext09::run(scale)),
        "ext10" => Some(ext10::run(scale)),
        "ext11" => Some(ext11::run(scale)),
        "ext12" => Some(ext12::run(scale)),
        "ext13" => Some(ext13::run(scale)),
        "ext14" => Some(ext14::run(scale)),
        "ext15" => Some(ext15::run(scale)),
        _ => None,
    }
}
