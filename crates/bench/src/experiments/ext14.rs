//! Extension experiment 14: energy-ordered scan layout — abandon depth
//! and q8 bound tightness across coordinate orders and precision tiers.
//!
//! The energy layout (PR 9) stores every leaf's rows — and their f32/q8
//! mirrors — with coordinates permuted by descending per-leaf variance,
//! so a bounded kernel accumulates the partial distance fastest in its
//! first checkpoints and abandons hopeless rows after fewer coordinates.
//! The f64 tier runs a certified permuted filter (abandon only beyond a
//! padded bound, survivors re-ranked by the canonical natural-order
//! kernel), so answers stay **bit-identical** in every cell — asserted
//! here per query against the natural-order f64 scan of the same data.
//!
//! The sweep crosses three datasets (uniform 8-d, uniform 32-d "high-d",
//! correlated 8-d) with both scan orders and all three precision tiers,
//! and reports per cell:
//!
//! * the exact-kernel work (`f64_evals`), phase-1 work (`lb_evals`) and
//!   re-ranked survivors (`rerank_evals`) — host-independent counters;
//! * `abandoned_rows` / `abandon_checkpoints` and the derived **mean
//!   abandon depth** in coordinates (`4·checkpoints/rows`) — the figure
//!   the energy order is designed to shrink;
//! * the q8 **re-rank fraction** (`rerank_evals / lb_evals`) — the PR-9
//!   per-dimension grids replace PR-7's per-block grid, tightening q8
//!   lower bounds on correlated data well below ext12's ~45%;
//! * measured wall-clock on this host (single worker, indicative only).

use std::time::Instant;

use parsim_datagen::{CorrelatedGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::{ScanOrder, ScanTier};
use parsim_parallel::{ParallelKnnEngine, QueryOptions, QueryResult};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

const DISKS: usize = 8;
const K: usize = 10;
const QUERIES: usize = 16;

const ORDERS: [(ScanOrder, &str); 2] = [
    (ScanOrder::Natural, "natural"),
    (ScanOrder::Energy, "energy"),
];

const TIERS: [(ScanTier, &str); 3] = [
    (ScanTier::F64, "f64"),
    (ScanTier::F32, "f32"),
    (ScanTier::Q8, "q8"),
];

/// One (dataset, order, tier) cell of the sweep.
pub struct OrderRow {
    /// `"uniform"`, `"high-d"`, or `"correlated"`.
    pub dataset: &'static str,
    /// Dataset dimensionality.
    pub dim: usize,
    /// `"natural"` or `"energy"`.
    pub order: &'static str,
    /// `"f64"`, `"f32"`, or `"q8"`.
    pub tier: &'static str,
    /// Exact f64 row evaluations started over the workload.
    pub f64_evals: u64,
    /// Phase-1 low-precision rows scanned (0 on the f64 tier).
    pub lb_evals: u64,
    /// Phase-1 survivors re-ranked by the exact kernel.
    pub rerank_evals: u64,
    /// Rows a bounded kernel abandoned mid-scan.
    pub abandoned_rows: u64,
    /// 4-coordinate checkpoints those rows ran before abandoning.
    pub abandon_checkpoints: u64,
    /// Mean abandon depth in coordinates: `4·checkpoints/rows`.
    pub mean_abandon_depth: f64,
    /// Survivor fraction of phase 1, `rerank_evals/lb_evals` (0 on f64).
    pub rerank_frac: f64,
    /// Measured wall-clock of the workload on this host, milliseconds.
    pub measured_ms: f64,
    /// Whether every neighbor distance was bit-identical to the
    /// natural-order f64 scan.
    pub exact: bool,
}

/// Everything `measure` learns: the sweep plus its fixed shape facts.
pub struct OrderMeasurement {
    /// Points per dataset.
    pub points: usize,
    /// Queries per dataset.
    pub queries: usize,
    /// The sweep, grouped by dataset, then order, tiers in f64/f32/q8 order.
    pub rows: Vec<OrderRow>,
}

fn datasets(n: usize) -> Vec<(&'static str, usize, Vec<Point>, Vec<Point>)> {
    vec![
        (
            "uniform",
            8,
            UniformGenerator::new(8).generate(n, 81),
            UniformGenerator::new(8).generate(QUERIES, 82),
        ),
        (
            "high-d",
            32,
            UniformGenerator::new(32).generate(n, 83),
            UniformGenerator::new(32).generate(QUERIES, 84),
        ),
        (
            "correlated",
            8,
            CorrelatedGenerator::new(8, 0.05).generate(n, 85),
            CorrelatedGenerator::new(8, 0.05).generate(QUERIES, 86),
        ),
    ]
}

/// Runs every (dataset, order, tier) cell, asserting bit-identical
/// answers against the natural-order pure-f64 scan of the same data.
pub fn measure(scale: f64) -> OrderMeasurement {
    let n = scaled(6_000, scale);
    let mut rows = Vec::new();
    for (dataset, dim, pts, queries) in datasets(n) {
        let engines: Vec<(&'static str, ParallelKnnEngine)> = ORDERS
            .iter()
            .map(|&(order, name)| {
                (
                    name,
                    ParallelKnnEngine::builder(dim)
                        .disks(DISKS)
                        .scan_order(order)
                        .build(&pts)
                        .expect("engine builds on experiment data"),
                )
            })
            .collect();
        // Single batch worker: each query runs the deterministic forest
        // search, so the trace counters are exact and reproducible.
        let run = |engine: &ParallelKnnEngine, tier: ScanTier| -> (Vec<QueryResult>, f64) {
            let opts = QueryOptions::traced(K).with_workers(1).with_tier(tier);
            let start = Instant::now();
            let res = engine
                .query_batch(&queries, &opts)
                .expect("workload queries match the engine");
            (res, start.elapsed().as_secs_f64() * 1e3)
        };
        let (base, _) = run(&engines[0].1, ScanTier::F64);
        for (order, engine) in &engines {
            let order = *order;
            for (tier, tname) in TIERS {
                let (res, measured_ms) = run(engine, tier);
                let mut f64_evals = 0u64;
                let mut lb_evals = 0u64;
                let mut rerank_evals = 0u64;
                let mut abandoned_rows = 0u64;
                let mut abandon_checkpoints = 0u64;
                let mut exact = true;
                for (got, want) in res.iter().zip(&base) {
                    exact &=
                        got.neighbors.len() == want.neighbors.len()
                            && got.neighbors.iter().zip(&want.neighbors).all(|(g, w)| {
                                g.item == w.item && g.dist.to_bits() == w.dist.to_bits()
                            });
                    let t = got.trace.as_ref().expect("traced");
                    f64_evals += t.dist_evals;
                    lb_evals += t.lb_evals;
                    rerank_evals += t.rerank_evals;
                    abandoned_rows += t.abandoned_rows;
                    abandon_checkpoints += t.abandon_checkpoints;
                }
                assert!(
                    exact,
                    "{dataset}/{order}/{tname}: answers diverged from natural f64"
                );
                rows.push(OrderRow {
                    dataset,
                    dim,
                    order,
                    tier: tname,
                    f64_evals,
                    lb_evals,
                    rerank_evals,
                    abandoned_rows,
                    abandon_checkpoints,
                    mean_abandon_depth: if abandoned_rows > 0 {
                        4.0 * abandon_checkpoints as f64 / abandoned_rows as f64
                    } else {
                        0.0
                    },
                    rerank_frac: if lb_evals > 0 {
                        rerank_evals as f64 / lb_evals as f64
                    } else {
                        0.0
                    },
                    measured_ms,
                    exact,
                });
            }
        }
    }
    OrderMeasurement {
        points: n,
        queries: QUERIES,
        rows,
    }
}

/// Renders the measurement as the committed `BENCH_pr9.json` document
/// (plain formatting — the workspace carries no JSON serializer).
pub fn to_json(m: &OrderMeasurement, scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pr9-energy-ordered-scan-layout\",\n");
    out.push_str("  \"experiment\": \"ext14\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!("  \"disks\": {DISKS},\n  \"k\": {K},\n"));
    out.push_str(&format!(
        "  \"points_per_dataset\": {},\n  \"queries_per_dataset\": {},\n",
        m.points, m.queries
    ));
    out.push_str(
        "  \"note\": \"f64_evals/lb_evals/rerank_evals/abandoned_rows/abandon_checkpoints are \
         host-independent trace counters; mean_abandon_depth is 4*checkpoints/rows in \
         coordinates; rerank_frac is the phase-1 survivor fraction rerank_evals/lb_evals; \
         measured_ms is wall-clock of the single-worker deterministic batch on the build host \
         and is indicative only; exact means every neighbor (item, distance-bits) matched the \
         natural-order f64 scan\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"dim\": {}, \"order\": \"{}\", \"tier\": \"{}\", \
             \"f64_evals\": {}, \"lb_evals\": {}, \"rerank_evals\": {}, \
             \"abandoned_rows\": {}, \"abandon_checkpoints\": {}, \
             \"mean_abandon_depth\": {:.3}, \"rerank_frac\": {:.4}, \"measured_ms\": {:.3}, \
             \"exact\": {}}}{}\n",
            r.dataset,
            r.dim,
            r.order,
            r.tier,
            r.f64_evals,
            r.lb_evals,
            r.rerank_evals,
            r.abandoned_rows,
            r.abandon_checkpoints,
            r.mean_abandon_depth,
            r.rerank_frac,
            r.measured_ms,
            r.exact,
            if i + 1 < m.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the scan-order sweep and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let m = measure(scale);
    let cell = |dataset: &str, order: &str, tier: &str| -> Option<&OrderRow> {
        m.rows
            .iter()
            .find(|r| r.dataset == dataset && r.order == order && r.tier == tier)
    };
    let depth = |dataset: &str, order: &str| -> f64 {
        cell(dataset, order, "f64").map_or(0.0, |r| r.mean_abandon_depth)
    };
    let q8_frac = cell("correlated", "energy", "q8").map_or(0.0, |r| r.rerank_frac);
    ExperimentReport {
        id: "ext14",
        title: "EXTENSION — energy-ordered scan layout: abandon depth and q8 bound tightness \
                across coordinate orders and precision tiers (answers bit-identical in every \
                cell)",
        paper: "beyond the paper: leaves store rows with coordinates permuted by descending \
                per-leaf variance — the stepwise-dimensionality-increasing order — so bounded \
                kernels cross the pruning bound after fewer coordinates; the f64 tier runs a \
                certified permuted filter with canonical re-ranking, keeping every answer bit \
                for bit",
        headers: vec![
            "dataset".into(),
            "order".into(),
            "tier".into(),
            "f64 evals".into(),
            "lb evals".into(),
            "rerank evals".into(),
            "abandoned".into(),
            "depth".into(),
            "rerank frac".into(),
            "measured ms".into(),
            "exact".into(),
        ],
        rows: m
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{} ({}d)", r.dataset, r.dim),
                    r.order.to_string(),
                    r.tier.to_string(),
                    r.f64_evals.to_string(),
                    r.lb_evals.to_string(),
                    r.rerank_evals.to_string(),
                    r.abandoned_rows.to_string(),
                    fmt(r.mean_abandon_depth, 2),
                    fmt(r.rerank_frac, 4),
                    fmt(r.measured_ms, 3),
                    if r.exact { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect(),
        notes: vec![
            format!(
                "f64-tier mean abandon depth, natural vs energy: uniform {} vs {}, high-d {} \
                 vs {} coordinates — the energy order abandons earlier on both",
                fmt(depth("uniform", "natural"), 2),
                fmt(depth("uniform", "energy"), 2),
                fmt(depth("high-d", "natural"), 2),
                fmt(depth("high-d", "energy"), 2),
            ),
            format!(
                "correlated q8 re-rank fraction under the per-dimension grids: {} \
                 (ext12's per-block grid left ~0.45)",
                fmt(q8_frac, 4),
            ),
            "every cell's answers were asserted bit-identical (item and distance bits) to the \
             natural-order f64 scan; counters are host-independent, measured ms indicative only"
                .to_string(),
        ],
    }
}
