//! Figure 14: the improvement factor of the near-optimal technique over
//! the Hilbert declustering grows with the number of disks.

use parsim_datagen::{DataGenerator, FourierGenerator};
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{build_declustered, data_queries, declustered_cost, scaled, Method};

/// Runs the experiment: improvement factor (Hilbert parallel time / ours)
/// on Fourier data, 10-NN.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 16;
    let n = scaled(50_000, scale);
    let gen = FourierGenerator::new(dim);
    let data = gen.generate(n, 141);
    let queries = data_queries(&gen, n, 15, 141);
    let config = EngineConfig::paper_defaults(dim);

    let mut rows = Vec::new();
    let mut factors = Vec::new();
    for disks in [2usize, 4, 8, 16] {
        let ours = build_declustered(Method::NearOptimal, &data, disks, config);
        let hil = build_declustered(Method::Hilbert, &data, disks, config);
        let factor = declustered_cost(&hil, &queries, 10).avg_parallel_ms
            / declustered_cost(&ours, &queries, 10).avg_parallel_ms;
        factors.push(factor);
        rows.push(vec![disks.to_string(), fmt(factor, 2)]);
    }
    let increasing = factors.windows(2).filter(|w| w[1] >= w[0]).count();
    ExperimentReport {
        id: "fig14",
        title: "improvement factor over the Hilbert curve (Fourier data, 10-NN)",
        paper: "factor increases roughly linearly with the number of disks and approaches ~5 at 16 disks",
        headers: vec!["disks".into(), "improvement (HI/ours)".into()],
        rows,
        notes: vec![format!(
            "factor at 16 disks: {:.2}; non-decreasing in {}/{} steps",
            factors.last().copied().unwrap_or(f64::NAN),
            increasing,
            factors.len() - 1
        )],
    }
}
