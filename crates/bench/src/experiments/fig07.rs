//! Figure 7 / Lemma 1: disk modulo, FX and Hilbert are not near-optimal
//! declustering techniques; a near-optimal declustering exists.

use parsim_decluster::{
    BucketDecluster, DiskAssignmentGraph, DiskModulo, FxXor, HilbertDecluster, NearOptimal,
};

use crate::report::ExperimentReport;

/// Runs the verification on the 3-d disk assignment graph with 4 disks
/// (the optimal count for d = 3), reporting the first violating pair per
/// method — the paper's counterexample cubes.
pub fn run(_scale: f64) -> ExperimentReport {
    let dim = 3;
    let disks = 4;
    let graph = DiskAssignmentGraph::new(dim);
    let methods: Vec<(&str, Box<dyn BucketDecluster>)> = vec![
        ("disk modulo", Box::new(DiskModulo::new(disks).unwrap())),
        ("FX", Box::new(FxXor::new(disks).unwrap())),
        (
            "hilbert",
            Box::new(HilbertDecluster::new(dim, disks).unwrap()),
        ),
        (
            "near-optimal",
            Box::new(NearOptimal::with_optimal_disks(dim).unwrap()),
        ),
    ];
    let mut rows = Vec::new();
    let mut near_optimal_clean = false;
    for (name, m) in &methods {
        let (direct, indirect) = graph.count_violations(m.as_ref());
        let verdict = match graph.verify(m.as_ref()) {
            Ok(()) => {
                if *name == "near-optimal" {
                    near_optimal_clean = true;
                }
                "NEAR-OPTIMAL".to_string()
            }
            Err(v) => format!(
                "collides: {:03b}~{:03b} on disk {}",
                v.bucket_a, v.bucket_b, v.disk
            ),
        };
        rows.push(vec![
            (*name).into(),
            direct.to_string(),
            indirect.to_string(),
            verdict,
        ]);
    }
    assert!(near_optimal_clean, "col must color G_3 properly");
    ExperimentReport {
        id: "fig7",
        title: "classical declusterings are not near-optimal (3-d counterexample)",
        paper: "DM, FX and Hilbert each assign some indirect neighbors to the same disk; a near-optimal declustering with 4 disks exists",
        headers: vec![
            "method".into(),
            "direct collisions".into(),
            "indirect collisions".into(),
            "verdict".into(),
        ],
        rows,
        notes: vec![
            "reproduces Lemma 1 exactly: only the coloring technique separates all neighbors"
                .into(),
        ],
    }
}
