//! Extension experiment 4: X-tree structure vs dimension.
//!
//! The X-tree's founding claim \[BKK 96\] is that in high dimensions
//! directory splits become overlap-doomed, so the tree must extend nodes
//! (supernodes) instead of splitting them — degenerating gracefully
//! towards a sequential file rather than thrashing through an overlapping
//! directory. This experiment builds insertion-built X-trees and R\*-trees
//! across dimensions and reports the structural evidence: supernode
//! counts and extra pages appear and grow with the dimension for the
//! X-tree, while the R\*-tree by construction has none.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_index::{SpatialTree, TreeParams, TreeVariant};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

/// Runs the experiment: insertion-built trees, 8 ≤ d ≤ 16.
pub fn run(scale: f64) -> ExperimentReport {
    let n = scaled(20_000, scale);
    let mut rows = Vec::new();
    let mut supernode_counts = Vec::new();
    for dim in [2usize, 4, 8, 12, 16] {
        let pts = UniformGenerator::new(dim).generate(n, 221);
        let mut xtree = SpatialTree::new(
            TreeParams::for_dim(dim, TreeVariant::xtree_default())
                .expect("valid dim")
                .with_capacities(20, 20)
                .expect("valid capacities"),
        );
        for (i, p) in pts.iter().enumerate() {
            xtree.insert(p.clone(), i as u64).expect("insert");
        }
        let xstats = xtree.stats();
        let mut rstar = SpatialTree::new(
            TreeParams::for_dim(dim, TreeVariant::RStar)
                .expect("valid dim")
                .with_capacities(20, 20)
                .expect("valid capacities"),
        );
        for (i, p) in pts.iter().enumerate() {
            rstar.insert(p.clone(), i as u64).expect("insert");
        }
        let rstats = rstar.stats();
        supernode_counts.push(xstats.supernodes);
        rows.push(vec![
            dim.to_string(),
            xstats.supernodes.to_string(),
            xtree.supernode_extra_pages().to_string(),
            xstats.height.to_string(),
            rstats.height.to_string(),
            fmt(xstats.leaf_fill, 2),
        ]);
    }
    let grew = supernode_counts.windows(2).filter(|w| w[1] >= w[0]).count();
    ExperimentReport {
        id: "ext4",
        title: "EXTENSION — X-tree structure vs dimension (supernodes)",
        paper: "[BKK 96]: overlap-doomed directory splits force supernodes in high dimensions; the directory flattens instead of degenerating",
        headers: vec![
            "dim".into(),
            "supernodes".into(),
            "extra pages".into(),
            "x-tree height".into(),
            "r*-tree height".into(),
            "leaf fill".into(),
        ],
        rows,
        notes: vec![format!(
            "supernodes appear and persist as the dimension grows (non-decreasing in {grew}/{} \
             steps); the R*-tree never forms any by construction",
            supernode_counts.len() - 1
        )],
    }
}
