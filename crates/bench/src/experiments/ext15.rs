//! Extension experiment 15: the approximate tier's recall/throughput
//! frontier — declustered LSH probes versus the exact engine.
//!
//! The LSH backend (PR 10) hashes every row into `L` seeded SimHash
//! tables and spreads the buckets over the disk array with the paper's
//! coloring, so an `Approx` query reads a handful of pages per table
//! instead of walking the X-tree. This experiment sweeps the probe
//! budget on three datasets (clustered, correlated, Fourier shape
//! descriptors) and reports, per cell:
//!
//! * **recall@k** against the brute-force ground truth (mean over the
//!   query set) — what the probe budget buys;
//! * **modeled QPS**, `queries / Σ modeled_parallel` from the per-query
//!   trace — host-independent throughput under the shared disk model,
//!   directly comparable to the exact engine's cell;
//! * the LSH funnel (`lsh_probes`, `lsh_candidates`, empty-probe
//!   fraction) and the exact-kernel work (`dist_evals`, mean pages).
//!
//! The acceptance bar is asserted in-measure: at least one clustered
//! cell must reach recall@10 ≥ 0.9 at ≥ 2× the exact engine's modeled
//! QPS — the frontier point that justifies the tier.

use parsim_datagen::{ClusteredGenerator, CorrelatedGenerator, DataGenerator, FourierGenerator};
use parsim_geometry::Point;
use parsim_index::knn::brute_force_knn;
use parsim_parallel::{LshConfig, ParallelKnnEngine, QueryOptions};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

const DISKS: usize = 8;
const DIM: usize = 8;
const K: usize = 10;
const QUERIES: usize = 16;
const TABLES: usize = 4;
const HYPERPLANES: usize = 24;
const PROBE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// One (dataset, mode, probes) cell of the frontier.
pub struct FrontierRow {
    /// `"clustered"`, `"correlated"`, or `"fourier"`.
    pub dataset: &'static str,
    /// `"exact"` or `"approx"`.
    pub mode: &'static str,
    /// Probe budget per table (0 on exact rows).
    pub probes: usize,
    /// Mean recall@k against brute-force ground truth.
    pub recall: f64,
    /// Modeled throughput `queries / Σ modeled_parallel`, in queries/s.
    pub modeled_qps: f64,
    /// This cell's modeled QPS over the dataset's exact cell (1.0 there).
    pub qps_vs_exact: f64,
    /// Mean pages read per query (all disks).
    pub mean_pages: f64,
    /// f64 distance evaluations over the workload.
    pub dist_evals: u64,
    /// LSH buckets probed over the workload (0 on exact rows).
    pub lsh_probes: u64,
    /// Unique LSH candidates exactly re-ranked (0 on exact rows).
    pub lsh_candidates: u64,
    /// Share of probed buckets that held no rows — the recall proxy.
    pub empty_probe_frac: f64,
}

/// Everything `measure` learns: the frontier plus its fixed shape facts.
pub struct FrontierMeasurement {
    /// Points per dataset.
    pub points: usize,
    /// Queries per dataset.
    pub queries: usize,
    /// LSH tables fitted per engine.
    pub tables: usize,
    /// Hyperplanes (signature bits) per table.
    pub hyperplanes: usize,
    /// The sweep, grouped by dataset, exact row first.
    pub rows: Vec<FrontierRow>,
}

/// One draw per dataset, split into indexed points and held-out queries —
/// queries must come from the *same* distribution instance (the same
/// cluster centers, the same correlation line), or recall measures the
/// out-of-distribution case instead of the tier.
fn datasets(n: usize) -> Vec<(&'static str, Vec<Point>, Vec<Point>)> {
    let split = |mut pts: Vec<Point>| {
        let queries = pts.split_off(n);
        (pts, queries)
    };
    let (clustered, clustered_q) =
        split(ClusteredGenerator::new(DIM, 8, 0.05).generate(n + QUERIES, 151));
    let (correlated, correlated_q) =
        split(CorrelatedGenerator::new(DIM, 0.05).generate(n + QUERIES, 153));
    let (fourier, fourier_q) = split(FourierGenerator::new(DIM).generate(n + QUERIES, 155));
    vec![
        ("clustered", clustered, clustered_q),
        ("correlated", correlated, correlated_q),
        ("fourier", fourier, fourier_q),
    ]
}

struct CellStats {
    recall_sum: f64,
    modeled_secs: f64,
    pages: u64,
    dist_evals: u64,
    lsh_probes: u64,
    lsh_candidates: u64,
    lsh_empty: u64,
}

fn run_cell(
    engine: &ParallelKnnEngine,
    queries: &[Point],
    truth: &[(Point, u64)],
    opts: &QueryOptions,
) -> CellStats {
    let mut s = CellStats {
        recall_sum: 0.0,
        modeled_secs: 0.0,
        pages: 0,
        dist_evals: 0,
        lsh_probes: 0,
        lsh_candidates: 0,
        lsh_empty: 0,
    };
    for q in queries {
        let want: Vec<u64> = brute_force_knn(truth, q, K)
            .iter()
            .map(|n| n.item)
            .collect();
        let res = engine
            .query(q, opts)
            .expect("workload queries match the engine");
        let hits = res
            .neighbors
            .iter()
            .filter(|n| want.contains(&n.item))
            .count();
        s.recall_sum += hits as f64 / K as f64;
        let t = res.trace.as_ref().expect("traced");
        s.modeled_secs += t.modeled_parallel.as_secs_f64();
        s.pages += t.total_pages();
        s.dist_evals += t.dist_evals;
        s.lsh_probes += t.lsh_probes;
        s.lsh_candidates += t.lsh_candidates;
        s.lsh_empty += t.lsh_empty_probes;
    }
    s
}

/// Runs the frontier sweep and asserts the acceptance bar in-measure:
/// some clustered cell reaches recall@10 ≥ 0.9 at ≥ 2× exact QPS.
pub fn measure(scale: f64) -> FrontierMeasurement {
    let n = scaled(6_000, scale);
    let mut rows = Vec::new();
    for (dataset, pts, queries) in datasets(n) {
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .approx(LshConfig::new(157).tables(TABLES).hyperplanes(HYPERPLANES))
            .build(&pts)
            .expect("engine builds on experiment data");
        let truth: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        // The exact cell runs on the same engine: Exact mode ignores the
        // LSH tier entirely (bit-identical to an engine built without it,
        // pinned by `prop_lsh::exact_answers_ignore_the_lsh_tier`).
        let mut cells: Vec<(&'static str, usize, CellStats)> = vec![(
            "exact",
            0,
            run_cell(&engine, &queries, &truth, &QueryOptions::traced(K)),
        )];
        for probes in PROBE_WIDTHS {
            cells.push((
                "approx",
                probes,
                run_cell(
                    &engine,
                    &queries,
                    &truth,
                    &QueryOptions::approx(K, probes).with_trace(true),
                ),
            ));
        }
        let qps = |s: &CellStats| -> f64 {
            if s.modeled_secs > 0.0 {
                QUERIES as f64 / s.modeled_secs
            } else {
                0.0
            }
        };
        let exact_qps = qps(&cells[0].2);
        for (mode, probes, s) in cells {
            let modeled_qps = qps(&s);
            rows.push(FrontierRow {
                dataset,
                mode,
                probes,
                recall: s.recall_sum / QUERIES as f64,
                modeled_qps,
                qps_vs_exact: if exact_qps > 0.0 {
                    modeled_qps / exact_qps
                } else {
                    0.0
                },
                mean_pages: s.pages as f64 / QUERIES as f64,
                dist_evals: s.dist_evals,
                lsh_probes: s.lsh_probes,
                lsh_candidates: s.lsh_candidates,
                empty_probe_frac: if s.lsh_probes > 0 {
                    s.lsh_empty as f64 / s.lsh_probes as f64
                } else {
                    0.0
                },
            });
        }
    }
    // The acceptance bar, asserted where the numbers are made: the tier
    // must buy ≥ 2× modeled throughput at recall@10 ≥ 0.9 somewhere on
    // the clustered frontier. Only meaningful once the exact scan is
    // disk-bound: at tiny smoke scales the whole dataset is a couple of
    // pages per disk, and no candidate set can beat the one-page floor
    // by 2× — so the bar arms from 2 000 points up (the committed
    // BENCH_pr10.json runs at 6 000).
    if n < 2_000 {
        return FrontierMeasurement {
            points: n,
            queries: QUERIES,
            tables: TABLES,
            hyperplanes: HYPERPLANES,
            rows,
        };
    }
    let exact_qps = rows
        .iter()
        .find(|r| r.dataset == "clustered" && r.mode == "exact")
        .map(|r| r.modeled_qps)
        .expect("clustered exact cell exists");
    assert!(
        rows.iter().any(|r| r.dataset == "clustered"
            && r.mode == "approx"
            && r.recall >= 0.9
            && r.modeled_qps >= 2.0 * exact_qps),
        "no clustered cell reached recall@10 >= 0.9 at >= 2x exact QPS ({exact_qps:.1} qps): {:?}",
        rows.iter()
            .filter(|r| r.dataset == "clustered")
            .map(|r| (r.mode, r.probes, r.recall, r.modeled_qps))
            .collect::<Vec<_>>(),
    );
    FrontierMeasurement {
        points: n,
        queries: QUERIES,
        tables: TABLES,
        hyperplanes: HYPERPLANES,
        rows,
    }
}

/// Renders the measurement as the committed `BENCH_pr10.json` document
/// (plain formatting — the workspace carries no JSON serializer).
pub fn to_json(m: &FrontierMeasurement, scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pr10-declustered-lsh-approximate-tier\",\n");
    out.push_str("  \"experiment\": \"ext15\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!(
        "  \"disks\": {DISKS},\n  \"dim\": {DIM},\n  \"k\": {K},\n"
    ));
    out.push_str(&format!(
        "  \"tables\": {},\n  \"hyperplanes\": {},\n",
        m.tables, m.hyperplanes
    ));
    out.push_str(&format!(
        "  \"points_per_dataset\": {},\n  \"queries_per_dataset\": {},\n",
        m.points, m.queries
    ));
    out.push_str(
        "  \"note\": \"recall is mean recall@k against brute-force ground truth; modeled_qps is \
         queries divided by the summed modeled_parallel trace time under the shared disk model \
         (host-independent); qps_vs_exact normalizes by the dataset's exact cell; lsh_probes/\
         lsh_candidates/empty_probe_frac are the Approx funnel (zero on exact rows); the \
         acceptance bar recall>=0.9 at >=2x exact QPS on a clustered cell is asserted inside \
         measure()\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"mode\": \"{}\", \"probes\": {}, \"recall\": {:.4}, \
             \"modeled_qps\": {:.1}, \"qps_vs_exact\": {:.2}, \"mean_pages\": {:.1}, \
             \"dist_evals\": {}, \"lsh_probes\": {}, \"lsh_candidates\": {}, \
             \"empty_probe_frac\": {:.4}}}{}\n",
            r.dataset,
            r.mode,
            r.probes,
            r.recall,
            r.modeled_qps,
            r.qps_vs_exact,
            r.mean_pages,
            r.dist_evals,
            r.lsh_probes,
            r.lsh_candidates,
            r.empty_probe_frac,
            if i + 1 < m.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the recall/throughput frontier sweep and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let m = measure(scale);
    let best = m
        .rows
        .iter()
        .filter(|r| r.dataset == "clustered" && r.mode == "approx" && r.recall >= 0.9)
        .max_by(|a, b| a.qps_vs_exact.total_cmp(&b.qps_vs_exact));
    ExperimentReport {
        id: "ext15",
        title: "EXTENSION — approximate tier: recall@10 vs modeled-QPS frontier of the \
                declustered LSH backend against the exact engine (acceptance bar asserted \
                in-measure)",
        paper: "beyond the paper: seeded SimHash tables declustered with the paper's coloring \
                turn the disk array into an approximate tier — an Approx query probes a few \
                buckets per table in parallel instead of walking the X-tree, trading bounded \
                recall for modeled throughput under the same disk model",
        headers: vec![
            "dataset".into(),
            "mode".into(),
            "probes".into(),
            "recall@10".into(),
            "modeled qps".into(),
            "vs exact".into(),
            "mean pages".into(),
            "dist evals".into(),
            "lsh probes".into(),
            "candidates".into(),
            "empty frac".into(),
        ],
        rows: m
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.to_string(),
                    r.mode.to_string(),
                    if r.probes == 0 {
                        "-".to_string()
                    } else {
                        r.probes.to_string()
                    },
                    fmt(r.recall, 4),
                    fmt(r.modeled_qps, 1),
                    fmt(r.qps_vs_exact, 2),
                    fmt(r.mean_pages, 1),
                    r.dist_evals.to_string(),
                    r.lsh_probes.to_string(),
                    r.lsh_candidates.to_string(),
                    fmt(r.empty_probe_frac, 4),
                ]
            })
            .collect(),
        notes: vec![
            match best {
                Some(r) => format!(
                    "best clustered frontier point at recall >= 0.9: probes={} with recall \
                     {} at {}x the exact engine's modeled QPS",
                    r.probes,
                    fmt(r.recall, 4),
                    fmt(r.qps_vs_exact, 2),
                ),
                None => "no clustered cell cleared recall 0.9 (assert would have fired)".into(),
            },
            "modeled QPS uses the per-query modeled_parallel trace under the shared disk \
             model, so exact and approx cells are directly comparable and host-independent"
                .to_string(),
            "the empty-probe fraction is the online recall proxy: near 1 means the probe \
             budget found nothing and recall is likely suffering"
                .to_string(),
        ],
    }
}
