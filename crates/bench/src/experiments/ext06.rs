//! Extension experiment 6: modeled vs measured speed-up of the threaded
//! engine.
//!
//! The paper evaluates its parallel X-tree in a disk simulator, reporting
//! the *modeled* speed-up (sequential service time over the busiest
//! disk's service time). This repository actually executes the paper's
//! Var. 3 search with one thread per disk, so we can put the measured
//! wall-clock speed-up next to the model for the same workload, together
//! with the per-query trace counters ([`QueryTrace`]) the threaded engine
//! emits.
//!
//! On a single-core host the measured column degenerates to ≈1 (threads
//! serialize); the modeled column is hardware-independent.

use std::time::Instant;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::metrics::{run_sequential_workload, run_traced_workload, speedup};
use parsim_parallel::{EngineConfig, ParallelKnnEngine, QueryTrace, SequentialEngine};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

/// Runs the experiment for n = 1..16 disks at a fixed dimension.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 12;
    let k = 10;
    let n = scaled(15_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 61);
    let queries = UniformGenerator::new(dim).generate(16, 62);
    let config = EngineConfig::paper_defaults(dim);

    let seq = SequentialEngine::build(&data, config).expect("sequential engine builds");
    let seq_cost = run_sequential_workload(&seq, &queries, k).expect("sequential workload");
    let seq_wall = {
        let start = Instant::now();
        for q in &queries {
            seq.knn(q, k).expect("sequential query");
        }
        start.elapsed()
    };

    let mut rows = Vec::new();
    let mut best_modeled = 0.0f64;
    for disks in [2usize, 4, 8, 16] {
        let par = ParallelKnnEngine::builder(dim)
            .config(config)
            .disks(disks)
            .build(&data)
            .expect("parallel engine builds");
        let (par_cost, traces) = run_traced_workload(&par, &queries, k).expect("traced workload");
        let par_wall: f64 = traces
            .iter()
            .map(|t: &QueryTrace| t.wall_time.as_secs_f64())
            .sum();
        let modeled = speedup(&seq_cost, &par_cost);
        best_modeled = best_modeled.max(modeled);
        let measured = if par_wall > 0.0 {
            seq_wall.as_secs_f64() / par_wall
        } else {
            1.0
        };
        let avg_pruned: f64 = traces
            .iter()
            .map(|t| t.candidates_pruned as f64)
            .sum::<f64>()
            / traces.len() as f64;
        rows.push(vec![
            par.disks().to_string(),
            fmt(par_cost.avg_max_reads, 1),
            fmt(par_cost.avg_total_reads, 1),
            fmt(modeled, 2),
            fmt(measured, 2),
            fmt(avg_pruned, 1),
        ]);
    }

    let host_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    ExperimentReport {
        id: "ext6",
        title: "EXTENSION — modeled vs measured speed-up of the threaded Var. 3 engine",
        paper: "the paper reports modeled speed-ups from its disk simulator; here the same \
                workload also runs with one real thread per disk and a shared pruning bound, \
                so the wall-clock speed-up can be compared with the model",
        headers: vec![
            "disks".into(),
            "avg busiest-disk pages".into(),
            "avg total pages".into(),
            "modeled speed-up".into(),
            "measured speed-up".into(),
            "avg subtrees pruned".into(),
        ],
        rows,
        notes: vec![
            format!(
                "host exposes {host_threads} thread(s); the measured column only reflects true \
                 parallel execution when the host has at least as many cores as disks"
            ),
            format!("best modeled speed-up over the sweep: {best_modeled:.2}×"),
        ],
    }
}
