//! Extension experiment 1 (the paper's future work): throughput-oriented
//! evaluation of the declustering methods.
//!
//! For a *single* query the near-optimal coloring minimizes the pages on
//! the busiest disk. For a **saturated batch** of concurrent queries the
//! disks pipeline across queries, so aggregate balance and total page
//! count decide the sustained queries/second. This experiment quantifies
//! that trade-off — exactly the question the paper defers to future work.

use std::sync::Arc;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_decluster::quantile::median_splits;
use parsim_decluster::StripedNearOptimal;
use parsim_parallel::throughput::run_batch;
use parsim_parallel::{DeclusteredXTree, EngineConfig};

use crate::report::{fmt, ExperimentReport};

use super::common::{build_declustered, scaled, uniform_queries, Method};

/// Runs the experiment: batch of 10-NN queries, 16 disks, by method.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 15;
    let n = scaled(50_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 181);
    let queries = uniform_queries(dim, 24, 1801);
    let config = EngineConfig::paper_defaults(dim);

    let mut rows = Vec::new();
    let mut best: Option<(String, f64)> = None;
    for method in [
        Method::RoundRobin,
        Method::DiskModulo,
        Method::Hilbert,
        Method::NearOptimal,
    ] {
        let engine = build_declustered(method, &data, 16, config);
        let report = run_batch(&engine, &queries, 10).expect("batch runs");
        let name = format!("{method:?}");
        if best
            .as_ref()
            .map(|(_, q)| report.throughput_qps > *q)
            .unwrap_or(true)
        {
            best = Some((name.clone(), report.throughput_qps));
        }
        rows.push(vec![
            name,
            fmt(report.throughput_qps, 2),
            fmt(report.unloaded_latency_ms, 1),
            report.total_pages.to_string(),
            fmt(report.imbalance(), 2),
        ]);
    }
    // The striped extension: full colors (16 for d=15) times stripe 1 is
    // the plain near-optimal; report it at the same 16-disk budget for a
    // fair row, plus a 32-disk row showing that striping scales past the
    // color limit.
    let striped = StripedNearOptimal::new(median_splits(&data).expect("non-empty"), 2)
        .expect("striped builds");
    let engine = DeclusteredXTree::build(&data, Arc::new(striped), config).expect("engine builds");
    let report = run_batch(&engine, &queries, 10).expect("batch runs");
    if best
        .as_ref()
        .map(|(_, q)| report.throughput_qps > *q)
        .unwrap_or(true)
    {
        best = Some(("NearOptimalStriped".into(), report.throughput_qps));
    }
    rows.push(vec![
        "NearOptimalStriped (32 disks)".into(),
        fmt(report.throughput_qps, 2),
        fmt(report.unloaded_latency_ms, 1),
        report.total_pages.to_string(),
        fmt(report.imbalance(), 2),
    ]);

    let (best_name, best_qps) = best.expect("at least one method");
    ExperimentReport {
        id: "ext1",
        title: "EXTENSION — throughput-oriented declustering comparison",
        paper: "deferred to future work: 'declustering techniques which optimize the throughput instead of the search time for a single query'",
        headers: vec![
            "method".into(),
            "throughput (q/s)".into(),
            "unloaded latency (ms)".into(),
            "total pages".into(),
            "batch imbalance".into(),
        ],
        rows,
        notes: vec![format!(
            "best sustained throughput: {best_name} at {best_qps:.2} q/s — batch pipelining \
             rewards aggregate balance and low total work, complementing the per-query metric"
        )],
    }
}
