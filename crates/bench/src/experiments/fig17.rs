//! Figure 17: total search time of the near-optimal technique vs the
//! Hilbert curve on text descriptors.

use parsim_datagen::{DataGenerator, TextDescriptorGenerator};
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{build_declustered, data_queries, declustered_cost, scaled, Method};

/// Runs the experiment on 15-d text descriptors, 16 disks, NN and 10-NN.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 15;
    let disks = 16;
    let n = scaled(50_000, scale);
    let gen = TextDescriptorGenerator::new(dim);
    let data = gen.generate(n, 171);
    let queries = data_queries(&gen, n, 15, 171);
    let config = EngineConfig::paper_defaults(dim);

    let ours = build_declustered(Method::NearOptimal, &data, disks, config);
    let hil = build_declustered(Method::Hilbert, &data, disks, config);

    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for k in [1usize, 10] {
        let oc = declustered_cost(&ours, &queries, k);
        let hc = declustered_cost(&hil, &queries, k);
        let imp = hc.avg_parallel_ms / oc.avg_parallel_ms;
        improvements.push(imp);
        rows.push(vec![
            format!("{k}-NN"),
            fmt(oc.avg_parallel_ms, 1),
            fmt(hc.avg_parallel_ms, 1),
            fmt(imp, 2),
        ]);
    }
    ExperimentReport {
        id: "fig17",
        title: "total search time on text descriptors: ours vs Hilbert",
        paper: "NN: 77 ms vs 168 ms (improvement 2.18); 10-NN improvement grows to 2.93",
        headers: vec![
            "query".into(),
            "ours (ms)".into(),
            "hilbert (ms)".into(),
            "improvement".into(),
        ],
        rows,
        notes: vec![format!(
            "improvement {:.2} (NN) and {:.2} (10-NN) — ours wins on real text features",
            improvements[0], improvements[1]
        )],
    }
}
