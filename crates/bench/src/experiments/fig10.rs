//! Figure 10 / Lemma 6: the number of colors required by the coloring
//! function is a staircase between d+1 and 2d.

use parsim_decluster::near_optimal::{col, color_lower_bound, color_upper_bound, colors_required};

use crate::report::ExperimentReport;

/// Runs the experiment: for each dimension, the staircase value, its
/// bounds, and (for small d) an exhaustive count of the colors actually
/// produced by `col`.
pub fn run(_scale: f64) -> ExperimentReport {
    let mut rows = Vec::new();
    for dim in 2..=32usize {
        let required = colors_required(dim);
        let observed = if dim <= 16 {
            let mut seen = vec![false; required as usize];
            for b in 0..(1u64 << dim) {
                seen[col(b, dim) as usize] = true;
            }
            seen.iter().filter(|&&s| s).count().to_string()
        } else {
            "(constructive proof)".to_string()
        };
        assert!(required >= color_lower_bound(dim));
        assert!(required <= color_upper_bound(dim));
        rows.push(vec![
            dim.to_string(),
            color_lower_bound(dim).to_string(),
            required.to_string(),
            color_upper_bound(dim).to_string(),
            observed,
        ]);
    }
    ExperimentReport {
        id: "fig10",
        title: "number of colors required by col (the staircase of Lemma 6)",
        paper: "colors(d) = next power of two >= d+1; a staircase between the lower bound d+1 and the upper bound 2d, optimal up to rounding",
        headers: vec![
            "dim".into(),
            "lower d+1".into(),
            "col colors".into(),
            "upper 2d".into(),
            "observed".into(),
        ],
        rows,
        notes: vec![
            "for d <= 16 the observed color count (exhaustive over all 2^d buckets) equals the staircase"
                .into(),
        ],
    }
}
