//! Extension experiment 3: partial-match queries — the workload the
//! classical declusterings were designed for.
//!
//! Section 1 of the paper: "the known declustering methods such as the
//! Disc Modulo, FX, and Hilbert have been designed to support different
//! query types (range queries and partial match queries). Therefore …
//! those techniques do not allow an optimal declustering for
//! nearest-neighbor queries." This experiment closes the loop: on a
//! partial-match workload (a window that pins `s` of the `d` dimensions
//! and leaves the rest unconstrained) the classical methods are far more
//! competitive than on NN queries — confirming that the paper's advantage
//! is specific to the neighborhood structure of NN search, not a uniform
//! superiority.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::HyperRect;
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{build_declustered, scaled, Method};

/// Runs the experiment: partial-match windows pinning 3 of 10 dimensions,
/// 16 disks, comparing per-query busiest-disk pages by method.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 10;
    let disks = 16;
    let n = scaled(60_000, scale);
    let pinned = 3;
    let data = UniformGenerator::new(dim).generate(n, 211);
    let config = EngineConfig::paper_defaults(dim);

    // Partial-match windows: `pinned` random dimensions constrained to a
    // narrow band, the rest unconstrained.
    let anchors = UniformGenerator::new(dim).generate(12, 2101);
    let windows: Vec<HyperRect> = anchors
        .iter()
        .enumerate()
        .map(|(qi, anchor)| {
            let mut lo = vec![0.0; dim];
            let mut hi = vec![1.0; dim];
            for j in 0..pinned {
                let axis = (qi + j * 4) % dim;
                let c = anchor[axis].clamp(0.05, 0.95);
                lo[axis] = c - 0.05;
                hi[axis] = c + 0.05;
            }
            HyperRect::new(lo, hi).expect("ordered bounds")
        })
        .collect();

    let mut rows = Vec::new();
    let mut nn_max = Vec::new();
    let mut pm_max = Vec::new();
    let queries = UniformGenerator::new(dim).generate(12, 2102);
    for method in [
        Method::DiskModulo,
        Method::Fx,
        Method::Hilbert,
        Method::NearOptimal,
    ] {
        let engine = build_declustered(method, &data, disks, config);
        // Partial-match cost.
        let mut pm = 0u64;
        let mut pm_tot = 0u64;
        for w in &windows {
            let (_, cost) = engine.window_query(w).expect("window runs");
            pm += cost.max_reads;
            pm_tot += cost.total_reads;
        }
        // NN cost for contrast.
        let mut nn = 0u64;
        for q in &queries {
            let (_, cost) = engine.knn(q, 10).expect("knn runs");
            nn += cost.max_reads;
        }
        nn_max.push(nn as f64);
        pm_max.push(pm as f64);
        rows.push(vec![
            format!("{method:?}"),
            fmt(pm as f64 / windows.len() as f64, 1),
            fmt(pm_tot as f64 / windows.len() as f64, 1),
            fmt(nn as f64 / queries.len() as f64, 1),
        ]);
    }
    // Ratios vs near-optimal (last row).
    let pm_ratio_hilbert = pm_max[2] / pm_max[3];
    let nn_ratio_hilbert = nn_max[2] / nn_max[3];
    ExperimentReport {
        id: "ext3",
        title: "EXTENSION — partial-match queries: the classical methods' home turf",
        paper: "Section 1: DM/FX/Hilbert were designed for range and partial-match queries, not NN — so their NN deficit should shrink (or vanish) on partial-match workloads",
        headers: vec![
            "method".into(),
            "PM pages busiest disk".into(),
            "PM pages total".into(),
            "NN pages busiest disk".into(),
        ],
        rows,
        notes: vec![format!(
            "Hilbert/near-optimal busiest-disk ratio: {pm_ratio_hilbert:.2} on partial match vs \
             {nn_ratio_hilbert:.2} on NN — the near-optimal advantage is specific to the NN \
             neighborhood structure, exactly as the paper frames it"
        )],
    }
}
