//! Extension experiment 10: the engine-wide metrics registry replaying a
//! seeded workload, cross-checked against the per-query traces.
//!
//! The registry ([`parsim_parallel::EngineMetrics`]) accumulates counts
//! and modeled durations as queries execute; every [`QueryTrace`] records
//! the same events per query. Replaying one seeded clustered workload —
//! healthy and with a disk failed over to its replicas, in both execution
//! modes — this experiment tabulates each registry total next to the sum
//! over the traces. Every row must agree exactly; the `metrics_parity`
//! test suite enforces the same invariant, this experiment makes it
//! visible in a report.

use parsim_datagen::{ClusteredGenerator, DataGenerator};
use parsim_parallel::{ExecutionMode, ParallelKnnEngine, QueryTrace};

use crate::report::ExperimentReport;

use super::common::scaled;

/// One cross-checked total: a registry counter against the trace sum.
pub struct ParityRow {
    /// `"scoped"` or `"pooled"`.
    pub mode: &'static str,
    /// `"healthy"` or `"degraded"`.
    pub condition: &'static str,
    /// The registry metric name.
    pub metric: &'static str,
    /// What the registry accumulated over the workload.
    pub registry: u64,
    /// The same quantity summed over the per-query traces.
    pub traced: u64,
}

impl ParityRow {
    fn matches(&self) -> bool {
        self.registry == self.traced
    }
}

fn trace_sums(traces: &[QueryTrace]) -> [(u64, &'static str); 6] {
    let pages: u64 = traces
        .iter()
        .map(|t| t.per_disk_pages.iter().sum::<u64>())
        .sum();
    let evals: u64 = traces.iter().map(|t| t.dist_evals).sum();
    let saved: u64 = traces.iter().map(|t| t.dist_evals_saved).sum();
    let hits: u64 = traces.iter().map(|t| t.cache_hits).sum();
    let degraded = traces.iter().filter(|t| t.degraded.is_some()).count() as u64;
    let replica: u64 = traces
        .iter()
        .filter_map(|t| t.degraded.as_ref())
        .map(|d| d.replica_pages)
        .sum();
    [
        (pages, "parsim_disk_pages_total"),
        (evals, "parsim_dist_evals_total"),
        (saved, "parsim_dist_evals_saved_total"),
        (hits, "parsim_query_cache_hits_total"),
        (degraded, "parsim_queries_degraded_total"),
        (replica, "parsim_replica_pages_total"),
    ]
}

/// Replays the seeded workload in both modes and conditions and returns
/// one row per cross-checked counter.
pub fn measure(scale: f64) -> Vec<ParityRow> {
    let dim = 8;
    let k = 10;
    let n = scaled(4_000, scale);
    let data = ClusteredGenerator::new(dim, 8, 0.05).generate(n, 71);
    let queries = ClusteredGenerator::new(dim, 8, 0.05).generate(32, 72);
    let mut rows = Vec::new();

    for mode in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let mode_name = match mode {
            ExecutionMode::Scoped => "scoped",
            ExecutionMode::Pooled => "pooled",
        };
        for condition in ["healthy", "degraded"] {
            let engine = ParallelKnnEngine::builder(dim)
                .disks(8)
                .replicas(1)
                .page_cache(256)
                .execution(mode)
                .metrics(true)
                .build(&data)
                .expect("engine builds");
            if condition == "degraded" {
                let failed = engine
                    .load_distribution()
                    .iter()
                    .position(|&l| l > 0)
                    .expect("some disk holds data");
                engine.faults().fail(failed);
            }
            let traces: Vec<QueryTrace> = engine
                .knn_batch(&queries, k)
                .expect("workload succeeds")
                .into_iter()
                .map(|(_, t)| t)
                .collect();
            let snapshot = engine.metrics().expect("metrics enabled").snapshot();
            for (traced, metric) in trace_sums(&traces) {
                rows.push(ParityRow {
                    mode: mode_name,
                    condition,
                    metric,
                    registry: snapshot.counter_total(metric),
                    traced,
                });
            }
        }
    }
    rows
}

/// Runs the registry/trace cross-check and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let rows = measure(scale);
    let mismatches = rows.iter().filter(|r| !r.matches()).count();
    ExperimentReport {
        id: "ext10",
        title: "EXTENSION — metrics registry totals vs summed query traces",
        paper: "beyond the paper: an engine-wide observability layer (atomic counters, gauges, \
                log-linear histograms) records the same events the per-query traces do; on a \
                seeded workload every cumulative total equals the sum over the traces, healthy \
                and degraded, in both execution modes",
        headers: vec![
            "mode".into(),
            "condition".into(),
            "metric".into(),
            "registry".into(),
            "trace sum".into(),
            "match".into(),
        ],
        rows: rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.condition.to_string(),
                    r.metric.to_string(),
                    r.registry.to_string(),
                    r.traced.to_string(),
                    if r.matches() { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect(),
        notes: vec![
            "the registry records counts and modeled durations only (never wall-clock), so \
             replaying the seeded workload reproduces the snapshot byte-for-byte"
                .to_string(),
            format!(
                "mismatching rows: {mismatches} (must be 0; enforced by the metrics_parity suite)"
            ),
        ],
    }
}
