//! Figure 13: speed-up of the near-optimal technique vs the Hilbert curve
//! on Fourier (CAD contour) data, for NN and 10-NN queries.

use parsim_datagen::{DataGenerator, FourierGenerator};
use parsim_parallel::metrics::speedup;
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{
    build_declustered, data_queries, declustered_cost, scaled, Method, DISK_SWEEP,
};

/// Runs the experiment on 16-d Fourier descriptors of synthetic CAD parts.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 16;
    let n = scaled(50_000, scale);
    let gen = FourierGenerator::new(dim);
    let data = gen.generate(n, 131);
    let queries = data_queries(&gen, n, 15, 131);
    let config = EngineConfig::paper_defaults(dim);
    // Both methods share the identical bucket-grouped global tree; the
    // baseline is that tree on one disk.
    let baseline = build_declustered(Method::NearOptimal, &data, 1, config);
    let seq1 = declustered_cost(&baseline, &queries, 1);
    let seq10 = declustered_cost(&baseline, &queries, 10);

    let mut rows = Vec::new();
    let mut last = (0.0, 0.0, 0.0, 0.0);
    for disks in DISK_SWEEP {
        let ours = build_declustered(Method::NearOptimal, &data, disks, config);
        let hil = build_declustered(Method::Hilbert, &data, disks, config);
        let ours1 = speedup(&seq1, &declustered_cost(&ours, &queries, 1));
        let hil1 = speedup(&seq1, &declustered_cost(&hil, &queries, 1));
        let ours10 = speedup(&seq10, &declustered_cost(&ours, &queries, 10));
        let hil10 = speedup(&seq10, &declustered_cost(&hil, &queries, 10));
        last = (ours1, hil1, ours10, hil10);
        rows.push(vec![
            disks.to_string(),
            fmt(ours1, 2),
            fmt(hil1, 2),
            fmt(ours10, 2),
            fmt(hil10, 2),
        ]);
    }
    ExperimentReport {
        id: "fig13",
        title: "speed-up: near-optimal vs Hilbert on Fourier data (NN / 10-NN)",
        paper: "ours climbs near-linearly while Hilbert stalls (it reaches only ~9% of the optimal speed-up at 16 disks)",
        headers: vec![
            "disks".into(),
            "ours NN".into(),
            "hilbert NN".into(),
            "ours 10-NN".into(),
            "hilbert 10-NN".into(),
        ],
        rows,
        notes: vec![format!(
            "at 16 disks: ours {:.1}/{:.1} vs hilbert {:.1}/{:.1} (NN/10-NN)",
            last.0, last.2, last.1, last.3
        )],
    }
}
