//! Extension experiment 5: the Section-2 survey quantified — every
//! sequential partitioning structure degenerates with the dimension.
//!
//! Section 2 reviews Welch's bucketing grid \[Wel 71\] ("not efficient for
//! high-dimensional data"), the FBF k-d-tree \[FBF 77\], and the
//! R-tree-family indexes, and concludes with \[BBKK 97\] that
//! high-dimensional NN search is inherently expensive — "we believe that
//! the use of parallelism is crucial". This experiment runs one 10-NN
//! workload against each structure across dimensions and reports the
//! fraction of partitions (cells / buckets / leaf pages) each visits.

use std::sync::Arc;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::{GridFile, KdTree, KnnAlgorithm, SpatialTree, TreeParams, TreeVariant, TvTree};
use parsim_storage::SimDisk;

use crate::report::{fmt, ExperimentReport};

use super::common::{scaled, uniform_queries};

/// Runs the experiment over d = 2..16 with a fixed database size.
pub fn run(scale: f64) -> ExperimentReport {
    let n = scaled(20_000, scale);
    let k = 10;
    let queries_n = 10;
    let mut rows = Vec::new();
    let mut xtree_fracs = Vec::new();
    for dim in [2usize, 4, 8, 12, 16] {
        let items: Vec<(Point, u64)> = UniformGenerator::new(dim)
            .generate(n, 231)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let queries = uniform_queries(dim, queries_n, 2301);

        // Welch grid: the finest grid the cell budget allows (≥ 2/axis).
        let side = (2usize..=64)
            .rev()
            .find(|s| (*s as u128).pow(dim as u32) <= parsim_index::gridfile::MAX_CELLS as u128)
            .unwrap_or(2);
        let grid_disk = Arc::new(SimDisk::new(0));
        let grid = GridFile::build(items.clone(), side)
            .expect("side chosen within budget")
            .with_disk(Arc::clone(&grid_disk));
        for q in &queries {
            grid.knn(q, k);
        }
        let grid_frac = grid_disk.read_count() as f64 / queries_n as f64 / grid.cell_count() as f64;

        // FBF k-d-tree, 20-point buckets.
        let kd_disk = Arc::new(SimDisk::new(0));
        let kd = KdTree::build(items.clone(), 20).with_disk(Arc::clone(&kd_disk));
        for q in &queries {
            kd.knn(q, k);
        }
        let kd_frac = kd_disk.read_count() as f64 / queries_n as f64 / kd.bucket_count() as f64;

        // TV-style telescope tree, alpha = d/4 active dimensions.
        let tv_disk = Arc::new(SimDisk::new(0));
        let tv = TvTree::build(items.clone(), (dim / 4).max(1), 20).with_disk(Arc::clone(&tv_disk));
        for q in &queries {
            tv.knn(q, k);
        }
        let tv_nodes = (n as f64 / 20.0).max(1.0); // ~ leaf count
        let tv_frac = tv_disk.read_count() as f64 / queries_n as f64 / tv_nodes;

        // X-tree (leaf pages only, directory excluded as elsewhere).
        let x_disk = Arc::new(SimDisk::new(0));
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).expect("valid dim");
        let xtree = SpatialTree::bulk_load(params, items)
            .expect("bulk load")
            .with_disk(Arc::clone(&x_disk));
        let leaves = xtree.stats().leaves as f64;
        let inner = xtree.stats().inner as f64;
        for q in &queries {
            xtree.knn(q, k, KnnAlgorithm::Rkv);
        }
        let x_frac = ((x_disk.read_count() as f64 / queries_n as f64) - inner).max(0.0) / leaves;
        xtree_fracs.push(x_frac);

        rows.push(vec![
            dim.to_string(),
            format!("{side}^{dim}"),
            fmt(grid_frac * 100.0, 2),
            fmt(kd_frac * 100.0, 1),
            fmt((tv_frac * 100.0).min(100.0), 1),
            fmt(x_frac * 100.0, 1),
        ]);
    }
    ExperimentReport {
        id: "ext5",
        title: "EXTENSION — sequential NN structures degenerate with dimension (Section 2)",
        paper: "Welch's grid is 'not efficient for high-dimensional data'; the k-d-tree and even the X-tree read ever-larger fractions of their partitions; parallelism is the way out",
        headers: vec![
            "dim".into(),
            "grid".into(),
            "grid cells visited (%)".into(),
            "kd buckets visited (%)".into(),
            "tv nodes visited (%)".into(),
            "x-tree leaves visited (%)".into(),
        ],
        rows,
        notes: vec![format!(
            "the X-tree's visited-leaf fraction climbs from {:.1}% (d=2) to {:.1}% (d=16): no \
             sequential structure escapes, motivating the paper's parallel design",
            xtree_fracs.first().copied().unwrap_or(0.0) * 100.0,
            xtree_fracs.last().copied().unwrap_or(0.0) * 100.0
        )],
    }
}
