//! Figure 16: the effect of recursive declustering on highly clustered
//! (correlated) data.
//!
//! The paper's data here are "a set of variants of CAD-parts and …
//! therefore highly clustered"; the failure mode it targets is data whose
//! 1-d quantiles look balanced while the joint distribution occupies only
//! a few quadrants (Section 4.3). We reproduce that regime with strongly
//! correlated cluster data: per-dimension medians cannot spread it, so
//! the flat coloring loads few disks and the recursive extension must
//! re-decluster the overloaded buckets.

use std::sync::Arc;

use parsim_datagen::{CorrelatedGenerator, DataGenerator};
use parsim_decluster::quantile::median_splits;
use parsim_decluster::recursive::{RecursiveConfig, RecursiveDeclusterer};
use parsim_decluster::{BucketBased, NearOptimal};
use parsim_parallel::{DeclusteredXTree, EngineConfig};

use crate::report::{fmt, ExperimentReport};

use super::common::{data_queries, declustered_cost, scaled};

/// Runs the experiment: flat near-optimal declustering vs the
/// recursive-declustering extension on correlated 15-d data, 16 disks.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 15;
    let disks = 16;
    let n = scaled(20_000, scale);
    let gen = CorrelatedGenerator::new(dim, 0.05);
    let data = gen.generate(n, 161);
    let queries = data_queries(&gen, n, 15, 161);
    let config = EngineConfig::paper_defaults(dim);

    // Without the extension: flat near-optimal declustering with median
    // splits (which alone cannot fix correlated data). Built through the
    // same by-disk grouping path as the recursive engine so the two trees
    // are directly comparable.
    let flat_method = BucketBased::new(
        NearOptimal::new(dim, disks.min(16)).expect("valid dimension"),
        median_splits(&data).expect("non-empty data"),
    );
    let flat =
        DeclusteredXTree::build(&data, Arc::new(flat_method), config).expect("flat engine builds");
    let flat_cost = declustered_cost(&flat, &queries, 1);

    // With the extension: recursive declustering of overloaded buckets.
    let recursive = RecursiveDeclusterer::build(&data, disks, RecursiveConfig::default())
        .expect("recursive declustering builds");
    let levels = recursive.levels();
    let rec_engine =
        DeclusteredXTree::build(&data, Arc::new(recursive), config).expect("engine builds");
    let rec_cost = declustered_cost(&rec_engine, &queries, 1);

    let improvement = flat_cost.avg_parallel_ms / rec_cost.avg_parallel_ms;
    let rows = vec![
        vec![
            "near-optimal (flat)".into(),
            fmt(flat_cost.avg_parallel_ms, 1),
            fmt(flat_cost.avg_max_reads, 1),
            format!("{:?}", flat_cost.per_disk_reads),
        ],
        vec![
            format!("with recursive declustering ({} levels)", levels - 1),
            fmt(rec_cost.avg_parallel_ms, 1),
            fmt(rec_cost.avg_max_reads, 1),
            format!("{:?}", rec_cost.per_disk_reads),
        ],
    ];
    ExperimentReport {
        id: "fig16",
        title: "effect of recursive declustering on highly clustered data",
        paper: "search time drops from 157.6 ms to 40.7 ms (improvement 3.9x) with one recursive declustering step",
        headers: vec![
            "technique".into(),
            "NN time (ms)".into(),
            "pages busiest disk".into(),
            "pages per disk (workload)".into(),
        ],
        rows,
        notes: vec![format!(
            "improvement factor {improvement:.2}x with {} refinement level(s)",
            levels - 1
        )],
    }
}
