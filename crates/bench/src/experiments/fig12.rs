//! Figure 12: speed-up of the near-optimal technique on uniformly
//! distributed data.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::metrics::speedup;
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{
    build_declustered, declustered_cost, scaled, uniform_queries, Method, DISK_SWEEP,
};

/// Runs the experiment: NN and 10-NN speed-up of the near-optimal
/// declustering vs the sequential X-tree, 15-d uniform data.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 15;
    let n = scaled(50_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 121);
    let queries = uniform_queries(dim, 15, 1201);
    let config = EngineConfig::paper_defaults(dim);
    // Baseline: the identical bucket-grouped X-tree confined to one disk.
    let baseline = build_declustered(Method::NearOptimal, &data, 1, config);
    let seq1 = declustered_cost(&baseline, &queries, 1);
    let seq10 = declustered_cost(&baseline, &queries, 10);

    let mut rows = Vec::new();
    let mut last = (0.0, 0.0);
    for disks in DISK_SWEEP {
        let engine = build_declustered(Method::NearOptimal, &data, disks, config);
        let s1 = speedup(&seq1, &declustered_cost(&engine, &queries, 1));
        let s10 = speedup(&seq10, &declustered_cost(&engine, &queries, 10));
        last = (s1, s10);
        rows.push(vec![
            disks.to_string(),
            engine.disks().to_string(),
            fmt(s1, 2),
            fmt(s10, 2),
        ]);
    }
    ExperimentReport {
        id: "fig12",
        title: "speed-up of the near-optimal technique on uniform data",
        paper: "nearly linear speed-up; approximately 8 (NN) and 12 (10-NN) at 16 disks",
        headers: vec![
            "disks requested".into(),
            "disks used".into(),
            "NN speed-up".into(),
            "10-NN speed-up".into(),
        ],
        rows,
        notes: vec![format!(
            "at 16 disks: NN speed-up {:.1}, 10-NN speed-up {:.1}",
            last.0, last.1
        )],
    }
}
