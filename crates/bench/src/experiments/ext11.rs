//! Extension experiment 11: open-loop serve-layer sweep — offered load vs
//! modeled tail latency, with and without cross-query page coalescing.
//!
//! The serve layer (PR 6) admits thousands of concurrent submissions into
//! bounded per-disk queues; when several in-flight queries of one wave
//! need the same leaf page, the first read serves them all. Coalescing
//! never changes *what* a query computes — answers and logical page
//! traces are bit-identical to the plain pooled pipeline (asserted here
//! on every query) — it only shrinks the *physical* read stream each disk
//! must serve, raising the saturation throughput.
//!
//! The sweep measures that effect open-loop: whole waves (the serve
//! layer's submission unit) arrive on a fixed schedule regardless of
//! completions (no coordinated omission), each query queues its per-disk
//! *physical* service demand behind the previous work, a coalesced-only
//! query waits for the backlog carrying the read it rides, and a query's
//! latency is the slowest touched disk's completion minus the arrival
//! time. Latencies feed a
//! `parsim_obs` log-bucketed histogram and the reported p50/p99/p999 are
//! read back off it exactly as a production dashboard would. All columns
//! are host-independent: service times come from the paper's disk model
//! over live engine traces, never from wall clocks.

use parsim_datagen::{ClusteredGenerator, DataGenerator};
use parsim_geometry::Point;
use parsim_obs::{Histogram, HistogramConfig};
use parsim_parallel::{
    AdmissionConfig, ExecutionMode, ParallelKnnEngine, QueryOptions, QueryTrace,
};
use parsim_storage::DiskModel;

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

const DIM: usize = 8;
const DISKS: usize = 8;
const K: usize = 10;
const WAVES: usize = 16;
const WAVE_SIZE: usize = 6;
/// Open-loop arrivals per (mode, load) cell: the wave trace stream is
/// replayed cyclically until this many queries have arrived, so the p999
/// rests on thousands of samples instead of one batch.
const ARRIVALS: usize = 4_000;
/// Offered load as a multiple of the *uncoalesced* saturation throughput.
const LOADS: [f64; 5] = [0.5, 0.8, 0.95, 1.1, 1.3];

/// One open-loop cell: a (mode, offered load) pair.
pub struct ServeRow {
    /// `"plain"` (pooled, no coalescing) or `"coalesced"`.
    pub mode: &'static str,
    /// Offered load as a multiple of the uncoalesced saturation qps.
    pub offered: f64,
    /// Offered arrival rate, queries per modeled second.
    pub offered_qps: f64,
    /// Modeled median latency, milliseconds (histogram quantile).
    pub p50_ms: f64,
    /// Modeled 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Modeled 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
}

/// Everything `measure` learns: the sweep plus the reconciliation facts
/// the JSON document and the report notes both cite.
pub struct ServeMeasurement {
    /// Queries in the live trace batch (`WAVES * WAVE_SIZE`).
    pub queries: usize,
    /// Total coalesced reads summed over every per-query trace.
    pub trace_coalesced: u64,
    /// `parsim_coalesced_reads_total` from the engine's metrics registry —
    /// must equal [`ServeMeasurement::trace_coalesced`] exactly.
    pub registry_coalesced: u64,
    /// Logical pages the batch requested (identical in both modes).
    pub logical_pages: u64,
    /// Saturation throughput without coalescing, queries per second.
    pub sat_plain_qps: f64,
    /// Saturation throughput with coalescing, queries per second.
    pub sat_coalesced_qps: f64,
    /// The open-loop sweep, plain and coalesced interleaved per load.
    pub rows: Vec<ServeRow>,
}

/// A wave of near-identical queries: the base point plus small
/// deterministic perturbations, so wave members genuinely share leaf
/// pages (the workload coalescing is built for).
fn wave_queries(base: &Point) -> Vec<Point> {
    (0..WAVE_SIZE)
        .map(|j| {
            let coords = base
                .coords()
                .iter()
                .enumerate()
                .map(|(c, &v)| {
                    let sign = if (j + c) % 2 == 0 { 1.0 } else { -1.0 };
                    (v + sign * j as f64 * 1e-4).clamp(0.0, 1.0)
                })
                .collect();
            Point::from_vec(coords)
        })
        .collect()
}

/// Per-disk demand of one query: `(physical_seconds, rides)` where
/// `physical_seconds` is the modeled service time of the reads the query
/// pays for itself (logical pages minus coalesced-away reads) and `rides`
/// marks disks the query touches only through coalesced reads — it adds
/// no work there but must still wait for the backlog carrying the read
/// it rides.
fn service_seconds(trace: &QueryTrace, model: &DiskModel) -> Vec<(f64, bool)> {
    trace
        .per_disk_pages
        .iter()
        .zip(&trace.per_disk_coalesced)
        .map(|(&pages, &coal)| {
            let physical = model.service_time(pages - coal).as_secs_f64();
            (physical, pages > 0 && pages == coal)
        })
        .collect()
}

/// Replays the per-wave service demands open-loop at `rate_qps` (queries
/// per second; a whole wave of [`WAVE_SIZE`] queries arrives together,
/// matching the serve layer's submission unit) and returns (p50, p99,
/// p999) per-query latency in milliseconds, read back off a `parsim_obs`
/// log-bucketed histogram.
fn open_loop(waves: &[Vec<Vec<(f64, bool)>>], rate_qps: f64) -> (f64, f64, f64) {
    let hist = Histogram::new(HistogramConfig::latency_micros());
    let mut free = [0.0f64; DISKS];
    let arrivals = ARRIVALS / WAVE_SIZE;
    for i in 0..arrivals {
        let arrive = (i * WAVE_SIZE) as f64 / rate_qps;
        for demand in &waves[i % waves.len()] {
            let mut done = arrive;
            for (d, &(s, rides)) in demand.iter().enumerate() {
                if s > 0.0 {
                    free[d] = free[d].max(arrive) + s;
                    done = done.max(free[d]);
                } else if rides {
                    // Coalesced-only: no work added, but the query
                    // completes no earlier than the backlog carrying the
                    // read it rides (its wave's carrier was just queued).
                    done = done.max(free[d]);
                }
            }
            hist.record(((done - arrive) * 1e6) as u64);
        }
    }
    let snap = hist.snapshot();
    let ms = |q: f64| snap.quantile(q) as f64 / 1e3;
    (ms(0.50), ms(0.99), ms(0.999))
}

/// Runs the live traced batch on both engines (asserting bit-identical
/// answers), then sweeps the open-loop model over the offered loads.
pub fn measure(scale: f64) -> ServeMeasurement {
    let n = scaled(6_000, scale);
    let data = ClusteredGenerator::new(DIM, 10, 0.05).generate(n, 61);
    let bases = ClusteredGenerator::new(DIM, 10, 0.05).generate(WAVES, 62);

    let coalesced = ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .admission(AdmissionConfig::unbounded().with_coalescing(true))
        .metrics(true)
        .build(&data)
        .expect("coalescing engine builds");
    let plain = ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .execution(ExecutionMode::Pooled)
        .build(&data)
        .expect("plain pooled engine builds");
    let model = *plain.array().model();
    let opts = QueryOptions::traced(K);

    let mut traces_c: Vec<QueryTrace> = Vec::new();
    let mut traces_p: Vec<QueryTrace> = Vec::new();
    for base in &bases {
        let queries = wave_queries(base);
        let wave = coalesced
            .query_wave(&queries, &opts)
            .expect("wave submits")
            .into_iter()
            .map(|r| r.expect("wave query succeeds"));
        for (q, got) in queries.iter().zip(wave) {
            let want = plain.query(q, &opts).expect("plain query succeeds");
            assert_eq!(
                got.neighbors, want.neighbors,
                "coalescing must not change answers"
            );
            let (tc, tp) = (got.trace.expect("traced"), want.trace.expect("traced"));
            assert_eq!(
                tc.per_disk_pages, tp.per_disk_pages,
                "coalescing must not change logical traces"
            );
            traces_c.push(tc);
            traces_p.push(tp);
        }
    }

    let trace_coalesced: u64 = traces_c.iter().map(QueryTrace::coalesced_reads).sum();
    let registry_coalesced = coalesced
        .metrics()
        .expect("metrics on")
        .snapshot()
        .counter_total("parsim_coalesced_reads_total");
    let logical_pages: u64 = traces_p.iter().map(|t| t.total_pages()).sum();

    // Saturation: the busiest disk's total physical work gates the batch.
    let saturation = |traces: &[QueryTrace]| -> f64 {
        let busiest = (0..DISKS)
            .map(|d| {
                let physical: u64 = traces
                    .iter()
                    .map(|t| t.per_disk_pages[d] - t.per_disk_coalesced[d])
                    .sum();
                model.service_time(physical).as_secs_f64()
            })
            .fold(0.0f64, f64::max);
        traces.len() as f64 / busiest.max(1e-12)
    };
    let sat_plain_qps = saturation(&traces_p);
    let sat_coalesced_qps = saturation(&traces_c);

    let group = |traces: &[QueryTrace]| -> Vec<Vec<Vec<(f64, bool)>>> {
        traces
            .chunks(WAVE_SIZE)
            .map(|wave| wave.iter().map(|t| service_seconds(t, &model)).collect())
            .collect()
    };
    let svc_p = group(&traces_p);
    let svc_c = group(&traces_c);

    let mut rows = Vec::new();
    for &offered in &LOADS {
        let offered_qps = offered * sat_plain_qps;
        for (mode, svc) in [("plain", &svc_p), ("coalesced", &svc_c)] {
            let (p50_ms, p99_ms, p999_ms) = open_loop(svc, offered_qps);
            rows.push(ServeRow {
                mode,
                offered,
                offered_qps,
                p50_ms,
                p99_ms,
                p999_ms,
            });
        }
    }

    ServeMeasurement {
        queries: traces_p.len(),
        trace_coalesced,
        registry_coalesced,
        logical_pages,
        sat_plain_qps,
        sat_coalesced_qps,
        rows,
    }
}

/// Renders the measurement as the committed `BENCH_pr6.json` document
/// (plain formatting — the workspace carries no JSON serializer).
pub fn to_json(m: &ServeMeasurement, scale: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"pr6-open-loop-serve\",\n");
    out.push_str("  \"experiment\": \"ext11\",\n");
    out.push_str(&format!("  \"scale\": {scale},\n"));
    out.push_str(&format!(
        "  \"dim\": {DIM},\n  \"disks\": {DISKS},\n  \"k\": {K},\n"
    ));
    out.push_str(&format!(
        "  \"waves\": {WAVES},\n  \"wave_size\": {WAVE_SIZE},\n  \"queries\": {},\n  \
         \"open_loop_arrivals\": {ARRIVALS},\n",
        m.queries
    ));
    out.push_str(&format!(
        "  \"logical_pages\": {},\n  \"coalesced_reads\": {},\n  \
         \"registry_coalesced_reads\": {},\n",
        m.logical_pages, m.trace_coalesced, m.registry_coalesced
    ));
    out.push_str(&format!(
        "  \"saturation_qps\": {{\"plain\": {:.1}, \"coalesced\": {:.1}}},\n",
        m.sat_plain_qps, m.sat_coalesced_qps
    ));
    out.push_str(
        "  \"note\": \"all columns are modeled and host-independent: per-disk physical service \
         demand (logical pages minus coalesced reads) from live engine traces under the paper's \
         disk model, replayed open-loop in whole-wave arrivals (the serve layer's submission \
         unit); a coalesced-only query still waits for the backlog carrying the read it rides; \
         latency percentiles are read off a parsim-obs log-bucketed histogram (~25% bucket \
         resolution)\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in m.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"offered\": {:.2}, \"offered_qps\": {:.1}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}}}{}\n",
            r.mode,
            r.offered,
            r.offered_qps,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            if i + 1 < m.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the open-loop serve sweep and tabulates it.
pub fn run(scale: f64) -> ExperimentReport {
    let m = measure(scale);
    ExperimentReport {
        id: "ext11",
        title: "EXTENSION — open-loop serve sweep: offered load vs modeled tail latency, with \
                and without cross-query page coalescing",
        paper: "beyond the paper: the serve layer admits open-loop arrivals into bounded \
                per-disk queues and coalesces duplicate leaf reads across in-flight queries of \
                a wave; answers and logical traces stay bit-identical while the physical read \
                stream shrinks, so the same disks sustain a higher offered load before the \
                tail explodes",
        headers: vec![
            "mode".into(),
            "offered (x plain sat)".into(),
            "offered qps".into(),
            "p50 ms".into(),
            "p99 ms".into(),
            "p999 ms".into(),
        ],
        rows: m
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    fmt(r.offered, 2),
                    fmt(r.offered_qps, 1),
                    fmt(r.p50_ms, 3),
                    fmt(r.p99_ms, 3),
                    fmt(r.p999_ms, 3),
                ]
            })
            .collect(),
        notes: vec![
            format!(
                "coalescing removed {} of {} logical page reads ({} queries in {} waves of {}); \
                 registry counter reconciles exactly with the per-query traces ({} == {})",
                m.trace_coalesced,
                m.logical_pages,
                m.queries,
                WAVES,
                WAVE_SIZE,
                m.registry_coalesced,
                m.trace_coalesced,
            ),
            format!(
                "modeled saturation throughput: plain {} qps, coalesced {} qps ({}x)",
                fmt(m.sat_plain_qps, 1),
                fmt(m.sat_coalesced_qps, 1),
                fmt(m.sat_coalesced_qps / m.sat_plain_qps.max(1e-12), 2),
            ),
            "all columns are host-independent: modeled service times over live traces, \
             replayed open-loop (arrivals never wait for completions, so there is no \
             coordinated omission); percentiles come off a parsim-obs log-bucketed histogram"
                .to_string(),
        ],
    }
}
