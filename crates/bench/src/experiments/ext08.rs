//! Extension experiment 8: degraded-mode latency overhead vs the fraction
//! of failed disks.
//!
//! The paper's engine assumes a healthy disk array. This repository adds
//! replica declustering and degraded k-NN execution: every bucket is
//! mirrored on a second disk, and when disks fail the engine serves
//! their buckets from the replicas — with the answer **bit-identical** to
//! the healthy run. This experiment injects 0, 1, 2, 3 disk failures
//! (chosen so no failed disk hosts another failed disk's replicas),
//! re-runs the same workload, and tabulates the modeled latency overhead
//! of failing over.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_index::knn::Neighbor;
use parsim_parallel::{ParallelKnnEngine, QueryOptions};

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

/// Runs the degraded-latency sweep on a replicated 16-disk engine.
pub fn run(scale: f64) -> ExperimentReport {
    let dim = 8;
    let k = 10;
    let disks = 16; // == colors_required(8): every disk carries primaries
    let n = scaled(8_000, scale);
    let data = UniformGenerator::new(dim).generate(n, 81);
    let queries = UniformGenerator::new(dim).generate(16, 82);
    let engine = ParallelKnnEngine::builder(dim)
        .disks(disks)
        .replicas(1)
        .build(&data)
        .expect("replicated engine builds");

    // Greedily grow a failure set in which no member stores any other
    // member's replicas — the configuration degraded execution can always
    // survive.
    let loads = engine.load_distribution();
    let mut victims: Vec<usize> = Vec::new();
    for (d, &load) in loads.iter().enumerate() {
        if load == 0 {
            continue;
        }
        let conflicts = victims.iter().any(|&v| {
            engine.replica_disks_of(v).contains(&d) || engine.replica_disks_of(d).contains(&v)
        });
        if !conflicts {
            victims.push(d);
        }
        if victims.len() == 3 {
            break;
        }
    }

    let opts = QueryOptions::traced(k);
    let mut healthy: Vec<Vec<Neighbor>> = Vec::new();
    let mut baseline_ms = 0.0f64;
    let mut all_identical = true;
    let mut rows = Vec::new();
    for failed in 0..=victims.len() {
        engine.faults().heal_all();
        for &v in &victims[..failed] {
            engine.faults().fail(v);
        }
        let mut par_ms = 0.0f64;
        let mut failovers = 0u64;
        let mut replica_pages = 0u64;
        for (qi, q) in queries.iter().enumerate() {
            let result = engine.query(q, &opts).expect("degraded query succeeds");
            let trace = result.trace.expect("trace requested");
            par_ms += trace.modeled_parallel.as_secs_f64() * 1e3;
            if let Some(deg) = &trace.degraded {
                failovers += deg.failed_over.len() as u64;
                replica_pages += deg.replica_pages;
            }
            if failed == 0 {
                healthy.push(result.neighbors);
            } else {
                all_identical &= result.neighbors == healthy[qi];
            }
        }
        engine.faults().heal_all();
        let q = queries.len() as f64;
        par_ms /= q;
        if failed == 0 {
            baseline_ms = par_ms;
        }
        let overhead = if baseline_ms > 0.0 {
            (par_ms / baseline_ms - 1.0) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            failed.to_string(),
            fmt(failed as f64 / disks as f64, 3),
            fmt(par_ms, 3),
            fmt(overhead, 1),
            fmt(failovers as f64 / q, 2),
            fmt(replica_pages as f64 / q, 1),
        ]);
    }

    ExperimentReport {
        id: "ext8",
        title: "EXTENSION — degraded k-NN: latency overhead vs fraction of failed disks",
        paper: "beyond the paper: buckets are mirrored by the replica declusterer and failed \
                disks' buckets are served from the replicas; the k-NN answers stay bit-identical \
                to the healthy run while the modeled parallel latency absorbs the failover",
        headers: vec![
            "failed disks".into(),
            "failed fraction".into(),
            "avg modeled parallel ms".into(),
            "overhead vs healthy %".into(),
            "failovers / query".into(),
            "replica pages / query".into(),
        ],
        rows,
        notes: vec![
            format!(
                "all degraded answers bit-identical to the healthy run: {}",
                if all_identical { "yes" } else { "NO — BUG" }
            ),
            format!(
                "failure set {victims:?} chosen so no failed disk hosts another's replicas; \
                 at {disks} disks (= colors_required({dim})) every disk carries primaries, so \
                 failovers concentrate load on the mirror disks"
            ),
        ],
    }
}
