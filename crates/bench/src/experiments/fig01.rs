//! Figure 1: nearest-neighbor queries on a sequential X-tree degenerate
//! with growing dimension.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::EngineConfig;

use crate::report::{fmt, ExperimentReport};

use super::common::{scaled, sequential_cost, uniform_queries};

/// Runs the experiment: 10-NN queries on a sequential X-tree over uniform
/// data of increasing dimensionality.
pub fn run(scale: f64) -> ExperimentReport {
    let n = scaled(20_000, scale);
    let queries_n = 10;
    let k = 10;
    let mut rows = Vec::new();
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    for dim in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let data = UniformGenerator::new(dim).generate(n, 11);
        let queries = uniform_queries(dim, queries_n, 101);
        let config = EngineConfig::paper_defaults(dim);
        let cost = sequential_cost(&data, &queries, k, config);
        if dim == 2 {
            first = cost.avg_parallel_ms;
        }
        last = cost.avg_parallel_ms;
        rows.push(vec![
            dim.to_string(),
            fmt(cost.avg_total_reads, 1),
            fmt(cost.avg_parallel_ms / 1e3, 2),
        ]);
    }
    let growth = last / first;
    ExperimentReport {
        id: "fig1",
        title: "sequential X-tree 10-NN search time vs dimension",
        paper: "total search time grows steeply with the dimension (seconds by d=16 on 30 MB)",
        headers: vec![
            "dim".into(),
            "pages/query".into(),
            "time (s)".into(),
        ],
        rows,
        notes: vec![format!(
            "search time grows {growth:.0}x from d=2 to d=16 — the degeneration motivating parallelism"
        )],
    }
}
