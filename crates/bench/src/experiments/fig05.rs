//! Figure 5: the probability that a data point lies near the surface of
//! the data space — analytic curve plus a Monte-Carlo check.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::highdim::surface_probability;

use crate::report::{fmt, ExperimentReport};

use super::common::scaled;

/// Runs the experiment: `p_surface(d) = 1 − (1 − 0.2)^d` vs an empirical
/// estimate over uniform samples.
pub fn run(scale: f64) -> ExperimentReport {
    let eps = 0.1;
    let samples = scaled(50_000, scale);
    let mut rows = Vec::new();
    for dim in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        let analytic = surface_probability(dim, eps);
        let pts = UniformGenerator::new(dim).generate(samples, 51);
        let near = pts
            .iter()
            .filter(|p| p.iter().any(|&c| c < eps || c > 1.0 - eps))
            .count();
        let empirical = near as f64 / samples as f64;
        rows.push(vec![
            dim.to_string(),
            fmt(analytic * 100.0, 1),
            fmt(empirical * 100.0, 1),
        ]);
    }
    ExperimentReport {
        id: "fig5",
        title: "probability of a point lying within 0.1 of the space surface",
        paper: "grows rapidly with the dimension; exceeds 97% at d = 16",
        headers: vec![
            "dim".into(),
            "analytic (%)".into(),
            "monte-carlo (%)".into(),
        ],
        rows,
        notes: vec![format!(
            "at d=16 the analytic value is {:.1}% — matching the paper's 'more than 97%'",
            surface_probability(16, eps) * 100.0
        )],
    }
}
