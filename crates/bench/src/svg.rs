//! Minimal hand-rolled SVG line charts for the regenerated figures.
//!
//! Zero dependencies: the `figures` binary's `--svg DIR` option renders
//! each experiment whose table is numeric as a line chart resembling the
//! paper's plots (x = first column, one series per further numeric
//! column).

use std::fmt::Write as _;

use crate::ExperimentReport;

/// Chart canvas size.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
/// Margins: left, right, top, bottom.
const MARGINS: (f64, f64, f64, f64) = (70.0, 30.0, 56.0, 60.0);

/// Series color cycle (color-blind-safe-ish hues).
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// One renderable series extracted from a report.
struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

/// Attempts to interpret the report as numeric columns; returns `None`
/// when the table isn't chartable (fewer than two numeric columns or
/// fewer than two rows).
fn extract_series(report: &ExperimentReport) -> Option<(String, Vec<Series>)> {
    if report.rows.len() < 2 {
        return None;
    }
    let cols = report.headers.len();
    let numeric = |s: &str| -> Option<f64> { s.trim().parse::<f64>().ok() };
    // x column = first column; must be numeric in every row.
    let xs: Option<Vec<f64>> = report.rows.iter().map(|r| numeric(&r[0])).collect();
    let xs = xs?;
    let mut series = Vec::new();
    for c in 1..cols {
        let ys: Option<Vec<f64>> = report
            .rows
            .iter()
            .map(|r| r.get(c).map(|v| numeric(v)).unwrap_or(None))
            .collect();
        if let Some(ys) = ys {
            series.push(Series {
                name: report.headers[c].clone(),
                points: xs.iter().copied().zip(ys).collect(),
            });
        }
    }
    if series.is_empty() {
        return None;
    }
    Some((report.headers[0].clone(), series))
}

/// Renders the report as an SVG line chart; `None` if not chartable.
pub fn render(report: &ExperimentReport) -> Option<String> {
    let (x_label, series) = extract_series(report)?;

    let (ml, mr, mt, mb) = MARGINS;
    let plot_w = WIDTH - ml - mr;
    let plot_h = HEIGHT - mt - mb;

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
    for s in &series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !(x_min.is_finite() && x_max.is_finite() && y_max.is_finite()) || x_min == x_max {
        return None;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    y_max *= 1.08; // headroom

    let sx = |x: f64| ml + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| mt + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = write!(
        svg,
        r##"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"##
    );
    // Title.
    let _ = write!(
        svg,
        r##"<text x="{}" y="24" text-anchor="middle" font-size="15" font-weight="bold">{} — {}</text>"##,
        WIDTH / 2.0,
        report.id,
        xml_escape(report.title)
    );

    // Gridlines + y ticks (5 divisions).
    for i in 0..=5 {
        let yv = y_min + (y_max - y_min) * i as f64 / 5.0;
        let y = sy(yv);
        let _ = write!(
            svg,
            r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            ml + plot_w
        );
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"##,
            ml - 6.0,
            y + 4.0,
            tick_label(yv)
        );
    }
    // X ticks at the data points of the first series.
    for &(x, _) in &series[0].points {
        let px = sx(x);
        let _ = write!(
            svg,
            r##"<line x1="{px:.1}" y1="{:.1}" x2="{px:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            mt,
            mt + plot_h
        );
        let _ = write!(
            svg,
            r##"<text x="{px:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"##,
            mt + plot_h + 16.0,
            tick_label(x)
        );
    }
    // Axes.
    let _ = write!(
        svg,
        r##"<rect x="{ml}" y="{mt}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
    );
    // Axis labels.
    let _ = write!(
        svg,
        r##"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"##,
        ml + plot_w / 2.0,
        HEIGHT - 16.0,
        xml_escape(&x_label)
    );

    // Series lines, markers and legend.
    for (si, s) in series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        let _ = write!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"##,
            path.join(" ")
        );
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r##"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"##,
                sx(x),
                sy(y)
            );
        }
        // Legend entry.
        let lx = ml + 10.0;
        let ly = mt + 14.0 + si as f64 * 16.0;
        let _ = write!(
            svg,
            r##"<line x1="{lx}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"##,
            lx + 18.0
        );
        let _ = write!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"##,
            lx + 24.0,
            ly + 4.0,
            xml_escape(&s.name)
        );
    }
    svg.push_str("</svg>");
    Some(svg)
}

fn tick_label(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_report() -> ExperimentReport {
        ExperimentReport {
            id: "figX",
            title: "demo",
            paper: "goes up",
            headers: vec!["disks".into(), "ours".into(), "hilbert".into()],
            rows: vec![
                vec!["1".into(), "1.0".into(), "1.0".into()],
                vec!["2".into(), "1.9".into(), "1.5".into()],
                vec!["4".into(), "3.7".into(), "2.1".into()],
            ],
            notes: vec![],
        }
    }

    #[test]
    fn renders_numeric_tables() {
        let svg = render(&numeric_report()).expect("chartable");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("hilbert"));
        // Two series, one polyline each.
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn rejects_non_numeric_tables() {
        let report = ExperimentReport {
            id: "fig7",
            title: "verdicts",
            paper: "",
            headers: vec!["method".into(), "verdict".into()],
            rows: vec![vec!["dm".into(), "violates".into()]; 3],
            notes: vec![],
        };
        assert!(render(&report).is_none());
    }

    #[test]
    fn skips_non_numeric_columns_only() {
        let mut report = numeric_report();
        report.headers.push("comment".into());
        for r in &mut report.rows {
            r.push("n/a".into());
        }
        let svg = render(&report).expect("still chartable");
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn escapes_markup() {
        let mut report = numeric_report();
        report.title = "a < b & c";
        let svg = render(&report).unwrap();
        assert!(svg.contains("a &lt; b &amp; c"));
    }
}
