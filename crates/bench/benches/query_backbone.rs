//! Query-backbone microbench: the same 64-query sustained batch through
//! the scoped reference engine and the persistent per-disk worker pool.
//! The pooled path additionally measures single-query submit→wait
//! latency, which includes the channel hop per disk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::{ExecutionMode, ParallelKnnEngine, QueryOptions};

fn bench_backbone(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_backbone");
    group.sample_size(10);
    let dim = 8;
    let k = 5;
    let data = UniformGenerator::new(dim).generate(8_000, 91);
    let queries = UniformGenerator::new(dim).generate(64, 92);
    let opts = QueryOptions::new(k);
    for (label, mode) in [
        ("scoped", ExecutionMode::Scoped),
        ("pooled", ExecutionMode::Pooled),
    ] {
        let engine = ParallelKnnEngine::builder(dim)
            .disks(8)
            .execution(mode)
            .build(&data)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("batch64_knn5", label), &mode, |b, _| {
            b.iter(|| engine.query_batch(black_box(&queries), &opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("single_knn5", label), &mode, |b, _| {
            b.iter(|| engine.query(black_box(&queries[0]), &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backbone);
criterion_main!(benches);
