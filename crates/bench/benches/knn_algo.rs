//! Ablation: RKV (the paper's k-NN algorithm) vs HS (best-first) on the
//! same X-tree — latency and, implicitly, page accesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, FourierGenerator, UniformGenerator};
use parsim_index::{KnnAlgorithm, SpatialTree, TreeParams, TreeVariant};

fn bench_knn_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_algo");
    group.sample_size(20);
    let dim = 12;
    for (name, data) in [
        ("uniform", UniformGenerator::new(dim).generate(10_000, 1)),
        ("fourier", FourierGenerator::new(dim).generate(10_000, 1)),
    ] {
        let items: Vec<_> = data
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, items).unwrap();
        let queries = UniformGenerator::new(dim).generate(64, 2);
        for (algo_name, algo) in [("rkv", KnnAlgorithm::Rkv), ("hs", KnnAlgorithm::Hs)] {
            group.bench_with_input(BenchmarkId::new(algo_name, name), &algo, |b, &algo| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    tree.knn(black_box(&queries[i]), 10, algo)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_knn_algorithms);
criterion_main!(benches);
