//! Distance-kernel microbenchmarks: naive per-coordinate loop vs the
//! unrolled kernel vs the early-abandon variant under a tight bound.
//!
//! The abandon rows use the median full distance of the workload as the
//! bound, so roughly half the evaluations can stop at a checkpoint —
//! a stand-in for the k-th-best bound the k-NN scan prunes against.
//!
//! The `f32_lower_bound` and `q8_lower_bound` rows measure the tiered
//! scan's phase 1 under the same median bound: the low-precision bounded
//! kernel against the certified prune threshold — the per-row cost that
//! replaces a full f64 evaluation for every row the tier proves away.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::kernel;

fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for dim in [8usize, 16, 32, 64] {
        let rows: Vec<Vec<f64>> = UniformGenerator::new(dim)
            .generate(256, 1)
            .into_iter()
            .map(|p| p.coords().to_vec())
            .collect();
        let query = UniformGenerator::new(dim).generate(1, 2)[0]
            .coords()
            .to_vec();
        let mut dists: Vec<f64> = rows.iter().map(|r| kernel::dist2(&query, r)).collect();
        dists.sort_by(f64::total_cmp);
        let bound = dists[dists.len() / 2];

        group.bench_with_input(BenchmarkId::new("naive", dim), &dim, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for r in &rows {
                    acc += naive_dist2(black_box(&query), r);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("kernel", dim), &dim, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for r in &rows {
                    acc += kernel::dist2(black_box(&query), r);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("early_abandon", dim), &dim, |b, _| {
            b.iter(|| {
                let mut kept = 0usize;
                for r in &rows {
                    if kernel::dist2_bounded(black_box(&query), r, bound).is_some() {
                        kept += 1;
                    }
                }
                kept
            })
        });

        // Energy-ordered abandon: the same rows with coordinates permuted
        // by descending variance (the PR-9 leaf layout), scanned under the
        // certified order-prune bound. High-energy lanes accumulate the
        // partial sum fastest, so abandons fire at earlier checkpoints —
        // this row's gap to `early_abandon` is the layout's win.
        let mut lanes: Vec<usize> = (0..dim).collect();
        let var: Vec<f64> = (0..dim)
            .map(|d| {
                let mean = rows.iter().map(|r| r[d]).sum::<f64>() / rows.len() as f64;
                rows.iter().map(|r| (r[d] - mean).powi(2)).sum::<f64>()
            })
            .collect();
        lanes.sort_by(|&a, &b| var[b].total_cmp(&var[a]));
        let permute = |v: &[f64]| -> Vec<f64> { lanes.iter().map(|&d| v[d]).collect() };
        let prows: Vec<Vec<f64>> = rows.iter().map(|r| permute(r)).collect();
        let pquery = permute(&query);
        let pbound = kernel::order_prune_bound(bound);
        group.bench_with_input(
            BenchmarkId::new("early_abandon_energy", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    let mut kept = 0usize;
                    for r in &prows {
                        if kernel::dist2_bounded(black_box(&pquery), r, pbound).is_some() {
                            kept += 1;
                        }
                    }
                    kept
                })
            },
        );

        // Phase-1 f32 mirror scan: certified threshold, bounded kernel.
        let rows32: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&c| c as f32).collect())
            .collect();
        let query32: Vec<f32> = query.iter().map(|&c| c as f32).collect();
        let rq32 = kernel::displacement_norm_f32(&query, &query32);
        let rx32 = rows
            .iter()
            .zip(&rows32)
            .map(|(r, m)| kernel::displacement_norm_f32(r, m))
            .fold(0.0f64, f64::max);
        let t32 = kernel::f32_prune_threshold(bound, rq32, rx32, dim);
        let b32 = kernel::f32_kernel_bound(t32);
        group.bench_with_input(BenchmarkId::new("f32_lower_bound", dim), &dim, |b, _| {
            b.iter(|| {
                let mut pruned = 0usize;
                for m in &rows32 {
                    if kernel::f32_row_prunable(
                        kernel::dist2_f32_bounded(black_box(&query32), m, b32),
                        t32,
                    ) {
                        pruned += 1;
                    }
                }
                pruned
            })
        });

        // Phase-1 q8 code scan: one shared grid over the whole block.
        let lo = rows.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
        let hi = rows
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let scale = (hi - lo) / 255.0;
        let q8 = |v: &[f64]| -> Vec<u8> {
            v.iter()
                .map(|&c| ((c - lo) / scale).round().clamp(0.0, 255.0) as u8)
                .collect()
        };
        let codes: Vec<Vec<u8>> = rows.iter().map(|r| q8(r)).collect();
        let qcodes = q8(&query);
        let rq8 = kernel::displacement_norm_q8(&query, &qcodes, lo, scale);
        let rx8 = rows
            .iter()
            .zip(&codes)
            .map(|(r, c)| kernel::displacement_norm_q8(r, c, lo, scale))
            .fold(0.0f64, f64::max);
        let t8 = kernel::q8_prune_threshold(bound, rq8, rx8, scale);
        let b8 = kernel::q8_kernel_bound(t8);
        group.bench_with_input(BenchmarkId::new("q8_lower_bound", dim), &dim, |b, _| {
            b.iter(|| {
                let mut pruned = 0usize;
                for c in &codes {
                    if kernel::q8_row_prunable(
                        kernel::dist2_q8_bounded(black_box(&qcodes), c, b8),
                        t8,
                    ) {
                        pruned += 1;
                    }
                }
                pruned
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
