//! Distance-kernel microbenchmarks: naive per-coordinate loop vs the
//! unrolled kernel vs the early-abandon variant under a tight bound.
//!
//! The abandon rows use the median full distance of the workload as the
//! bound, so roughly half the evaluations can stop at a checkpoint —
//! a stand-in for the k-th-best bound the k-NN scan prunes against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::kernel;

fn naive_dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    for dim in [8usize, 16, 32, 64] {
        let rows: Vec<Vec<f64>> = UniformGenerator::new(dim)
            .generate(256, 1)
            .into_iter()
            .map(|p| p.coords().to_vec())
            .collect();
        let query = UniformGenerator::new(dim).generate(1, 2)[0]
            .coords()
            .to_vec();
        let mut dists: Vec<f64> = rows.iter().map(|r| kernel::dist2(&query, r)).collect();
        dists.sort_by(f64::total_cmp);
        let bound = dists[dists.len() / 2];

        group.bench_with_input(BenchmarkId::new("naive", dim), &dim, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for r in &rows {
                    acc += naive_dist2(black_box(&query), r);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("kernel", dim), &dim, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for r in &rows {
                    acc += kernel::dist2(black_box(&query), r);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("early_abandon", dim), &dim, |b, _| {
            b.iter(|| {
                let mut kept = 0usize;
                for r in &rows {
                    if kernel::dist2_bounded(black_box(&query), r, bound).is_some() {
                        kept += 1;
                    }
                }
                kept
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
