//! End-to-end bench: parallel 10-NN query latency by declustering method
//! (wall-clock companion to figures 12–14, whose primary metric is page
//! counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_bench::experiments::common::{build_engine, Method};
use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::EngineConfig;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup");
    group.sample_size(15);
    let dim = 15;
    let data = UniformGenerator::new(dim).generate(20_000, 5);
    let queries = UniformGenerator::new(dim).generate(32, 6);
    let config = EngineConfig::paper_defaults(dim);
    for method in [Method::RoundRobin, Method::Hilbert, Method::NearOptimal] {
        let engine = build_engine(method, &data, 16, config);
        group.bench_with_input(
            BenchmarkId::new("knn10_16disks", format!("{method:?}")),
            &method,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    engine.knn(black_box(&queries[i]), 10).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
