//! End-to-end bench: parallel 10-NN query latency by declustering method
//! (wall-clock companion to figures 12–14, whose primary metric is page
//! counts), plus the threaded execution paths of the engine — one thread
//! per disk (`knn`), the bounded-worker batch pool (`knn_batch_with`),
//! and the single-disk sequential baseline, so the measured speed-up can
//! be read off next to the modeled one (experiment `ext6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parsim_bench::experiments::common::{build_engine, Method};
use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::{EngineConfig, ParallelKnnEngine, SequentialEngine};

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_speedup");
    group.sample_size(15);
    let dim = 15;
    let data = UniformGenerator::new(dim).generate(20_000, 5);
    let queries = UniformGenerator::new(dim).generate(32, 6);
    let config = EngineConfig::paper_defaults(dim);
    for method in [Method::RoundRobin, Method::Hilbert, Method::NearOptimal] {
        let engine = build_engine(method, &data, 16, config);
        group.bench_with_input(
            BenchmarkId::new("knn10_16disks", format!("{method:?}")),
            &method,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    engine.knn(black_box(&queries[i]), 10).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_execution_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_paths");
    group.sample_size(15);
    let dim = 12;
    let data = UniformGenerator::new(dim).generate(20_000, 15);
    let queries = UniformGenerator::new(dim).generate(32, 16);
    let config = EngineConfig::paper_defaults(dim);
    let par = ParallelKnnEngine::builder(dim)
        .config(config)
        .disks(8)
        .build(&data)
        .expect("engine builds");
    let seq = SequentialEngine::build(&data, config).expect("baseline builds");

    // Single-disk baseline: the denominator of the measured speed-up.
    group.bench_function("sequential_knn10", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            seq.knn(black_box(&queries[i]), 10).unwrap()
        })
    });

    // Intra-query parallelism: one thread per disk, shared pruning bound.
    group.bench_function("threaded_knn10_8disks", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % queries.len();
            par.knn(black_box(&queries[i]), 10).unwrap()
        })
    });

    // Inter-query parallelism: the bounded worker pool answers the whole
    // workload; throughput is queries per second.
    group.throughput(Throughput::Elements(queries.len() as u64));
    for workers in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new("batch_knn10_8disks", workers),
            &workers,
            |b, &w| b.iter(|| par.knn_batch_with(black_box(&queries), 10, w).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_execution_paths);
criterion_main!(benches);
