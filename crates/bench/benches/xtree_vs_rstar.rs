//! Ablation: X-tree (supernodes) vs plain R*-tree in high dimensions —
//! the design choice the X-tree paper motivates and ours inherits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_index::{KnnAlgorithm, SpatialTree, TreeParams, TreeVariant};

fn build(dim: usize, variant: TreeVariant, n: usize) -> SpatialTree {
    let params = TreeParams::for_dim(dim, variant).unwrap();
    let mut tree = SpatialTree::new(params);
    for (i, p) in UniformGenerator::new(dim)
        .generate(n, 3)
        .into_iter()
        .enumerate()
    {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("xtree_vs_rstar");
    group.sample_size(15);
    let n = 8_000;
    for dim in [8usize, 14] {
        let queries = UniformGenerator::new(dim).generate(32, 4);
        for (name, variant) in [
            ("rstar", TreeVariant::RStar),
            ("xtree", TreeVariant::xtree_default()),
        ] {
            let tree = build(dim, variant, n);
            group.bench_with_input(BenchmarkId::new(name, dim), &dim, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    tree.knn(black_box(&queries[i]), 10, KnnAlgorithm::Rkv)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
