//! Ablations of the paper's design choices called out in DESIGN.md:
//!
//! * midpoint vs median splits on skewed data (Section 4.3 extension 1),
//! * complement folding vs a naive `col mod n` for non-power-of-two disk
//!   counts (Section 4.3 arbitrary-disks extension),
//! * direct-only vs direct+indirect neighbor coloring (Definition 3/4).
//!
//! These measure *page counts per query* (the paper's metric), exposed
//! here as iteration outputs so criterion tracks them as throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use parsim_bench::experiments::common::{build_engine, Method};
use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};
use parsim_decluster::quantile::median_splits;
use parsim_decluster::{BucketBased, BucketDecluster, NearOptimal};
use parsim_geometry::quadrant::BucketId;
use parsim_parallel::{EngineConfig, ParallelKnnEngine, SplitStrategy};

fn bench_split_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile_ablation");
    group.sample_size(12);
    let dim = 10;
    let data = ClusteredGenerator::new(dim, 4, 0.05).generate(15_000, 7);
    let queries = ClusteredGenerator::new(dim, 4, 0.05).generate(15_032, 7)[15_000..].to_vec();
    for (name, splits) in [
        ("midpoint", SplitStrategy::Midpoint),
        ("median", SplitStrategy::DataMedian),
    ] {
        let mut config = EngineConfig::paper_defaults(dim);
        config.splits = splits;
        let engine = build_engine(Method::NearOptimal, &data, 16, config);
        group.bench_with_input(BenchmarkId::new("clustered_knn10", name), &name, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                engine.knn(black_box(&queries[i]), 10).unwrap()
            })
        });
    }
    group.finish();
}

/// A deliberately naive fold: `col(b) mod n` instead of complement folding.
struct NaiveMod {
    dim: usize,
    disks: usize,
}

impl BucketDecluster for NaiveMod {
    fn name(&self) -> &'static str {
        "naive-mod"
    }
    fn disks(&self) -> usize {
        self.disks
    }
    fn disk_of_bucket(&self, bucket: BucketId, dim: usize) -> usize {
        (parsim_decluster::near_optimal::col(bucket, self.dim.max(dim)) as usize) % self.disks
    }
}

fn bench_folding(c: &mut Criterion) {
    let mut group = c.benchmark_group("folding_ablation");
    group.sample_size(12);
    let dim = 12; // colors_required = 16; fold to 12 disks (non power of 2)
    let disks = 12;
    let data = UniformGenerator::new(dim).generate(15_000, 9);
    let queries = UniformGenerator::new(dim).generate(64, 10);
    let config = EngineConfig::paper_defaults(dim);
    let splitter = || median_splits(&data).unwrap();

    let folded = ParallelKnnEngine::builder(dim)
        .config(config)
        .declusterer(Arc::new(BucketBased::new(
            NearOptimal::new(dim, disks).unwrap(),
            splitter(),
        )))
        .build(&data)
        .unwrap();
    let naive = ParallelKnnEngine::builder(dim)
        .config(config)
        .declusterer(Arc::new(BucketBased::new(
            NaiveMod { dim, disks },
            splitter(),
        )))
        .build(&data)
        .unwrap();

    for (name, engine) in [("complement_fold", &folded), ("naive_mod", &naive)] {
        group.bench_with_input(BenchmarkId::new("knn10_12disks", name), &name, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                engine.knn(black_box(&queries[i]), 10).unwrap()
            })
        });
    }
    group.finish();
}

/// Direct-only coloring: colors = bucket popcount parity classes mod d+1 —
/// separates direct neighbors only (a (d+1)-coloring of the hypercube by
/// "sum of coordinates mod (d+1)" — here via DiskModulo with d+1 disks).
fn bench_neighbor_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_level_ablation");
    group.sample_size(12);
    let dim = 12;
    let data = UniformGenerator::new(dim).generate(15_000, 11);
    let queries = UniformGenerator::new(dim).generate(64, 12);
    let config = EngineConfig::paper_defaults(dim);

    // Direct-only: disk modulo with d+1 = 13 disks separates all direct
    // neighbors (popcount changes by 1) but collides indirect ones.
    let direct_only = ParallelKnnEngine::builder(dim)
        .config(config)
        .declusterer(Arc::new(BucketBased::new(
            parsim_decluster::DiskModulo::new(dim + 1).unwrap(),
            median_splits(&data).unwrap(),
        )))
        .build(&data)
        .unwrap();
    // Full: col with 16 disks separates direct AND indirect neighbors.
    let full = ParallelKnnEngine::builder(dim)
        .config(config)
        .declusterer(Arc::new(BucketBased::new(
            NearOptimal::with_optimal_disks(dim).unwrap(),
            median_splits(&data).unwrap(),
        )))
        .build(&data)
        .unwrap();

    for (name, engine) in [
        ("direct_only_13", &direct_only),
        ("direct_indirect_16", &full),
    ] {
        group.bench_with_input(BenchmarkId::new("knn10", name), &name, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                engine.knn(black_box(&queries[i]), 10).unwrap()
            })
        });
    }
    group.finish();
}

/// Page-cache ablation: the same query workload against caches of
/// increasing size per tree (0 = the paper's data-page setting; large =
/// everything RAM-resident after warm-up).
fn bench_cache_sizes(c: &mut Criterion) {
    use parsim_index::{CachingSink, DiskSink, KnnAlgorithm, SpatialTree, TreeParams, TreeVariant};
    use parsim_storage::SimDisk;

    let mut group = c.benchmark_group("cache_ablation");
    group.sample_size(12);
    let dim = 10;
    let items: Vec<(parsim_geometry::Point, u64)> = UniformGenerator::new(dim)
        .generate(15_000, 13)
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let queries = UniformGenerator::new(dim).generate(64, 14);
    for capacity in [0usize, 64, 1024] {
        let disk = Arc::new(SimDisk::new(0));
        let sink = Arc::new(CachingSink::new(
            Arc::new(DiskSink(Arc::clone(&disk))),
            capacity,
        ));
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, items.clone())
            .unwrap()
            .with_sink(sink as Arc<dyn parsim_index::NodeSink>);
        group.bench_with_input(
            BenchmarkId::new("knn10_cached", capacity),
            &capacity,
            |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    tree.knn(black_box(&queries[i]), 10, KnnAlgorithm::Rkv)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_split_strategy,
    bench_folding,
    bench_neighbor_levels,
    bench_cache_sizes
);
criterion_main!(benches);
