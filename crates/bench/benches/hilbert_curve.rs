//! Microbenchmark: d-dimensional Hilbert encode/decode throughput — the
//! inner loop of the Hilbert declustering baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_hilbert::{HilbertCurve, ZOrderCurve};

fn bench_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert_curve");
    for dim in [2usize, 8, 16, 32] {
        let h = HilbertCurve::new(dim, 1).unwrap();
        let z = ZOrderCurve::new(dim, 1).unwrap();
        let coords: Vec<u64> = (0..dim).map(|i| (i % 2) as u64).collect();
        group.bench_with_input(BenchmarkId::new("hilbert_encode", dim), &dim, |b, _| {
            b.iter(|| h.encode(black_box(&coords)))
        });
        group.bench_with_input(BenchmarkId::new("hilbert_decode", dim), &dim, |b, _| {
            b.iter(|| h.decode(black_box(3)))
        });
        group.bench_with_input(BenchmarkId::new("zorder_encode", dim), &dim, |b, _| {
            b.iter(|| z.encode(black_box(&coords)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
