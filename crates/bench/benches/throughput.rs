//! Throughput extension bench (the paper's future work): saturated batch
//! queries per second by declustering method, plus the per-query-latency
//! vs throughput trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_bench::experiments::common::{build_declustered, Method};
use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::throughput::run_batch;
use parsim_parallel::EngineConfig;

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    let dim = 12;
    let data = UniformGenerator::new(dim).generate(20_000, 5);
    let queries = UniformGenerator::new(dim).generate(32, 6);
    let config = EngineConfig::paper_defaults(dim);
    for method in [Method::RoundRobin, Method::Hilbert, Method::NearOptimal] {
        let engine = build_declustered(method, &data, 16, config);
        group.bench_with_input(
            BenchmarkId::new("batch32_knn10", format!("{method:?}")),
            &method,
            |b, _| b.iter(|| run_batch(&engine, black_box(&queries), 10).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
