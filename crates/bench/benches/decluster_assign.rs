//! Microbenchmark: disk-assignment throughput of every declustering
//! method. The paper's `col` runs in O(d) bit operations and must beat the
//! Hilbert mapping by a wide margin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_decluster::near_optimal::col;
use parsim_decluster::{
    BucketBased, BucketDecluster, Declusterer, DiskModulo, HilbertDecluster, NearOptimal,
};
use parsim_geometry::QuadrantSplitter;

fn bench_bucket_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_assign");
    for dim in [8usize, 16, 32] {
        let near = NearOptimal::with_optimal_disks(dim).unwrap();
        let hil = HilbertDecluster::new(dim, 16).unwrap();
        let dm = DiskModulo::new(16).unwrap();
        let bucket = 0b1011_0110_1011u64 & ((1 << dim) - 1);
        group.bench_with_input(BenchmarkId::new("col_raw", dim), &dim, |b, _| {
            b.iter(|| col(black_box(bucket), dim))
        });
        group.bench_with_input(BenchmarkId::new("near_optimal", dim), &dim, |b, _| {
            b.iter(|| near.disk_of_bucket(black_box(bucket), dim))
        });
        group.bench_with_input(BenchmarkId::new("hilbert", dim), &dim, |b, _| {
            b.iter(|| hil.disk_of_bucket(black_box(bucket), dim))
        });
        group.bench_with_input(BenchmarkId::new("disk_modulo", dim), &dim, |b, _| {
            b.iter(|| dm.disk_of_bucket(black_box(bucket), dim))
        });
    }
    group.finish();
}

fn bench_point_assignment(c: &mut Criterion) {
    let dim = 16;
    let pts = UniformGenerator::new(dim).generate(1024, 1);
    let lifted = BucketBased::new(
        NearOptimal::new(dim, 16).unwrap(),
        QuadrantSplitter::midpoint(dim).unwrap(),
    );
    c.bench_function("point_assign_near_optimal_16d", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % pts.len();
            lifted.assign(i as u64, black_box(&pts[i]))
        })
    });
}

criterion_group!(benches, bench_bucket_methods, bench_point_assignment);
criterion_main!(benches);
