//! Figure 1 as a wall-clock bench: sequential X-tree 10-NN latency vs
//! dimension. (The figures binary reports the page-count version.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_index::{KnnAlgorithm, SpatialTree, TreeParams, TreeVariant};

fn bench_seq_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_knn_dim");
    group.sample_size(20);
    for dim in [4usize, 8, 16] {
        let data: Vec<_> = UniformGenerator::new(dim)
            .generate(10_000, 1)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let params = TreeParams::for_dim(dim, TreeVariant::xtree_default()).unwrap();
        let tree = SpatialTree::bulk_load(params, data).unwrap();
        let queries = UniformGenerator::new(dim).generate(64, 2);
        group.bench_with_input(BenchmarkId::new("xtree_10nn", dim), &dim, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % queries.len();
                tree.knn(black_box(&queries[i]), 10, KnnAlgorithm::Rkv)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_knn);
criterion_main!(benches);
