//! Property tests of cross-query page coalescing: a coalesced wave must
//! return bit-identical RKV answers and bit-identical *logical* traces
//! (per-disk pages, distance evaluations, pruning) to the uncoalesced
//! pooled pipeline — on clustered and correlated data, healthy and with
//! a failed disk serving from replicas. Coalescing may only change which
//! physical reads are charged, never what the search computes.

use proptest::prelude::*;

use parsim_datagen::{ClusteredGenerator, CorrelatedGenerator, DataGenerator};
use parsim_geometry::Point;
use parsim_parallel::{
    AdmissionConfig, ExecutionMode, ParallelKnnEngine, QueryOptions, QueryResult, QueryTrace,
};

const DIM: usize = 6;
const DISKS: usize = 8;
const N: usize = 1500;

fn data(correlated: bool, seed: u64, n: usize) -> Vec<Point> {
    if correlated {
        CorrelatedGenerator::new(DIM, 0.05).generate(n, seed)
    } else {
        ClusteredGenerator::new(DIM, 8, 0.05).generate(n, seed)
    }
}

fn build(pts: &[Point], coalescing: bool, replicas: usize) -> ParallelKnnEngine {
    let mut b = ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .replicas(replicas)
        .execution(ExecutionMode::Pooled);
    if coalescing {
        b = b.admission(AdmissionConfig::unbounded().with_coalescing(true));
    }
    b.build(pts).unwrap()
}

/// Waits out a wave and pairs each answer with its trace.
fn run_wave(
    engine: &ParallelKnnEngine,
    queries: &[Point],
    opts: &QueryOptions,
) -> Vec<QueryResult> {
    engine
        .query_wave(queries, opts)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect()
}

/// The logical view of a trace: everything coalescing must NOT change.
fn logical(t: &QueryTrace) -> (Vec<u64>, u64, u64, u64) {
    (
        t.per_disk_pages.clone(),
        t.dist_evals,
        t.dist_evals_saved,
        t.candidates_pruned,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Healthy engines: a coalesced wave answers bit-identically to the
    /// uncoalesced pooled pipeline, query by query, with identical
    /// logical traces.
    #[test]
    fn coalesced_waves_match_uncoalesced_pipeline(
        seed in any::<u64>(),
        correlated in any::<bool>(),
        wave in 2usize..=6,
        k in 1usize..=12,
    ) {
        let pts = data(correlated, seed, N);
        let queries = data(correlated, seed.wrapping_add(1), wave);
        let coalesced = build(&pts, true, 0);
        let plain = build(&pts, false, 0);
        let opts = QueryOptions::traced(k);
        let got = run_wave(&coalesced, &queries, &opts);
        for (q, r) in queries.iter().zip(&got) {
            let want = plain.submit(q, &opts).unwrap().wait().unwrap();
            prop_assert_eq!(&r.neighbors, &want.neighbors);
            let (t, wt) = (r.trace.as_ref().unwrap(), want.trace.unwrap());
            prop_assert_eq!(logical(t), logical(&wt));
            // Coalescing can never claim more visits than the disk's
            // logical page requests.
            for (c, p) in t.per_disk_coalesced.iter().zip(&t.per_disk_pages) {
                prop_assert!(c <= p, "coalesced {} > pages {}", c, p);
            }
        }
    }

    /// Degraded engines (one hard-failed disk, replicas serving its
    /// buckets): coalescing on the surviving primaries still leaves
    /// answers and logical traces bit-identical to the uncoalesced
    /// degraded pipeline.
    #[test]
    fn degraded_coalesced_waves_stay_exact(
        seed in any::<u64>(),
        correlated in any::<bool>(),
        failed in 0usize..DISKS,
        wave in 2usize..=4,
    ) {
        let pts = data(correlated, seed, N);
        let queries = data(correlated, seed.wrapping_add(1), wave);
        let coalesced = build(&pts, true, 1);
        let plain = build(&pts, false, 1);
        coalesced.faults().fail(failed);
        plain.faults().fail(failed);
        let opts = QueryOptions::traced(10);
        let got = run_wave(&coalesced, &queries, &opts);
        for (q, r) in queries.iter().zip(&got) {
            let want = plain.submit(q, &opts).unwrap().wait().unwrap();
            prop_assert_eq!(&r.neighbors, &want.neighbors);
            let (t, wt) = (r.trace.as_ref().unwrap(), want.trace.unwrap());
            prop_assert_eq!(logical(t), logical(&wt));
            let d = t.degraded.as_ref().unwrap();
            let wd = wt.degraded.as_ref().unwrap();
            prop_assert_eq!(&d.failed_over, &wd.failed_over);
            prop_assert_eq!(d.replica_pages, wd.replica_pages);
        }
    }
}
