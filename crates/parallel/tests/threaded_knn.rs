//! End-to-end tests of the threaded query paths.
//!
//! The per-disk parallel search ([`ParallelKnnEngine::knn`] /
//! [`ParallelKnnEngine::knn_traced`]) and the batched worker pool
//! ([`ParallelKnnEngine::knn_batch_with`]) must return exactly the answers
//! of the single-disk [`SequentialEngine`] under any worker count, and the
//! per-query traces must account for every page the shared disks served —
//! even while many queries run concurrently.

use parsim_datagen::{ClusteredGenerator, CorrelatedGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::knn::{brute_force_knn, Neighbor};
use parsim_index::KnnAlgorithm;
use parsim_parallel::{
    EngineConfig, ExecutionMode, ParallelKnnEngine, QueryOptions, ScanTier, SequentialEngine,
};

const DIM: usize = 8;
const DISKS: usize = 8;

fn setup(algorithm: KnnAlgorithm) -> (ParallelKnnEngine, SequentialEngine, Vec<Point>) {
    let pts = UniformGenerator::new(DIM).generate(4000, 21);
    let mut config = EngineConfig::paper_defaults(DIM);
    config.algorithm = algorithm;
    let par = ParallelKnnEngine::builder(DIM)
        .config(config)
        .disks(DISKS)
        .build(&pts)
        .unwrap();
    let seq = SequentialEngine::build(&pts, config).unwrap();
    let queries = UniformGenerator::new(DIM).generate(24, 77);
    (par, seq, queries)
}

/// Distances must agree exactly (identical arithmetic on both paths);
/// items may differ only between equidistant points.
fn assert_same_answers(got: &[Neighbor], want: &[Neighbor]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert!(
            (g.dist - w.dist).abs() < 1e-12,
            "distance mismatch: {} vs {}",
            g.dist,
            w.dist
        );
    }
}

#[test]
fn threaded_knn_matches_sequential_rkv() {
    let (par, seq, queries) = setup(KnnAlgorithm::Rkv);
    for q in &queries {
        let (got, _) = par.knn(q, 10).unwrap();
        let (want, _) = seq.knn(q, 10).unwrap();
        assert_same_answers(&got, &want);
    }
}

#[test]
fn threaded_knn_matches_sequential_hs() {
    let (par, seq, queries) = setup(KnnAlgorithm::Hs);
    for q in &queries {
        let (got, _) = par.knn(q, 10).unwrap();
        let (want, _) = seq.knn(q, 10).unwrap();
        assert_same_answers(&got, &want);
    }
}

#[test]
fn batch_matches_sequential_under_1_2_8_workers() {
    let (par, seq, queries) = setup(KnnAlgorithm::Rkv);
    let want: Vec<Vec<Neighbor>> = queries.iter().map(|q| seq.knn(q, 10).unwrap().0).collect();
    for workers in [1, 2, 8] {
        let got = par.knn_batch_with(&queries, 10, workers).unwrap();
        assert_eq!(got.len(), queries.len());
        for ((g, _), w) in got.iter().zip(&want) {
            assert_same_answers(g, w);
        }
    }
}

#[test]
fn batch_traces_are_identical_across_worker_counts() {
    // Each query's trace is computed by exactly one worker running the
    // deterministic forest search, so worker interleaving must not change
    // a single counter.
    let (par, _, queries) = setup(KnnAlgorithm::Rkv);
    let baseline = par.knn_batch_with(&queries, 10, 1).unwrap();
    for workers in [2, 8] {
        let got = par.knn_batch_with(&queries, 10, workers).unwrap();
        for ((_, g), (_, b)) in got.iter().zip(&baseline) {
            assert_eq!(g.per_disk_pages, b.per_disk_pages);
            assert_eq!(g.candidates_pruned, b.candidates_pruned);
        }
    }
}

#[test]
fn batch_traces_account_for_every_page_served() {
    // The sum of the locally-counted per-query traces must equal the
    // global disk-counter delta over the whole concurrent batch: no page
    // is lost or double-counted under contention.
    let (par, _, queries) = setup(KnnAlgorithm::Rkv);
    let scope = par.array().begin_query();
    let results = par.knn_batch_with(&queries, 10, 8).unwrap();
    let cost = scope.finish(&par.array());

    let mut summed = vec![0u64; DISKS];
    for (_, trace) in &results {
        for (acc, p) in summed.iter_mut().zip(&trace.per_disk_pages) {
            *acc += p;
        }
    }
    assert_eq!(summed, cost.per_disk_reads);
}

#[test]
fn threaded_traces_account_for_every_page_served() {
    // Same accounting identity for the intra-query (per-disk threads)
    // path: the trace of each query counts exactly the pages its threads
    // charged to the disks.
    let (par, _, queries) = setup(KnnAlgorithm::Rkv);
    let scope = par.array().begin_query();
    let mut summed = vec![0u64; DISKS];
    for q in &queries {
        let (_, trace) = par.knn_traced(q, 10).unwrap();
        assert_eq!(trace.per_disk_pages.len(), DISKS);
        assert!(trace.total_pages() > 0);
        for (acc, p) in summed.iter_mut().zip(&trace.per_disk_pages) {
            *acc += p;
        }
    }
    let cost = scope.finish(&par.array());
    assert_eq!(summed, cost.per_disk_reads);
}

#[test]
fn shared_bound_prunes_work() {
    // Var. 3 with the shared bound must read fewer pages than independent
    // per-disk searches run to completion.
    let (par, _, queries) = setup(KnnAlgorithm::Rkv);
    let mut bounded = 0u64;
    let mut independent = 0u64;
    let mut pruned = 0u64;
    for q in &queries {
        let (_, trace) = par.knn_traced(q, 10).unwrap();
        bounded += trace.total_pages();
        pruned += trace.candidates_pruned;
        let (_, cost) = par.knn_independent(q, 10).unwrap();
        independent += cost.total_reads;
    }
    assert!(pruned > 0, "no subtree was ever pruned over the workload");
    assert!(
        bounded <= independent,
        "shared bound read more pages ({bounded}) than independent searches ({independent})"
    );
}

#[test]
fn cached_engine_reports_cache_hits() {
    let pts = UniformGenerator::new(DIM).generate(3000, 5);
    let par = ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .page_cache(4096)
        .build(&pts)
        .unwrap();
    let q = &UniformGenerator::new(DIM).generate(1, 9)[0];

    let (_, cold) = par.knn_traced(q, 10).unwrap();
    assert_eq!(cold.cache_hits, 0, "first query cannot hit an empty cache");
    let (_, warm) = par.knn_traced(q, 10).unwrap();
    // Identical query, ample cache: the repeat is (at least partly —
    // thread interleaving may shift the visited set slightly) served from
    // memory. Every tree re-reads its root, so hits are guaranteed.
    assert!(warm.cache_hits > 0, "second run should hit the cache");
}

#[test]
fn clustered_knn_is_bit_identical_and_abandons_distances() {
    // Regression guard for the early-abandon kernels: on fixed-seed
    // clustered data the threaded engine must return distances that are
    // *bit-identical* to the sequential baseline and to brute force (the
    // abandon checkpoints may only skip points, never change arithmetic),
    // while the trace proves the partial-distance cutoff actually fired.
    let pts = ClusteredGenerator::new(DIM, 8, 0.03).generate(4000, 21);
    let data: Vec<(Point, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let config = EngineConfig::paper_defaults(DIM);
    let par = ParallelKnnEngine::builder(DIM)
        .config(config)
        .disks(DISKS)
        .build(&pts)
        .unwrap();
    let seq = SequentialEngine::build(&pts, config).unwrap();
    // Query from the same distribution so queries land inside clusters.
    let queries = ClusteredGenerator::new(DIM, 8, 0.03).generate(16, 77);

    let mut evals = 0u64;
    let mut saved = 0u64;
    for q in &queries {
        let (got, trace) = par.knn_traced(q, 10).unwrap();
        let (want, _) = seq.knn(q, 10).unwrap();
        let brute = brute_force_knn(&data, q, 10);
        assert_eq!(got.len(), 10);
        for ((g, w), b) in got.iter().zip(&want).zip(&brute) {
            assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "threaded vs sequential");
            assert_eq!(
                g.dist.to_bits(),
                b.dist.to_bits(),
                "threaded vs brute force"
            );
        }
        evals += trace.dist_evals;
        saved += trace.dist_evals_saved;
    }
    assert!(evals > 0, "leaf scans must evaluate distances");
    assert!(saved > 0, "early abandon never fired on clustered data");
    assert!(
        saved <= evals,
        "cannot abandon more evaluations than started"
    );
}

/// Builds scoped and pooled engines over the same points with the same
/// configuration — the pair every backbone parity test compares.
fn engine_pair(pts: &[Point], algorithm: KnnAlgorithm) -> (ParallelKnnEngine, ParallelKnnEngine) {
    let mut config = EngineConfig::paper_defaults(DIM);
    config.algorithm = algorithm;
    let scoped = ParallelKnnEngine::builder(DIM)
        .config(config)
        .disks(DISKS)
        .build(pts)
        .unwrap();
    let pooled = ParallelKnnEngine::builder(DIM)
        .config(config)
        .disks(DISKS)
        .execution(ExecutionMode::Pooled)
        .build(pts)
        .unwrap();
    (scoped, pooled)
}

/// The backbone bit-identity regression: pooled execution must return
/// the same neighbor lists as scoped execution, the sequential baseline,
/// and brute force, AND the same deterministic work trace
/// (`per_disk_pages`, `dist_evals`, pruning counters) as the scoped batch
/// path. Cache hits are excluded: they are execution-order dependent by
/// nature.
fn check_pooled_bit_identity(pts: &[Point], queries: &[Point]) {
    let (scoped, pooled) = engine_pair(pts, KnnAlgorithm::Rkv);
    let config = EngineConfig::paper_defaults(DIM);
    let seq = SequentialEngine::build(pts, config).unwrap();
    let data: Vec<(Point, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();

    let scoped_batch = scoped.knn_batch(queries, 10).unwrap();
    let pooled_batch = pooled.knn_batch(queries, 10).unwrap();
    for (qi, q) in queries.iter().enumerate() {
        let (sres, strace) = &scoped_batch[qi];
        let (pres, ptrace) = &pooled_batch[qi];
        // Single pooled queries go through the same pipeline as batches.
        let (single, single_trace) = pooled.knn_traced(q, 10).unwrap();
        let (seq_res, _) = seq.knn(q, 10).unwrap();
        let brute = brute_force_knn(&data, q, 10);

        for ((((p, s), one), sq), b) in pres.iter().zip(sres).zip(&single).zip(&seq_res).zip(&brute)
        {
            assert_eq!(
                p.dist.to_bits(),
                s.dist.to_bits(),
                "pooled vs scoped, q{qi}"
            );
            assert_eq!(
                p.dist.to_bits(),
                one.dist.to_bits(),
                "batch vs single, q{qi}"
            );
            assert_eq!(
                p.dist.to_bits(),
                sq.dist.to_bits(),
                "pooled vs sequential, q{qi}"
            );
            assert_eq!(
                p.dist.to_bits(),
                b.dist.to_bits(),
                "pooled vs brute force, q{qi}"
            );
        }
        assert_eq!(
            ptrace.per_disk_pages, strace.per_disk_pages,
            "page trace diverged on query {qi}"
        );
        assert_eq!(
            ptrace.dist_evals, strace.dist_evals,
            "dist_evals diverged on query {qi}"
        );
        assert_eq!(
            ptrace.dist_evals_saved, strace.dist_evals_saved,
            "dist_evals_saved diverged on query {qi}"
        );
        assert_eq!(
            ptrace.candidates_pruned, strace.candidates_pruned,
            "pruning trace diverged on query {qi}"
        );
        assert_eq!(single_trace.per_disk_pages, strace.per_disk_pages);
        assert_eq!(single_trace.dist_evals, strace.dist_evals);
    }
}

#[test]
fn pooled_execution_is_bit_identical_on_clustered_data() {
    let pts = ClusteredGenerator::new(DIM, 8, 0.03).generate(4000, 21);
    let queries = ClusteredGenerator::new(DIM, 8, 0.03).generate(16, 77);
    check_pooled_bit_identity(&pts, &queries);
}

#[test]
fn pooled_execution_is_bit_identical_on_correlated_data() {
    let pts = CorrelatedGenerator::new(DIM, 0.05).generate(4000, 22);
    let queries = CorrelatedGenerator::new(DIM, 0.05).generate(16, 78);
    check_pooled_bit_identity(&pts, &queries);
}

#[test]
fn pooled_hs_answers_match_scoped() {
    // HS pipelines disk-by-disk under a carried bound: answers must be
    // identical to the scoped engine and brute force (traces are
    // execution-shaped and not compared).
    let pts = UniformGenerator::new(DIM).generate(4000, 23);
    let (scoped, pooled) = engine_pair(&pts, KnnAlgorithm::Hs);
    let data: Vec<(Point, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    for q in &UniformGenerator::new(DIM).generate(16, 79) {
        let (a, _) = scoped.knn(q, 10).unwrap();
        let (b, _) = pooled.knn(q, 10).unwrap();
        let brute = brute_force_knn(&data, q, 10);
        assert_same_answers(&b, &a);
        for (g, w) in b.iter().zip(&brute) {
            assert_eq!(g.dist.to_bits(), w.dist.to_bits());
        }
    }
}

#[test]
fn pooled_batch_pipelines_without_reordering_results() {
    // Results come back in submission order even though queries overlap
    // across disks, and every trace stays per-query exact (the summed
    // traces equal the global disk-counter delta).
    let pts = UniformGenerator::new(DIM).generate(4000, 24);
    let (_, pooled) = engine_pair(&pts, KnnAlgorithm::Rkv);
    let queries = UniformGenerator::new(DIM).generate(32, 80);
    let scope = pooled.array().begin_query();
    let results = pooled.knn_batch(&queries, 5).unwrap();
    let cost = scope.finish(&pooled.array());
    assert_eq!(results.len(), queries.len());
    let mut summed = vec![0u64; DISKS];
    for (i, (res, trace)) in results.iter().enumerate() {
        let (want, _) = pooled.knn_traced(&queries[i], 5).unwrap();
        assert_same_answers(res, &want);
        for (acc, p) in summed.iter_mut().zip(&trace.per_disk_pages) {
            *acc += p;
        }
    }
    assert_eq!(summed, cost.per_disk_reads);
}

#[test]
fn tiered_engines_are_bit_identical_to_brute_force() {
    // The two-phase leaf scan's whole contract: every tier — engine-wide
    // or per-query — returns the f64 tier's answer bit for bit, while the
    // trace proves the cheap phase actually ran.
    let pts = ClusteredGenerator::new(DIM, 8, 0.03).generate(3000, 31);
    let data: Vec<(Point, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let queries = ClusteredGenerator::new(DIM, 8, 0.03).generate(12, 81);
    let config = EngineConfig::paper_defaults(DIM);
    let base = ParallelKnnEngine::builder(DIM)
        .config(config)
        .disks(DISKS)
        .build(&pts)
        .unwrap();
    for tier in [ScanTier::F32, ScanTier::Q8] {
        let tiered = ParallelKnnEngine::builder(DIM)
            .config(config)
            .disks(DISKS)
            .scan_tier(tier)
            .build(&pts)
            .unwrap();
        let mut lb = 0u64;
        let mut rerank = 0u64;
        for q in &queries {
            let (want, _) = base.knn_traced(q, 10).unwrap();
            let got = tiered.query(q, &QueryOptions::traced(10)).unwrap();
            // Per-query override on the f64-default engine takes the same
            // tiered path.
            let over = base
                .query(q, &QueryOptions::traced(10).with_tier(tier))
                .unwrap();
            let brute = brute_force_knn(&data, q, 10);
            for (((g, w), o), b) in got
                .neighbors
                .iter()
                .zip(&want)
                .zip(&over.neighbors)
                .zip(&brute)
            {
                assert_eq!(g.dist.to_bits(), w.dist.to_bits(), "{tier:?} vs f64");
                assert_eq!(g.dist.to_bits(), o.dist.to_bits(), "{tier:?} vs override");
                assert_eq!(g.dist.to_bits(), b.dist.to_bits(), "{tier:?} vs brute");
            }
            let trace = got.trace.unwrap();
            lb += trace.lb_evals;
            rerank += trace.rerank_evals;
        }
        assert!(lb > 0, "{tier:?}: phase 1 never scanned a row");
        assert!(rerank <= lb, "{tier:?}: more re-ranks than phase-1 rows");
    }
}

#[test]
fn tiered_degraded_queries_stay_exact() {
    // Failover searches inherit the query's tier and the merged degraded
    // answer must still be bit-identical to brute force.
    let pts = ClusteredGenerator::new(DIM, 8, 0.03).generate(2500, 33);
    let data: Vec<(Point, u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let queries = ClusteredGenerator::new(DIM, 8, 0.03).generate(8, 83);
    for tier in [ScanTier::F32, ScanTier::Q8] {
        let e = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .replicas(1)
            .scan_tier(tier)
            .build(&pts)
            .unwrap();
        e.faults().fail(0);
        for q in &queries {
            let got = e.query(q, &QueryOptions::traced(10)).unwrap();
            let brute = brute_force_knn(&data, q, 10);
            for (g, b) in got.neighbors.iter().zip(&brute) {
                assert_eq!(g.dist.to_bits(), b.dist.to_bits(), "{tier:?} degraded");
            }
            let trace = got.trace.unwrap();
            assert!(trace.degraded.is_some(), "fault never engaged");
        }
    }
}

#[test]
fn batch_handles_edge_cases() {
    let (par, _, queries) = setup(KnnAlgorithm::Rkv);
    // Empty batch.
    assert!(par.knn_batch_with(&[], 10, 4).unwrap().is_empty());
    // More workers than queries, and a zero worker count (clamped to 1).
    for workers in [64, 0] {
        let got = par.knn_batch_with(&queries[..2], 3, workers).unwrap();
        assert_eq!(got.len(), 2);
        for (res, trace) in &got {
            assert_eq!(res.len(), 3);
            assert!(trace.total_pages() > 0);
        }
    }
    // Dimension mismatch is rejected.
    let wrong = Point::new(vec![0.5; DIM + 1]).unwrap();
    assert!(par.knn_batch_with(&[wrong], 1, 2).is_err());
}
