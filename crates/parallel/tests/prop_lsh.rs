//! Property tests of the approximate tier — the recall-proven harness.
//!
//! Three contracts pin the LSH backend to the engine's guarantees:
//!
//! 1. **Soundness.** Every `Approx` answer is a true member of
//!    `index ∪ delta` carrying its true f64 distance — approximation may
//!    *miss* neighbors, it may never invent points or mis-measure them.
//!    Holds healthy and with a failed disk serving from mirror shards.
//! 2. **Exact-mode isolation.** Attaching an LSH config leaves
//!    `Exact`-mode answers bit-identical to an engine built without one,
//!    scoped and pooled.
//! 3. **Monotone recall.** For a fixed seed, recall@k never decreases
//!    when tables are added (the seeded family is prefix-stable in the
//!    table index) or when probes widen (the multi-probe sequence is
//!    prefix-stable per table).

use std::collections::HashMap;

use proptest::prelude::*;

use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::knn::brute_force_knn;
use parsim_parallel::{ExecutionMode, IngestConfig, LshConfig, ParallelKnnEngine, QueryOptions};

const DIM: usize = 6;
const DISKS: usize = 8;
const N: usize = 900;

fn recall_at_k(
    engine: &ParallelKnnEngine,
    truth: &[(Point, u64)],
    q: &Point,
    k: usize,
    probes: usize,
) -> usize {
    let want: Vec<u64> = brute_force_knn(truth, q, k)
        .iter()
        .map(|n| n.item)
        .collect();
    let got = engine.query(q, &QueryOptions::approx(k, probes)).unwrap();
    got.neighbors
        .iter()
        .filter(|n| want.contains(&n.item))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Soundness: every Approx answer is a real point of `index ∪ delta`
    /// with its true f64 distance — on the healthy path and failed over
    /// to mirror shards.
    #[test]
    fn approx_answers_are_true_members_with_true_distances(
        seed in any::<u64>(),
        k in 1usize..=10,
        probes in 1usize..=6,
    ) {
        let pts = UniformGenerator::new(DIM).generate(N, seed);
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .replicas(1)
            .ingest(IngestConfig::new(256))
            .approx(LshConfig::new(seed ^ 0xA5))
            .build(&pts)
            .unwrap();
        let mut members: HashMap<u64, Point> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u64, p.clone()))
            .collect();
        // Delta-buffered points are part of the answer set immediately.
        for p in UniformGenerator::new(DIM).generate(40, seed.wrapping_add(9)) {
            let id = engine.insert(p.clone()).unwrap();
            members.insert(id, p);
        }
        let queries = UniformGenerator::new(DIM).generate(5, seed.wrapping_add(1));
        for q in &queries {
            let res = engine.query(q, &QueryOptions::approx(k, probes)).unwrap();
            prop_assert!(res.neighbors.len() <= k);
            for n in &res.neighbors {
                let p = members.get(&n.item);
                prop_assert!(p.is_some(), "item {} is not a dataset member", n.item);
                let true_dist = p.unwrap().dist(q);
                prop_assert_eq!(n.dist.to_bits(), true_dist.to_bits(),
                    "item {} reported {} instead of its true distance {}",
                    n.item, n.dist, true_dist);
            }
        }
        // The delta overlay merges exactly in Approx mode too: a query
        // sitting on a buffered point always surfaces it at distance 0.
        let (delta_id, delta_point) = members
            .iter()
            .max_by_key(|(id, _)| **id)
            .map(|(id, p)| (*id, p.clone()))
            .unwrap();
        let res = engine.query(&delta_point, &QueryOptions::approx(1, probes)).unwrap();
        prop_assert_eq!(res.neighbors[0].item, delta_id);
        prop_assert_eq!(res.neighbors[0].dist.to_bits(), 0f64.to_bits());
        // Fail a disk: probes fail over to the mirror shards and the
        // soundness contract must survive.
        engine.faults().fail(0);
        for q in &queries {
            let res = engine.query(q, &QueryOptions::approx(k, probes)).unwrap();
            for n in &res.neighbors {
                let p = members.get(&n.item).expect("member survives failover");
                prop_assert_eq!(n.dist.to_bits(), p.dist(q).to_bits());
            }
        }
    }

    /// Exact-mode isolation: an engine with an LSH tier attached answers
    /// Exact queries bit-identically to one built without it.
    #[test]
    fn exact_answers_ignore_the_lsh_tier(
        seed in any::<u64>(),
        k in 1usize..=12,
    ) {
        let pts = UniformGenerator::new(DIM).generate(N, seed);
        let plain = ParallelKnnEngine::builder(DIM).disks(DISKS).build(&pts).unwrap();
        let with_lsh = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .approx(LshConfig::new(seed))
            .build(&pts)
            .unwrap();
        let pooled_lsh = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .execution(ExecutionMode::Pooled)
            .approx(LshConfig::new(seed))
            .build(&pts)
            .unwrap();
        for q in UniformGenerator::new(DIM).generate(5, seed.wrapping_add(2)) {
            let a = plain.query(&q, &QueryOptions::new(k)).unwrap();
            let b = with_lsh.query(&q, &QueryOptions::new(k)).unwrap();
            let c = pooled_lsh.query(&q, &QueryOptions::new(k)).unwrap();
            prop_assert_eq!(a.neighbors.len(), b.neighbors.len());
            for ((x, y), z) in a.neighbors.iter().zip(&b.neighbors).zip(&c.neighbors) {
                prop_assert_eq!(x.item, y.item);
                prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                prop_assert_eq!(x.item, z.item);
                prop_assert_eq!(x.dist.to_bits(), z.dist.to_bits());
            }
        }
    }

    /// Monotone recall on clustered data: for a fixed seed, recall@k is
    /// non-decreasing in the table count and in the probe count —
    /// pointwise per query, because the L+1-table family contains the
    /// L-table family verbatim and the probe sequence is prefix-stable.
    #[test]
    fn recall_is_monotone_in_tables_and_probes(
        seed in any::<u64>(),
        k in 1usize..=10,
    ) {
        let pts = ClusteredGenerator::new(DIM, 8, 0.05).generate(N, seed);
        let truth: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let queries = ClusteredGenerator::new(DIM, 8, 0.05).generate(4, seed.wrapping_add(3));
        let engines: Vec<ParallelKnnEngine> = [2usize, 4, 8]
            .iter()
            .map(|&tables| {
                ParallelKnnEngine::builder(DIM)
                    .disks(DISKS)
                    .approx(LshConfig::new(seed).tables(tables).hyperplanes(10))
                    .build(&pts)
                    .unwrap()
            })
            .collect();
        for q in &queries {
            // Non-decreasing in probes, per engine.
            for e in &engines {
                let mut prev = 0;
                for probes in [1usize, 2, 4, 8] {
                    let r = recall_at_k(e, &truth, q, k, probes);
                    prop_assert!(r >= prev,
                        "recall dropped {prev} -> {r} when probes widened to {probes}");
                    prev = r;
                }
            }
            // Non-decreasing in tables, per probe width.
            for probes in [1usize, 4] {
                let mut prev = 0;
                for e in &engines {
                    let r = recall_at_k(e, &truth, q, k, probes);
                    prop_assert!(r >= prev,
                        "recall dropped {prev} -> {r} when tables grew");
                    prev = r;
                }
            }
        }
    }
}
