//! Ingest regression tests for the approximate tier: churn (interleaved
//! inserts and removes) under `Approx`-mode queries must never surface a
//! tombstoned id and never miss a delta-buffered point — the overlay
//! merge is mode-independent. Also pins the typed
//! [`EngineError::ApproxUnavailable`] rejection for engines built
//! without the tier.

use std::collections::HashSet;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_parallel::{
    EngineError, ExecutionMode, IngestConfig, LshConfig, ParallelKnnEngine, QueryOptions,
};

const DIM: usize = 5;

#[test]
fn churn_under_approx_never_surfaces_tombstones_or_misses_delta_points() {
    let pts = UniformGenerator::new(DIM).generate(600, 31);
    let engine = ParallelKnnEngine::builder(DIM)
        .disks(6)
        .ingest(IngestConfig::new(512))
        .approx(LshConfig::new(5).tables(6).hyperplanes(9))
        .build(&pts)
        .unwrap();
    let extra = UniformGenerator::new(DIM).generate(120, 32);
    let mut live_delta = Vec::new();
    let mut tombstoned = HashSet::new();
    for (i, p) in extra.iter().enumerate() {
        let id = engine.insert(p.clone()).unwrap();
        live_delta.push((id, p.clone()));
        // Every third step removes a main-index point; every fourth
        // removes an earlier buffered insert.
        if i % 3 == 0 {
            let victim = (i * 7 % 600) as u64;
            engine.remove(victim).unwrap();
            tombstoned.insert(victim);
        }
        if i % 4 == 0 && live_delta.len() > 1 {
            let (id, _) = live_delta.remove(0);
            engine.remove(id).unwrap();
            tombstoned.insert(id);
        }
    }
    let queries = UniformGenerator::new(DIM).generate(20, 33);
    for probes in [1usize, 4] {
        for q in &queries {
            let res = engine.query(q, &QueryOptions::approx(10, probes)).unwrap();
            for n in &res.neighbors {
                assert!(
                    !tombstoned.contains(&n.item),
                    "tombstoned id {} surfaced by an Approx query",
                    n.item
                );
            }
        }
        // Every live buffered point is found exactly where it sits.
        for (id, p) in &live_delta {
            let res = engine.query(p, &QueryOptions::approx(1, probes)).unwrap();
            assert_eq!(res.neighbors[0].item, *id, "delta point missed");
            assert_eq!(res.neighbors[0].dist, 0.0);
        }
    }
    // Reorganize materializes the delta into the main index (and the
    // rebuilt LSH shards); the same contracts hold afterwards.
    engine.reorganize().unwrap();
    assert_eq!(engine.delta_size(), 0);
    for q in &queries {
        let res = engine.query(q, &QueryOptions::approx(10, 2)).unwrap();
        for n in &res.neighbors {
            assert!(!tombstoned.contains(&n.item));
        }
    }
    for (id, p) in &live_delta {
        let res = engine.query(p, &QueryOptions::approx(1, 2)).unwrap();
        assert_eq!(res.neighbors[0].item, *id);
        assert_eq!(res.neighbors[0].dist, 0.0);
    }
}

#[test]
fn approx_without_the_tier_is_a_typed_rejection() {
    let pts = UniformGenerator::new(DIM).generate(200, 41);
    for mode in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(4)
            .execution(mode)
            .build(&pts)
            .unwrap();
        let q = &pts[0];
        assert!(matches!(
            engine.query(q, &QueryOptions::approx(5, 2)),
            Err(EngineError::ApproxUnavailable)
        ));
        // Exact queries are untouched by the rejection path.
        let (res, _) = engine.knn(q, 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
        // The batch path surfaces the same typed error.
        assert!(matches!(
            engine.query_batch(std::slice::from_ref(q), &QueryOptions::approx(5, 2)),
            Err(EngineError::ApproxUnavailable)
        ));
    }
}

#[test]
fn approx_metrics_flow_through_the_registry() {
    let pts = UniformGenerator::new(DIM).generate(500, 51);
    let engine = ParallelKnnEngine::builder(DIM)
        .disks(6)
        .metrics(true)
        .approx(LshConfig::new(9))
        .build(&pts)
        .unwrap();
    let q = &pts[7];
    let res = engine
        .query(q, &QueryOptions::approx(5, 3).with_trace(true))
        .unwrap();
    let trace = res.trace.expect("trace requested");
    assert!(trace.lsh_probes > 0, "probe counter never moved");
    assert!(trace.lsh_candidates > 0, "candidate counter never moved");
    let s = engine.metrics().expect("metrics on").snapshot();
    assert_eq!(s.counter_total("parsim_lsh_probes_total"), trace.lsh_probes);
    assert_eq!(
        s.counter_total("parsim_lsh_candidates_total"),
        trace.lsh_candidates
    );
    assert_eq!(
        s.counter_total("parsim_lsh_empty_probes_total"),
        trace.lsh_empty_probes
    );
    // An Exact query on the same engine leaves the LSH counters alone.
    engine.knn(q, 5).unwrap();
    let s2 = engine.metrics().unwrap().snapshot();
    assert_eq!(
        s2.counter_total("parsim_lsh_probes_total"),
        trace.lsh_probes
    );
}
