//! Serve-layer tests: admission backpressure, modeled-deadline shedding,
//! wave coalescing, and the exact reconciliation of the shed metrics
//! against the typed errors the callers saw.

use std::time::Duration;

use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_parallel::{
    AdmissionConfig, EngineError, ExecutionMode, ParallelKnnEngine, PendingQuery, QueryOptions,
    QueryResult,
};

const DIM: usize = 6;
const DISKS: usize = 8;
const K: usize = 10;

fn points() -> Vec<Point> {
    UniformGenerator::new(DIM).generate(3000, 7)
}

fn builder() -> parsim_parallel::EngineBuilder {
    ParallelKnnEngine::builder(DIM).disks(DISKS)
}

/// Capacity-zero queues reject every submission with the typed error —
/// deterministically, since nothing can ever be admitted — and the
/// overloaded-shed counter matches the rejection count exactly.
#[test]
fn zero_capacity_rejects_every_submission() {
    let pts = points();
    let engine = builder()
        .admission(AdmissionConfig::new(0))
        .metrics(true)
        .build(&pts)
        .unwrap();
    assert_eq!(engine.execution(), ExecutionMode::Pooled);
    let queries = UniformGenerator::new(DIM).generate(12, 31);
    let opts = QueryOptions::new(K);
    let mut rejected = 0u64;
    for q in &queries {
        match engine.submit(q, &opts) {
            Err(EngineError::Overloaded { disk, depth }) => {
                assert!(disk < DISKS);
                assert_eq!(depth, 0);
                rejected += 1;
            }
            Err(other) => panic!("expected Overloaded, got {other}"),
            Ok(_) => panic!("expected Overloaded, got an admitted query"),
        }
    }
    assert_eq!(rejected, queries.len() as u64);
    let s = engine.metrics().unwrap().snapshot();
    assert_eq!(
        s.counter_with("parsim_queries_shed_total", &[("reason", "overloaded")]),
        Some(rejected)
    );
    // Sheds are not failures, and nothing completed.
    assert_eq!(s.counter_total("parsim_queries_failed_total"), 0);
    assert_eq!(s.counter_total("parsim_queries_completed_total"), 0);
    assert_eq!(s.counter_total("parsim_queries_started_total"), rejected);
}

/// Under a tiny queue bound every submission is either answered or
/// typed-rejected — never lost, never deadlocked — and the shed counter
/// reconciles with the rejections the caller saw.
#[test]
fn bounded_queues_answer_or_reject_every_query() {
    let pts = points();
    let engine = builder()
        .admission(AdmissionConfig::new(1))
        .metrics(true)
        .build(&pts)
        .unwrap();
    let reference = builder().build(&pts).unwrap();
    let queries = UniformGenerator::new(DIM).generate(200, 32);
    let opts = QueryOptions::new(K);
    let mut pending: Vec<(usize, PendingQuery)> = Vec::new();
    let mut rejected = 0u64;
    for (i, q) in queries.iter().enumerate() {
        match engine.submit(q, &opts) {
            Ok(handle) => pending.push((i, handle)),
            Err(EngineError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let answered = pending.len() as u64;
    assert_eq!(answered + rejected, queries.len() as u64);
    // Every admitted query completes with the exact answer.
    for (i, handle) in pending {
        let result = handle.wait().unwrap();
        let want = reference.knn(&queries[i], K).unwrap().0;
        assert_eq!(result.neighbors, want);
    }
    let s = engine.metrics().unwrap().snapshot();
    assert_eq!(
        s.counter_with("parsim_queries_shed_total", &[("reason", "overloaded")]),
        Some(rejected)
    );
    assert_eq!(s.counter_total("parsim_queries_completed_total"), answered);
    assert_eq!(s.counter_total("parsim_queries_failed_total"), 0);
    // The queue-depth gauges drained back to zero with the pool idle.
    let depths = s.gauges("parsim_worker_queue_depth");
    assert_eq!(depths.len(), DISKS);
    assert!(depths.iter().all(|(_, v)| *v == 0), "depths: {depths:?}");
}

/// A zero deadline budget sheds every query that needs more than one
/// pipeline hop; each shed surfaces as the typed error, and the deadline
/// shed counter plus the overshoot histogram reconcile exactly.
#[test]
fn zero_deadline_sheds_multi_hop_queries() {
    let pts = points();
    let engine = builder()
        .admission(AdmissionConfig::unbounded().with_deadline(Duration::ZERO))
        .metrics(true)
        .build(&pts)
        .unwrap();
    let queries = UniformGenerator::new(DIM).generate(40, 33);
    let opts = QueryOptions::new(K);
    let mut shed = 0u64;
    let mut completed = 0u64;
    for q in &queries {
        match engine.submit(q, &opts).unwrap().wait() {
            Ok(_) => completed += 1,
            Err(EngineError::DeadlineExceeded {
                budget_micros,
                spent_micros,
            }) => {
                assert_eq!(budget_micros, 0);
                assert!(spent_micros > 0);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // On 8 disks a k-NN query virtually always needs several disks; at
    // least some queries must hop (and therefore shed).
    assert!(shed > 0, "no query was shed under a zero budget");
    let s = engine.metrics().unwrap().snapshot();
    assert_eq!(
        s.counter_with("parsim_queries_shed_total", &[("reason", "deadline")]),
        Some(shed)
    );
    assert_eq!(s.counter_total("parsim_queries_completed_total"), completed);
    assert_eq!(s.counter_total("parsim_queries_failed_total"), 0);
    let h = s
        .histogram_with("parsim_deadline_overshoot_micros", &[])
        .unwrap();
    assert_eq!(h.count, shed);
}

/// A generous budget never sheds, and the per-query deadline override
/// beats the engine-wide default in both directions.
#[test]
fn deadline_overrides_compose() {
    let pts = points();
    let engine = builder()
        .admission(AdmissionConfig::unbounded().with_deadline(Duration::ZERO))
        .build(&pts)
        .unwrap();
    let q = UniformGenerator::new(DIM).generate(1, 34).pop().unwrap();
    // Per-query override relaxes the impossible engine default.
    let relaxed = QueryOptions::new(K).with_deadline(Duration::from_secs(3600));
    let result = engine.submit(&q, &relaxed).unwrap().wait().unwrap();
    assert_eq!(result.neighbors.len(), K);
    // And a fresh engine without a default still sheds under a per-query
    // zero budget (multi-hop queries only, as above).
    let engine = builder()
        .admission(AdmissionConfig::unbounded())
        .build(&pts)
        .unwrap();
    let strict = QueryOptions::new(K).with_deadline(Duration::ZERO);
    let queries = UniformGenerator::new(DIM).generate(20, 35);
    let shed = queries
        .iter()
        .filter(|q| {
            matches!(
                engine.submit(q, &strict).unwrap().wait(),
                Err(EngineError::DeadlineExceeded { .. })
            )
        })
        .count();
    assert!(shed > 0);
}

/// An admission engine with no pressure (unbounded queues, no deadline,
/// no coalescing) answers bit-identically — neighbors and logical trace —
/// to the plain pooled engine: the serve layer is behavior-neutral.
#[test]
fn unpressured_admission_engine_matches_plain_pooled() {
    let pts = points();
    let plain = builder()
        .execution(ExecutionMode::Pooled)
        .build(&pts)
        .unwrap();
    let served = builder()
        .admission(AdmissionConfig::unbounded())
        .build(&pts)
        .unwrap();
    let queries = UniformGenerator::new(DIM).generate(24, 36);
    let opts = QueryOptions::traced(K);
    for q in &queries {
        let a = plain.submit(q, &opts).unwrap().wait().unwrap();
        let b = served.submit(q, &opts).unwrap().wait().unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(ta.per_disk_pages, tb.per_disk_pages);
        assert_eq!(ta.dist_evals, tb.dist_evals);
        assert_eq!(ta.candidates_pruned, tb.candidates_pruned);
        assert_eq!(tb.coalesced_reads(), 0);
    }
}

/// A wave of identical queries with coalescing on: answers and logical
/// page traces are bit-identical to individual submission, the wave
/// shares physical reads (coalesced visits observed), and the per-wave
/// coalesced total matches the m−1 rule for fully overlapping queries.
#[test]
fn wave_coalesces_shared_pages_without_changing_answers() {
    let pts = ClusteredGenerator::new(DIM, 10, 0.05).generate(4000, 8);
    let engine = builder()
        .admission(AdmissionConfig::unbounded().with_coalescing(true))
        .metrics(true)
        .build(&pts)
        .unwrap();
    // The uncoalesced reference must run the same pooled RKV pipeline
    // (the scoped single-query path is the shared-bound Var. 3 search,
    // whose page traces are legitimately different).
    let reference = builder()
        .execution(ExecutionMode::Pooled)
        .build(&pts)
        .unwrap();
    let q = ClusteredGenerator::new(DIM, 10, 0.05)
        .generate(1, 9)
        .pop()
        .unwrap();
    let m = 6usize;
    let wave: Vec<Point> = std::iter::repeat(q.clone()).take(m).collect();
    let opts = QueryOptions::traced(K);
    let results: Vec<QueryResult> = engine
        .query_wave(&wave, &opts)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let (want, want_trace) = {
        let r = reference.submit(&q, &opts).unwrap().wait().unwrap();
        (r.neighbors, r.trace.unwrap())
    };
    let mut coalesced_total = 0u64;
    for r in &results {
        assert_eq!(r.neighbors, want);
        let t = r.trace.as_ref().unwrap();
        // Logical traces are bit-identical: coalescing only skips the
        // physical charge, never the search work.
        assert_eq!(t.per_disk_pages, want_trace.per_disk_pages);
        assert_eq!(t.dist_evals, want_trace.dist_evals);
        coalesced_total += t.coalesced_reads();
    }
    // m identical queries in one wave: whichever member charges a page,
    // the other m−1 requests of that page coalesce — but only where wave
    // members actually overlapped on a disk's window at the same time,
    // so the total is bounded by (m−1) × pages and must be positive for
    // fully identical queries pipelined back-to-back.
    let pages: u64 = want_trace.per_disk_pages.iter().sum();
    assert!(coalesced_total > 0, "no read was coalesced across the wave");
    assert!(coalesced_total <= (m as u64 - 1) * pages);
    // The registry saw exactly the traces' coalesced visits.
    let s = engine.metrics().unwrap().snapshot();
    assert_eq!(
        s.counter_total("parsim_coalesced_reads_total"),
        coalesced_total
    );
}

/// Distinct waves never share reads: back-to-back single submissions on
/// a coalescing engine behave exactly like a coalescing-off engine.
#[test]
fn separate_submissions_never_coalesce() {
    let pts = points();
    let engine = builder()
        .admission(AdmissionConfig::unbounded().with_coalescing(true))
        .build(&pts)
        .unwrap();
    let q = UniformGenerator::new(DIM).generate(1, 40).pop().unwrap();
    let opts = QueryOptions::traced(K);
    let a = engine.submit(&q, &opts).unwrap().wait().unwrap();
    let b = engine.submit(&q, &opts).unwrap().wait().unwrap();
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(b.trace.unwrap().coalesced_reads(), 0);
}

/// Dropping an admission engine with queries still queued drains them
/// (priority queues run the same drain-then-stop shutdown as the FIFO
/// pool) and every accepted handle stays resolvable.
#[test]
fn drop_with_queued_serve_queries_drains() {
    let pts = points();
    let engine = builder()
        .admission(AdmissionConfig::new(64))
        .build(&pts)
        .unwrap();
    let queries = UniformGenerator::new(DIM).generate(64, 41);
    let opts = QueryOptions::new(K);
    let pending: Vec<PendingQuery> = queries
        .iter()
        .filter_map(|q| engine.submit(q, &opts).ok())
        .collect();
    assert!(!pending.is_empty());
    drop(engine);
    for handle in pending {
        let result = handle.wait().unwrap();
        assert_eq!(result.neighbors.len(), K);
    }
}

/// Reorganization preserves the admission policy, like every other
/// builder knob.
#[test]
fn reorganize_preserves_admission() {
    let pts = points();
    let cfg = AdmissionConfig::new(32)
        .with_deadline(Duration::from_secs(1))
        .with_coalescing(true);
    let engine = builder().admission(cfg).build(&pts).unwrap();
    assert_eq!(engine.admission(), Some(cfg));
    engine.reorganize().unwrap();
    assert_eq!(engine.admission(), Some(cfg));
    assert_eq!(engine.execution(), ExecutionMode::Pooled);
    let q = UniformGenerator::new(DIM).generate(1, 42).pop().unwrap();
    let r = engine
        .submit(&q, &QueryOptions::new(K))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(r.neighbors.len(), K);
}
