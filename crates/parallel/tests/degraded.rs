//! Fault-tolerance tests: injected disk failures, replica failover, and
//! the bit-identity guarantee of degraded-mode k-NN.
//!
//! The engines are built once and shared; every test serializes on a
//! mutex because fault injection mutates shared disk-array state, and
//! heals all faults before returning.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::knn::Neighbor;
use parsim_parallel::{EngineError, ParallelKnnEngine, QueryOptions, RetryPolicy};

const DIM: usize = 6;
const DISKS: usize = 10; // colors_required(6) == 8, so disks 8 and 9 are mirror spares
const K: usize = 10;

struct Setup {
    /// Replicated engine (one mirror per bucket).
    repl: ParallelKnnEngine,
    /// Un-replicated engine over the same points.
    plain: ParallelKnnEngine,
    queries: Vec<Point>,
    /// Healthy answers of `repl` for each query, in order.
    healthy: Vec<Vec<Neighbor>>,
}

static SETUP: OnceLock<Setup> = OnceLock::new();
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (&'static Setup, MutexGuard<'static, ()>) {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let s = SETUP.get_or_init(|| {
        let pts = UniformGenerator::new(DIM).generate(4000, 7);
        let repl = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .replicas(1)
            .build(&pts)
            .unwrap();
        let plain = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .build(&pts)
            .unwrap();
        let queries = UniformGenerator::new(DIM).generate(6, 99);
        let healthy = queries.iter().map(|q| repl.knn(q, K).unwrap().0).collect();
        Setup {
            repl,
            plain,
            queries,
            healthy,
        }
    });
    s.repl.faults().heal_all();
    s.plain.faults().heal_all();
    (s, guard)
}

/// A pair of disks neither of which hosts any replica of the other, so
/// both can fail at once without losing a bucket.
fn independent_pair(e: &ParallelKnnEngine) -> (usize, usize) {
    for d in 0..e.disks() {
        for f in (d + 1)..e.disks() {
            if !e.replica_disks_of(d).contains(&f) && !e.replica_disks_of(f).contains(&d) {
                return (d, f);
            }
        }
    }
    panic!("no independent disk pair exists");
}

/// A disk with data whose replicas live on some other disk.
fn disk_with_data(e: &ParallelKnnEngine) -> usize {
    e.load_distribution()
        .iter()
        .position(|&l| l > 0)
        .expect("some disk holds data")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline guarantee: with one replica per bucket, failing ANY
    /// single disk leaves every k-NN answer bit-identical to the healthy
    /// run — same distances, same item ids, same order.
    #[test]
    fn any_single_failure_is_bit_identical(disk in 0usize..DISKS, qi in 0usize..6) {
        let (s, _guard) = setup();
        s.repl.faults().fail(disk);
        let (got, _) = s.repl.knn(&s.queries[qi], K).unwrap();
        s.repl.faults().heal_all();
        prop_assert_eq!(&got, &s.healthy[qi]);
    }

    /// Slow and flaky disks (any single one, any seed) never change the
    /// answer either — they only cost retries and modeled latency.
    #[test]
    fn any_single_soft_fault_is_bit_identical(
        disk in 0usize..DISKS,
        qi in 0usize..6,
        flaky in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (s, _guard) = setup();
        if flaky {
            s.repl.faults().seed(disk, seed);
            s.repl.faults().flaky(disk, 0.2);
        } else {
            s.repl.faults().slow(disk, 8.0);
        }
        let (got, trace) = s.repl.knn_traced(&s.queries[qi], K).unwrap();
        s.repl.faults().heal_all();
        prop_assert_eq!(&got, &s.healthy[qi]);
        prop_assert!(trace.degraded.is_some());
    }
}

#[test]
fn two_failures_sharing_no_bucket_still_succeed() {
    let (s, _guard) = setup();
    let (d, f) = independent_pair(&s.repl);
    s.repl.faults().fail(d);
    s.repl.faults().fail(f);
    for (q, want) in s.queries.iter().zip(&s.healthy) {
        let (got, trace) = s.repl.knn_traced(q, K).unwrap();
        assert_eq!(&got, want);
        let deg = trace.degraded.expect("degraded record present");
        // Only disks that actually held data fail over.
        for lost in &deg.failed_over {
            assert!(*lost == d || *lost == f);
        }
    }
    s.repl.faults().heal_all();
}

#[test]
fn lost_unreplicated_bucket_is_a_typed_error() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.plain);
    s.plain.faults().fail(d);
    let err = s.plain.knn(&s.queries[0], K).unwrap_err();
    assert_eq!(err, EngineError::BucketUnavailable { disk: d });
    s.plain.faults().heal_all();
}

#[test]
fn failed_replica_host_is_a_typed_error() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.repl);
    let host = *s
        .repl
        .replica_disks_of(d)
        .first()
        .expect("replicated disk has a mirror host");
    s.repl.faults().fail(d);
    s.repl.faults().fail(host);
    let err = s.repl.knn(&s.queries[0], K).unwrap_err();
    assert!(
        matches!(err, EngineError::BucketUnavailable { .. }),
        "got {err:?}"
    );
    s.repl.faults().heal_all();
}

#[test]
fn trace_reports_the_failover() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.repl);
    s.repl.faults().fail(d);
    let (got, trace) = s.repl.knn_traced(&s.queries[1], K).unwrap();
    s.repl.faults().heal_all();
    assert_eq!(&got, &s.healthy[1]);
    let deg = trace.degraded.expect("degraded record present");
    assert_eq!(deg.failed_over, vec![d]);
    assert!(deg.replica_pages > 0, "mirror trees were read");
    // The failed disk itself served nothing.
    assert_eq!(trace.per_disk_pages[d], 0);
    // A healthy run carries no degraded record.
    let (_, healthy_trace) = s.repl.knn_traced(&s.queries[1], K).unwrap();
    assert!(healthy_trace.degraded.is_none());
}

#[test]
fn slow_disk_stretches_the_modeled_critical_path() {
    let (s, _guard) = setup();
    let (_, healthy_trace) = s.repl.knn_traced(&s.queries[2], K).unwrap();
    let d = disk_with_data(&s.repl);
    s.repl.faults().slow(d, 50.0);
    let (got, trace) = s.repl.knn_traced(&s.queries[2], K).unwrap();
    s.repl.faults().heal_all();
    assert_eq!(&got, &s.healthy[2]);
    let deg = trace.degraded.expect("degraded record present");
    assert!(deg.failed_over.is_empty(), "a slow disk is not lost");
    assert!(
        trace.modeled_parallel > healthy_trace.modeled_parallel,
        "50x slowdown on a data disk must stretch the critical path"
    );
    assert!(deg.added_latency > Duration::ZERO);
}

#[test]
fn hopelessly_flaky_disk_fails_over_after_retries() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.repl);
    s.repl.faults().flaky(d, 1.0);
    let opts = QueryOptions::traced(K).with_retry(RetryPolicy::default());
    let result = s.repl.query(&s.queries[3], &opts).unwrap();
    s.repl.faults().heal_all();
    assert_eq!(&result.neighbors, &s.healthy[3]);
    let deg = result.trace.unwrap().degraded.expect("degraded record");
    assert_eq!(deg.failed_over, vec![d]);
    // Every read error burned the full retry budget before failover.
    assert_eq!(deg.retries, u64::from(RetryPolicy::default().max_retries));
    assert!(deg.replica_pages > 0);
}

#[test]
fn flaky_unreplicated_disk_beyond_retries_is_a_typed_error() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.plain);
    s.plain.faults().flaky(d, 1.0);
    let err = s.plain.knn(&s.queries[3], K).unwrap_err();
    assert_eq!(err, EngineError::BucketUnavailable { disk: d });
    s.plain.faults().heal_all();
}

#[test]
fn zero_timeout_fails_everything_over_and_stays_exact() {
    let (s, _guard) = setup();
    // A zero budget abandons every disk that read anything: the whole
    // answer is served from replicas, and is still bit-identical.
    let opts = QueryOptions::traced(K).with_timeout(Duration::ZERO);
    let result = s.repl.query(&s.queries[4], &opts).unwrap();
    assert_eq!(&result.neighbors, &s.healthy[4]);
    let deg = result.trace.unwrap().degraded.expect("degraded record");
    assert!(!deg.failed_over.is_empty());
    assert!(deg.replica_pages > 0);

    // A generous budget degrades nothing — but the record is attached,
    // because the engine ran with failure handling engaged.
    let opts = QueryOptions::traced(K).with_timeout(Duration::from_secs(3600));
    let result = s.repl.query(&s.queries[4], &opts).unwrap();
    assert_eq!(&result.neighbors, &s.healthy[4]);
    let deg = result.trace.unwrap().degraded.expect("degraded record");
    assert!(deg.failed_over.is_empty());
    assert_eq!(deg.replica_pages, 0);
    assert_eq!(deg.added_latency, Duration::ZERO);
}

#[test]
fn degraded_batch_matches_single_queries() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.repl);
    s.repl.faults().fail(d);
    let opts = QueryOptions::traced(K).with_workers(3);
    let batch = s.repl.query_batch(&s.queries, &opts).unwrap();
    s.repl.faults().heal_all();
    assert_eq!(batch.len(), s.queries.len());
    for (r, want) in batch.iter().zip(&s.healthy) {
        assert_eq!(&r.neighbors, want);
        assert!(r.trace.as_ref().unwrap().degraded.is_some());
    }
}

#[test]
fn legacy_entry_points_ride_the_same_degraded_path() {
    let (s, _guard) = setup();
    let d = disk_with_data(&s.repl);
    s.repl.faults().fail(d);
    let (a, _) = s.repl.knn(&s.queries[5], K).unwrap();
    let (b, trace) = s.repl.knn_traced(&s.queries[5], K).unwrap();
    let batch = s.repl.knn_batch(&s.queries[5..6], K).unwrap();
    s.repl.faults().heal_all();
    assert_eq!(&a, &s.healthy[5]);
    assert_eq!(&b, &s.healthy[5]);
    assert_eq!(&batch[0].0, &s.healthy[5]);
    assert!(trace.degraded.is_some());
    assert!(batch[0].1.degraded.is_some());
}
