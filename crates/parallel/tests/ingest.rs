//! Property and stress tests of streaming ingest: a live engine whose
//! writes flow through the delta overlay must answer every k-NN query
//! **bit-identically** to a from-scratch bulk load of the same logical
//! contents — while inserts and removes interleave with queries, with a
//! failed disk serving from replicas, and across a live shadow-rebuild
//! swap.

use proptest::prelude::*;

use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::Neighbor;
use parsim_parallel::{EngineBuilder, IngestConfig, ParallelKnnEngine};

const DIM: usize = 6;
const DISKS: usize = 8;

/// Normalizes an answer for bit-exact comparison: `(dist bits, item)`,
/// sorted. Two exact engines may tie-break equal distances differently
/// only when distinct items are exactly equidistant; sorting by the pair
/// makes the comparison insensitive to that (and to nothing else).
fn normalized(neighbors: &[Neighbor]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = neighbors
        .iter()
        .map(|nb| (nb.dist.to_bits(), nb.item))
        .collect();
    v.sort_unstable();
    v
}

/// Brute-force k smallest distances over `(point, id)` items.
fn brute_kth(items: &[(Point, u64)], q: &Point, k: usize) -> f64 {
    let mut dists: Vec<f64> = items.iter().map(|(p, _)| q.dist(p)).collect();
    dists.sort_by(f64::total_cmp);
    dists[k.min(dists.len()) - 1]
}

/// Replays a deterministic insert/remove stream against a live engine
/// while recording the logical contents, querying after every few ops.
/// Returns the final contents as `(point, id)` items.
fn churn(
    engine: &ParallelKnnEngine,
    initial: &[Point],
    stream: &[Point],
    queries: &[Point],
    k: usize,
) -> Vec<(Point, u64)> {
    let mut contents: Vec<(Point, u64)> = initial
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    for (i, p) in stream.iter().enumerate() {
        if i % 4 == 3 {
            // Remove the oldest surviving point (exercises both
            // buffered-insert removal and main-index tombstones).
            let (_, id) = contents.remove(i % contents.len());
            engine.remove(id).unwrap();
        } else {
            let id = engine.insert(p.clone()).unwrap();
            contents.push((p.clone(), id));
        }
        if i % 7 == 0 {
            let q = &queries[i % queries.len()];
            let (got, _) = engine.knn(q, k).unwrap();
            let reference: Vec<Neighbor> = {
                let fresh = EngineBuilder::new(DIM)
                    .disks(DISKS)
                    .build_with_items(contents.clone())
                    .unwrap();
                fresh.knn(q, k).unwrap().0
            };
            prop_assert_eq!(
                normalized(&got),
                normalized(&reference),
                "divergence after op {} of the stream",
                i
            );
        }
    }
    contents
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Healthy path: a live engine under insert/remove churn answers
    /// bit-identically to a from-scratch bulk load of the union, at
    /// every probe point and at quiescence — before and after a full
    /// reorganize.
    #[test]
    fn interleaved_writes_match_fresh_bulk_load(
        seed in any::<u64>(),
        k in 1usize..=10,
    ) {
        let initial = UniformGenerator::new(DIM).generate(600, seed);
        let stream = ClusteredGenerator::new(DIM, 4, 0.05).generate(120, seed ^ 1);
        let queries = UniformGenerator::new(DIM).generate(8, seed ^ 2);
        let engine = EngineBuilder::new(DIM)
            .disks(DISKS)
            .ingest(IngestConfig::new(4096))
            .build(&initial)
            .unwrap();

        let contents = churn(&engine, &initial, &stream, &queries, k);
        prop_assert_eq!(engine.len(), contents.len());

        let fresh = EngineBuilder::new(DIM)
            .disks(DISKS)
            .build_with_items(contents.clone())
            .unwrap();
        for q in &queries {
            let (got, _) = engine.knn(q, k).unwrap();
            let (want, _) = fresh.knn(q, k).unwrap();
            prop_assert_eq!(normalized(&got), normalized(&want));
        }

        // Reorganize drains the delta; answers must not move by a bit.
        engine.reorganize().unwrap();
        prop_assert_eq!(engine.delta_size(), 0);
        prop_assert_eq!(engine.len(), contents.len());
        for q in &queries {
            let (got, _) = engine.knn(q, k).unwrap();
            let (want, _) = fresh.knn(q, k).unwrap();
            prop_assert_eq!(normalized(&got), normalized(&want));
        }
    }

    /// Degraded path: the same churn with replicas on and a hard-failed
    /// disk — the delta overlay must stay exact while the failed disk's
    /// buckets are served from mirrors.
    #[test]
    fn interleaved_writes_stay_exact_degraded(
        seed in any::<u64>(),
        failed in 0usize..DISKS,
    ) {
        let k = 8;
        let initial = UniformGenerator::new(DIM).generate(600, seed);
        let stream = UniformGenerator::new(DIM).generate(80, seed ^ 1);
        let queries = UniformGenerator::new(DIM).generate(6, seed ^ 2);
        let engine = EngineBuilder::new(DIM)
            .disks(DISKS)
            .replicas(1)
            .ingest(IngestConfig::new(4096))
            .build(&initial)
            .unwrap();
        engine.faults().fail(failed);

        let contents = churn(&engine, &initial, &stream, &queries, k);

        let fresh = EngineBuilder::new(DIM)
            .disks(DISKS)
            .build_with_items(contents)
            .unwrap();
        for q in &queries {
            let (got, _) = engine.knn(q, k).unwrap();
            let (want, _) = fresh.knn(q, k).unwrap();
            prop_assert_eq!(normalized(&got), normalized(&want));
        }
    }
}

/// Queries racing a live shadow-rebuild swap lose nothing and duplicate
/// nothing: while a writer thread streams inserts (tripping background
/// rebuilds via the size threshold), every concurrent answer must be a
/// correct exact top-k over *some* prefix of the insert stream — unique
/// items with true distances, and a k-th distance bracketed by the
/// brute-force k-th over the base set (no inserts visible) and over the
/// full union (all inserts visible). At quiescence the engine must agree
/// bit-identically with a fresh bulk load of the union.
#[test]
fn queries_across_a_live_rebuild_swap_lose_nothing() {
    const K: usize = 10;
    let initial = UniformGenerator::new(DIM).generate(2_000, 31);
    let stream = UniformGenerator::new(DIM).generate(1_200, 32);
    let queries = UniformGenerator::new(DIM).generate(24, 33);

    let engine = EngineBuilder::new(DIM)
        .disks(DISKS)
        .metrics(true)
        // A low threshold forces several background shadow rebuilds while
        // the query threads are running.
        .ingest(IngestConfig::new(8_192).with_rebuild_threshold(200))
        .build(&initial)
        .unwrap();

    let base: Vec<(Point, u64)> = initial
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let mut union = base.clone();
    union.extend(
        stream
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), (initial.len() + i) as u64)),
    );
    let point_of: std::collections::BTreeMap<u64, &Point> =
        union.iter().map(|(p, id)| (*id, p)).collect();

    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for p in &stream {
                engine.insert(p.clone()).unwrap();
            }
        });
        for t in 0..3usize {
            let (queries, base, union, point_of, engine) =
                (&queries, &base, &union, &point_of, &engine);
            s.spawn(move || {
                for round in 0..20 {
                    let q = &queries[(t * 20 + round) % queries.len()];
                    let loose = brute_kth(base, q, K);
                    let tight = brute_kth(union, q, K);
                    let (got, _) = engine.knn(q, K).unwrap();
                    assert_eq!(got.len(), K, "lost answers");
                    let mut items: Vec<u64> = got.iter().map(|nb| nb.item).collect();
                    items.sort_unstable();
                    items.dedup();
                    assert_eq!(items.len(), K, "duplicated answers");
                    for nb in &got {
                        let p = point_of
                            .get(&nb.item)
                            .expect("answer from outside the union");
                        assert!(
                            (nb.dist - q.dist(p)).abs() < 1e-9,
                            "reported distance does not match item {}",
                            nb.item
                        );
                    }
                    assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
                    let kth = got.last().unwrap().dist;
                    assert!(
                        tight - 1e-9 <= kth && kth <= loose + 1e-9,
                        "k-th distance {kth} outside [{tight}, {loose}]"
                    );
                }
            });
        }
        writer.join().unwrap();
    });

    // The threshold must actually have tripped mid-stream.
    let rebuilds = engine
        .metrics()
        .unwrap()
        .snapshot()
        .counter_total("parsim_rebuilds_total");
    assert!(rebuilds >= 1, "no background rebuild ran");

    // Quiescence: drain everything and demand bit-identity to a fresh
    // bulk load of the union.
    engine.flush().unwrap();
    assert_eq!(engine.delta_size(), 0);
    assert_eq!(engine.len(), union.len());
    let fresh = EngineBuilder::new(DIM)
        .disks(DISKS)
        .build_with_items(union.clone())
        .unwrap();
    for q in &queries {
        let (got, _) = engine.knn(q, K).unwrap();
        let (want, _) = fresh.knn(q, K).unwrap();
        assert_eq!(normalized(&got), normalized(&want));
    }
}
