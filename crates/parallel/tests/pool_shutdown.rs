//! Lifecycle tests of the persistent worker pool: engine drop must join
//! every per-disk worker without deadlocking — even with queries still
//! queued — and degraded execution must behave identically on the pooled
//! and scoped backbones.

use parsim_datagen::{DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_parallel::{ExecutionMode, ParallelKnnEngine, PendingQuery, QueryOptions};

const DIM: usize = 6;
const DISKS: usize = 10; // colors_required(6) == 8: disks 8 and 9 are mirror spares
const K: usize = 10;

fn points() -> Vec<Point> {
    UniformGenerator::new(DIM).generate(3000, 7)
}

fn pooled_engine(pts: &[Point], replicas: usize) -> ParallelKnnEngine {
    ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .replicas(replicas)
        .execution(ExecutionMode::Pooled)
        .build(pts)
        .unwrap()
}

fn scoped_engine(pts: &[Point], replicas: usize) -> ParallelKnnEngine {
    ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .replicas(replicas)
        .build(pts)
        .unwrap()
}

/// Dropping the engine while a large batch is still queued must drain
/// every in-flight query, join all workers, and leave every handle
/// resolvable afterwards.
#[test]
fn drop_mid_batch_drains_queued_queries() {
    let pts = points();
    let queries = UniformGenerator::new(DIM).generate(96, 31);
    let scoped = scoped_engine(&pts, 0);
    let want: Vec<_> = queries
        .iter()
        .map(|q| scoped.knn(q, K).unwrap().0)
        .collect();

    let engine = pooled_engine(&pts, 0);
    let opts = QueryOptions::new(K);
    let pending: Vec<PendingQuery> = queries
        .iter()
        .map(|q| engine.submit(q, &opts).unwrap())
        .collect();
    // Drop with (almost certainly) most of the batch still queued. The
    // pool's drain-then-stop shutdown must finish every accepted query
    // before the workers exit.
    drop(engine);
    for (handle, want) in pending.into_iter().zip(&want) {
        let result = handle.wait().unwrap();
        assert_eq!(&result.neighbors, want);
    }
}

/// Dropping the engine AND the un-waited handles must not deadlock or
/// panic: completions outlive nobody, workers still drain and join.
#[test]
fn drop_engine_and_handles_without_waiting() {
    let pts = points();
    let queries = UniformGenerator::new(DIM).generate(64, 32);
    let engine = pooled_engine(&pts, 0);
    let opts = QueryOptions::new(K);
    let pending: Vec<PendingQuery> = queries
        .iter()
        .map(|q| engine.submit(q, &opts).unwrap())
        .collect();
    drop(pending);
    drop(engine);
}

/// An engine that never ran a query still shuts its pool down cleanly.
#[test]
fn drop_idle_engine() {
    let engine = pooled_engine(&points(), 0);
    assert_eq!(engine.execution(), ExecutionMode::Pooled);
    drop(engine);
}

/// Repeatedly creating and dropping pooled engines (with a query in
/// between) leaks no wedged worker: every drop returns.
#[test]
fn repeated_create_query_drop_cycles() {
    let pts = points();
    let q = UniformGenerator::new(DIM).generate(1, 33).pop().unwrap();
    let mut last = None;
    for _ in 0..5 {
        let engine = pooled_engine(&pts, 0);
        let (res, _) = engine.knn(&q, K).unwrap();
        if let Some(prev) = &last {
            assert_eq!(&res, prev);
        }
        last = Some(res);
    }
}

/// Degraded execution parity: a hard disk failure is handled identically
/// by the pooled pipeline and the scoped reference — same neighbors, same
/// failover record, same pages, down to the per-disk trace.
#[test]
fn pooled_degraded_failover_matches_scoped() {
    let pts = points();
    let queries = UniformGenerator::new(DIM).generate(6, 34);
    let scoped = scoped_engine(&pts, 1);
    let pooled = pooled_engine(&pts, 1);
    let failed = scoped
        .load_distribution()
        .iter()
        .position(|&l| l > 0)
        .expect("some disk holds data");
    scoped.faults().fail(failed);
    pooled.faults().fail(failed);
    for q in &queries {
        let (sres, strace) = scoped.knn_traced(q, K).unwrap();
        let (pres, ptrace) = pooled.knn_traced(q, K).unwrap();
        assert_eq!(pres, sres);
        assert_eq!(ptrace.per_disk_pages, strace.per_disk_pages);
        let sdeg = strace.degraded.expect("scoped degraded record");
        let pdeg = ptrace.degraded.expect("pooled degraded record");
        assert_eq!(pdeg.failed_over, sdeg.failed_over);
        assert_eq!(pdeg.replica_pages, sdeg.replica_pages);
        assert_eq!(pdeg.retries, sdeg.retries);
    }
}

/// Flaky reads with a fixed injector seed draw the same retry stream on
/// both backbones: the pooled degraded pipeline visits disks in the same
/// order as the scoped sequential loop.
#[test]
fn pooled_degraded_retries_match_scoped() {
    let pts = points();
    let queries = UniformGenerator::new(DIM).generate(4, 35);
    let scoped = scoped_engine(&pts, 1);
    let pooled = pooled_engine(&pts, 1);
    let flaky = scoped
        .load_distribution()
        .iter()
        .position(|&l| l > 0)
        .expect("some disk holds data");
    for engine in [&scoped, &pooled] {
        engine.faults().seed(flaky, 4242);
        engine.faults().flaky(flaky, 0.3);
    }
    for q in &queries {
        let (sres, strace) = scoped.knn_traced(q, K).unwrap();
        let (pres, ptrace) = pooled.knn_traced(q, K).unwrap();
        assert_eq!(pres, sres);
        assert_eq!(ptrace.per_disk_pages, strace.per_disk_pages);
        let sdeg = strace.degraded.expect("scoped degraded record");
        let pdeg = ptrace.degraded.expect("pooled degraded record");
        assert_eq!(pdeg.retries, sdeg.retries);
        assert_eq!(pdeg.failed_over, sdeg.failed_over);
    }
}

/// The worker queue-depth gauges drain back to exactly zero once the
/// pool does: every submit/forward increment is matched by a receive
/// decrement, even when the engine is dropped with the batch still
/// queued. The snapshot is taken through a kept registry handle after
/// the drain-then-join drop completes.
#[test]
fn queue_depth_gauges_return_to_zero_after_drain_then_drop() {
    let pts = points();
    let queries = UniformGenerator::new(DIM).generate(80, 37);
    let engine = ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .execution(ExecutionMode::Pooled)
        .metrics(true)
        .build(&pts)
        .unwrap();
    let metrics = std::sync::Arc::clone(engine.metrics().expect("metrics enabled"));
    let disks = engine.disks(); // capped below DISKS without replicas
    let opts = QueryOptions::new(K);
    let pending: Vec<PendingQuery> = queries
        .iter()
        .map(|q| engine.submit(q, &opts).unwrap())
        .collect();
    // Drop mid-batch: the pool drains every accepted query, so by the
    // time drop returns each gauge has seen matched inc/dec pairs.
    drop(engine);
    let snapshot = metrics.snapshot();
    let depths = snapshot.gauges("parsim_worker_queue_depth");
    assert_eq!(depths.len(), disks);
    for (labels, depth) in depths {
        assert_eq!(depth, 0, "gauge {labels:?} did not drain");
    }
    assert_eq!(
        snapshot.counter_total("parsim_queries_completed_total"),
        queries.len() as u64
    );
    for handle in pending {
        handle.wait().unwrap();
    }
}

/// An unavailable bucket is the same typed error through the pool, and an
/// error mid-batch does not wedge the shutdown.
#[test]
fn pooled_errors_propagate_and_do_not_wedge_shutdown() {
    let pts = points();
    let queries = UniformGenerator::new(DIM).generate(8, 36);
    let engine = pooled_engine(&pts, 0);
    let failed = engine
        .load_distribution()
        .iter()
        .position(|&l| l > 0)
        .expect("some disk holds data");
    engine.faults().fail(failed);
    let opts = QueryOptions::new(K);
    let pending: Vec<PendingQuery> = queries
        .iter()
        .map(|q| engine.submit(q, &opts).unwrap())
        .collect();
    drop(engine);
    for handle in pending {
        let err = handle.wait().unwrap_err();
        assert_eq!(
            err,
            parsim_parallel::EngineError::BucketUnavailable { disk: failed }
        );
    }
}
