//! Seeded-determinism regression tests of the approximate tier: the
//! same `(LshConfig, items)` must produce byte-identical bucket
//! assignments and identical Approx answer sets — across two fresh
//! builds, and across a live `reorganize()` of an unchanged engine. A
//! different seed must produce a different layout (the determinism is
//! seeded, not degenerate).

use parsim_datagen::{ClusteredGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_parallel::{LshConfig, ParallelKnnEngine, QueryOptions};

const DIM: usize = 7;
const DISKS: usize = 8;

fn build(pts: &[Point], seed: u64) -> ParallelKnnEngine {
    ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .approx(LshConfig::new(seed).tables(6).hyperplanes(10))
        .build(pts)
        .unwrap()
}

fn approx_answers(e: &ParallelKnnEngine, queries: &[Point]) -> Vec<Vec<(u64, u64)>> {
    queries
        .iter()
        .map(|q| {
            e.query(q, &QueryOptions::approx(10, 3))
                .unwrap()
                .neighbors
                .iter()
                .map(|n| (n.item, n.dist.to_bits()))
                .collect()
        })
        .collect()
}

#[test]
fn identical_seeds_give_byte_identical_layouts_and_answers() {
    let pts = ClusteredGenerator::new(DIM, 6, 0.06).generate(1000, 42);
    let queries = UniformGenerator::new(DIM).generate(8, 43);
    let a = build(&pts, 7);
    let b = build(&pts, 7);
    let la = a.lsh_layout_bytes().expect("tier attached");
    assert_eq!(la, b.lsh_layout_bytes().unwrap());
    assert_eq!(approx_answers(&a, &queries), approx_answers(&b, &queries));
    // A different seed draws different hyperplanes: layouts diverge.
    let other = build(&pts, 8);
    assert_ne!(la, other.lsh_layout_bytes().unwrap());
    // An engine without the tier has no layout at all.
    let plain = ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .build(&pts)
        .unwrap();
    assert!(plain.lsh_layout_bytes().is_none());
    assert!(plain.lsh_config().is_none());
    assert_eq!(
        a.lsh_config(),
        Some(LshConfig::new(7).tables(6).hyperplanes(10))
    );
}

#[test]
fn reorganize_rebuilds_the_same_layout_for_unchanged_data() {
    let pts = ClusteredGenerator::new(DIM, 6, 0.06).generate(800, 11);
    let queries = UniformGenerator::new(DIM).generate(8, 12);
    let e = build(&pts, 21);
    let layout_before = e.lsh_layout_bytes().unwrap();
    let answers_before = approx_answers(&e, &queries);
    // Item ids and the config survive the swap, so the re-fitted family
    // (same seed, same items) lands every row in the same bucket.
    e.reorganize().unwrap();
    assert_eq!(
        e.lsh_config(),
        Some(LshConfig::new(21).tables(6).hyperplanes(10))
    );
    assert_eq!(e.lsh_layout_bytes().unwrap(), layout_before);
    assert_eq!(approx_answers(&e, &queries), answers_before);
}
