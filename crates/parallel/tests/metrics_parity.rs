//! Trace conformance of the engine-wide metrics registry: on a seeded
//! workload the registry's cumulative totals must **exactly** equal the
//! sums over the individual per-query [`QueryTrace`]s — in both execution
//! modes, healthy and with faults armed. The registry is not a second
//! measurement that happens to be close; it is the same events counted
//! once, so any drift is a bug.
//!
//! The per-shard page-cache counters are the one layer counted
//! independently of the traces (inside [`parsim_storage::ShardedLru`]
//! itself), so their agreement with the trace sums is a real cross-check,
//! not an identity.

use std::time::Duration;

use parsim_datagen::{ClusteredGenerator, CorrelatedGenerator, DataGenerator};
use parsim_geometry::Point;
use parsim_obs::RegistrySnapshot;
use parsim_parallel::{
    ExecutionMode, FaultPolicy, ParallelKnnEngine, QueryTrace, RetryPolicy, ScanTier,
};

const DIM: usize = 6;
const DISKS: usize = 8;
const SHARDS: usize = 4;
const K: usize = 10;

fn clustered_points() -> Vec<Point> {
    ClusteredGenerator::new(DIM, 8, 0.05).generate(2500, 7)
}

fn clustered_queries() -> Vec<Point> {
    ClusteredGenerator::new(DIM, 8, 0.05).generate(24, 40)
}

fn correlated_points() -> Vec<Point> {
    CorrelatedGenerator::new(DIM, 0.1).generate(2500, 8)
}

fn correlated_queries() -> Vec<Point> {
    CorrelatedGenerator::new(DIM, 0.1).generate(24, 41)
}

fn engine(points: &[Point], execution: ExecutionMode, replicas: usize) -> ParallelKnnEngine {
    ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .replicas(replicas)
        .page_cache(128)
        .cache_shards(SHARDS)
        .execution(execution)
        .metrics(true)
        .build(points)
        .unwrap()
}

/// Sums over a workload's traces — the ground truth the registry must hit.
#[derive(Default)]
struct TraceTotals {
    pages: Vec<u64>,
    pruned: u64,
    dist_evals: u64,
    dist_evals_saved: u64,
    lb_evals: u64,
    rerank_evals: u64,
    cache_hits: u64,
    degraded: u64,
    retries: u64,
    replica_pages: u64,
}

fn sum_traces(traces: &[QueryTrace]) -> TraceTotals {
    let mut t = TraceTotals {
        pages: vec![0; DISKS],
        ..TraceTotals::default()
    };
    for trace in traces {
        for (d, &p) in trace.per_disk_pages.iter().enumerate() {
            t.pages[d] += p;
        }
        t.pruned += trace.candidates_pruned;
        t.dist_evals += trace.dist_evals;
        t.dist_evals_saved += trace.dist_evals_saved;
        t.lb_evals += trace.lb_evals;
        t.rerank_evals += trace.rerank_evals;
        t.cache_hits += trace.cache_hits;
        if let Some(deg) = &trace.degraded {
            t.degraded += 1;
            t.retries += deg.retries;
            t.replica_pages += deg.replica_pages;
        }
    }
    t
}

/// Asserts every registry total equals the trace-summed ground truth.
fn assert_parity(s: &RegistrySnapshot, traces: &[QueryTrace], want: &TraceTotals) {
    let n = traces.len() as u64;
    assert_eq!(s.counter_total("parsim_queries_started_total"), n);
    assert_eq!(s.counter_total("parsim_queries_completed_total"), n);
    assert_eq!(s.counter_total("parsim_queries_failed_total"), 0);
    assert_eq!(
        s.counter_total("parsim_queries_degraded_total"),
        want.degraded
    );
    for (d, &pages) in want.pages.iter().enumerate() {
        let label = d.to_string();
        assert_eq!(
            s.counter_with("parsim_disk_pages_total", &[("disk", &label)]),
            Some(pages),
            "pages of disk {d}"
        );
        // The per-disk service histogram saw one sample per query that
        // touched the disk.
        let touched = traces.iter().filter(|t| t.per_disk_pages[d] > 0).count() as u64;
        let h = s
            .histogram_with("parsim_disk_service_micros", &[("disk", &label)])
            .unwrap();
        assert_eq!(h.count, touched, "service samples of disk {d}");
    }
    assert_eq!(
        s.counter_total("parsim_disk_pages_total"),
        want.pages.iter().sum::<u64>()
    );
    assert_eq!(
        s.counter_total("parsim_candidates_pruned_total"),
        want.pruned
    );
    assert_eq!(s.counter_total("parsim_dist_evals_total"), want.dist_evals);
    assert_eq!(
        s.counter_total("parsim_dist_evals_saved_total"),
        want.dist_evals_saved
    );
    assert_eq!(s.counter_total("parsim_lb_evals_total"), want.lb_evals);
    assert_eq!(
        s.counter_total("parsim_rerank_evals_total"),
        want.rerank_evals
    );
    assert_eq!(
        s.counter_total("parsim_query_cache_hits_total"),
        want.cache_hits
    );
    assert_eq!(s.counter_total("parsim_read_retries_total"), want.retries);
    assert_eq!(
        s.counter_total("parsim_replica_pages_total"),
        want.replica_pages
    );
    // The end-to-end latency histogram saw every completed query.
    let lat = s
        .histogram_with("parsim_query_latency_micros", &[])
        .unwrap();
    assert_eq!(lat.count, n);
    // Cross-check: the cache-layer hit counters (counted inside the
    // sharded LRU, not derived from traces) agree with the trace sums.
    // Holds because only queries touch the caches: bulk load runs before
    // the caching sinks are installed and mirror trees bypass them.
    assert_eq!(s.counter_total("parsim_cache_hits_total"), want.cache_hits);
}

fn run_and_check(points: &[Point], queries: &[Point], execution: ExecutionMode) {
    let engine = engine(points, execution, 0);
    let traces: Vec<QueryTrace> = queries
        .iter()
        .map(|q| engine.knn_traced(q, K).unwrap().1)
        .collect();
    let snapshot = engine.metrics().expect("metrics enabled").snapshot();
    assert_parity(&snapshot, &traces, &sum_traces(&traces));
}

#[test]
fn scoped_clustered_registry_matches_traces() {
    run_and_check(
        &clustered_points(),
        &clustered_queries(),
        ExecutionMode::Scoped,
    );
}

#[test]
fn pooled_clustered_registry_matches_traces() {
    run_and_check(
        &clustered_points(),
        &clustered_queries(),
        ExecutionMode::Pooled,
    );
}

#[test]
fn scoped_correlated_registry_matches_traces() {
    run_and_check(
        &correlated_points(),
        &correlated_queries(),
        ExecutionMode::Scoped,
    );
}

#[test]
fn pooled_correlated_registry_matches_traces() {
    run_and_check(
        &correlated_points(),
        &correlated_queries(),
        ExecutionMode::Pooled,
    );
}

/// Batch submission (the pipelined pooled path and the scoped worker
/// pool) funnels through the same record point: totals still match.
#[test]
fn batch_paths_keep_parity() {
    let points = clustered_points();
    let queries = clustered_queries();
    for execution in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let engine = engine(&points, execution, 0);
        let traces: Vec<QueryTrace> = engine
            .knn_batch(&queries, K)
            .unwrap()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let snapshot = engine.metrics().unwrap().snapshot();
        assert_parity(&snapshot, &traces, &sum_traces(&traces));
    }
}

/// A cheap-tier workload keeps parity too, with the phase-1 counters
/// actually firing: the registry's `lb_evals`/`rerank_evals` totals equal
/// the trace sums in both execution modes.
#[test]
fn tiered_workload_keeps_parity() {
    let points = clustered_points();
    let queries = clustered_queries();
    for execution in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .page_cache(128)
            .cache_shards(SHARDS)
            .scan_tier(ScanTier::Q8)
            .execution(execution)
            .metrics(true)
            .build(&points)
            .unwrap();
        let traces: Vec<QueryTrace> = queries
            .iter()
            .map(|q| engine.knn_traced(q, K).unwrap().1)
            .collect();
        let want = sum_traces(&traces);
        assert!(want.lb_evals > 0, "phase 1 never ran ({execution:?})");
        let snapshot = engine.metrics().unwrap().snapshot();
        assert_parity(&snapshot, &traces, &want);
    }
}

/// With a hard failure and a flaky disk armed, degraded execution keeps
/// exact parity too: degraded count, retries, and replica pages all equal
/// the trace sums, and the injector-level fault counters fire.
#[test]
fn degraded_workload_keeps_parity_in_both_modes() {
    let points = clustered_points();
    let queries = clustered_queries();
    // Generous retries: the failed disk's mirrors may be hosted on the
    // flaky disk, and this test is about counting, not abandonment.
    let policy = FaultPolicy {
        timeout: None,
        retry: RetryPolicy {
            max_retries: 16,
            backoff: Duration::from_micros(10),
            backoff_multiplier: 1.0,
        },
    };
    for execution in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .replicas(1)
            .page_cache(128)
            .cache_shards(SHARDS)
            .execution(execution)
            .fault_policy(policy)
            .metrics(true)
            .build(&points)
            .unwrap();
        let loaded: Vec<usize> = engine
            .load_distribution()
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(d, _)| d)
            .collect();
        engine.faults().fail(loaded[0]);
        engine.faults().seed(loaded[1], 4242);
        engine.faults().flaky(loaded[1], 0.2);
        let traces: Vec<QueryTrace> = queries
            .iter()
            .map(|q| engine.knn_traced(q, K).unwrap().1)
            .collect();
        let want = sum_traces(&traces);
        assert_eq!(want.degraded, queries.len() as u64, "all queries degraded");
        assert!(want.replica_pages > 0, "failover actually happened");
        let s = engine.metrics().unwrap().snapshot();
        assert_parity(&s, &traces, &want);
        assert_eq!(s.counter_total("parsim_faults_injected_total"), 2);
        assert_eq!(s.counter_total("parsim_faults_healed_total"), 0);
        if want.retries > 0 {
            assert!(s.counter_total("parsim_flaky_read_errors_total") > 0);
        }
    }
}

/// The registry is carried across an online reorganize, not reset: totals
/// accumulated before the swap and after it sum with the trace ground
/// truth exactly as if no swap had happened. (Regression test — the
/// consuming-rebuild era rebuilt the registry from scratch, silently
/// zeroing every counter and orphaning any scrape handle the caller
/// held.)
#[test]
fn registry_survives_reorganize_with_exact_parity() {
    use parsim_parallel::IngestConfig;
    let points = clustered_points();
    let queries = clustered_queries();
    for execution in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let engine = ParallelKnnEngine::builder(DIM)
            .disks(DISKS)
            .page_cache(128)
            .cache_shards(SHARDS)
            .execution(execution)
            .metrics(true)
            .ingest(IngestConfig::new(4096))
            .build(&points)
            .unwrap();
        // The handle taken *before* the swap must stay live and shared.
        let handle = std::sync::Arc::clone(engine.metrics().unwrap());

        let mut traces: Vec<QueryTrace> = queries[..12]
            .iter()
            .map(|q| engine.knn_traced(q, K).unwrap().1)
            .collect();
        for p in ClusteredGenerator::new(DIM, 8, 0.05).generate(60, 77) {
            engine.insert(p).unwrap();
        }
        engine.reorganize().unwrap();
        traces.extend(
            queries[12..]
                .iter()
                .map(|q| engine.knn_traced(q, K).unwrap().1),
        );

        let s = engine.metrics().unwrap().snapshot();
        assert_parity(&s, &traces, &sum_traces(&traces));
        // Same registry object on both sides of the swap, and the ingest
        // ledger reconciles: every buffered write is counted exactly once.
        assert_eq!(handle.snapshot().to_json(), s.to_json());
        assert_eq!(s.counter_total("parsim_ingest_inserts_total"), 60);
        assert_eq!(s.counter_total("parsim_rebuilds_total"), 1);
        assert_eq!(s.counter_total("parsim_queries_started_total"), 24);
    }
}

/// Two runs of the same seeded workload on fresh engines produce
/// byte-identical Prometheus-text and JSON exports: nothing wall-clock
/// leaks into the registry.
///
/// The workload drives each mode's deterministic execution path: the
/// scoped batch forest search on one worker, and the pooled RKV pipeline
/// one query at a time. (The scoped single-query path races per-disk
/// threads on the shared pruning bound, so its *work counters* are
/// legitimately run-to-run dependent — determinism is a property of the
/// recorded execution, and the registry adds no wall-clock on top.)
#[test]
fn exports_are_byte_identical_across_runs() {
    let points = correlated_points();
    let queries = correlated_queries();
    for execution in [ExecutionMode::Scoped, ExecutionMode::Pooled] {
        let render = || {
            let engine = engine(&points, execution, 0);
            match execution {
                ExecutionMode::Scoped => {
                    engine.knn_batch_with(&queries, K, 1).unwrap();
                }
                ExecutionMode::Pooled => {
                    for q in &queries {
                        engine.knn_traced(q, K).unwrap();
                    }
                }
            }
            let s = engine.metrics().unwrap().snapshot();
            (s.to_prometheus(), s.to_json())
        };
        let (prom_a, json_a) = render();
        let (prom_b, json_b) = render();
        assert_eq!(prom_a, prom_b, "prometheus text drifted ({execution:?})");
        assert_eq!(json_a, json_b, "json drifted ({execution:?})");
        assert!(prom_a.contains("# TYPE parsim_query_latency_micros histogram"));
        assert!(json_a.starts_with("{\"metrics\":["));
    }
}
