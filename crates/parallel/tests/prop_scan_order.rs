//! Property tests of the energy scan order: an engine whose leaves are
//! laid out in stepwise-dimensionality-increasing (energy) order must
//! return bit-identical answers — distances and items — to a
//! natural-order engine on every scan tier, on clustered, correlated,
//! and uniform data, healthy and with a failed disk serving from
//! replicas, and across a live `reorganize()` swap. The permutation is
//! a certified filter: it may only change *how fast* rows are abandoned,
//! never what the search computes, so page traces and node-level
//! pruning counts must match too.

use proptest::prelude::*;

use parsim_datagen::{ClusteredGenerator, CorrelatedGenerator, DataGenerator, UniformGenerator};
use parsim_geometry::Point;
use parsim_index::{ScanOrder, ScanTier};
use parsim_parallel::{IngestConfig, ParallelKnnEngine, QueryOptions, QueryTrace};

const DIM: usize = 6;
const DISKS: usize = 8;
const N: usize = 1200;

fn data(shape: u8, seed: u64, n: usize) -> Vec<Point> {
    match shape % 3 {
        0 => UniformGenerator::new(DIM).generate(n, seed),
        1 => ClusteredGenerator::new(DIM, 8, 0.05).generate(n, seed),
        _ => CorrelatedGenerator::new(DIM, 0.05).generate(n, seed),
    }
}

fn build(pts: &[Point], order: ScanOrder, replicas: usize) -> ParallelKnnEngine {
    ParallelKnnEngine::builder(DIM)
        .disks(DISKS)
        .replicas(replicas)
        .scan_order(order)
        .ingest(IngestConfig::new(64))
        .build(pts)
        .unwrap()
}

/// The order-invariant view of a trace: the permutation never changes
/// which nodes are visited or pruned, only how deep row scans run.
fn invariant(t: &QueryTrace) -> (Vec<u64>, u64) {
    (t.per_disk_pages.clone(), t.candidates_pruned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Healthy engines: energy layout answers bit-identically to natural
    /// layout on every tier, with identical page traces.
    #[test]
    fn energy_layout_is_bit_identical_on_every_tier(
        seed in any::<u64>(),
        shape in any::<u8>(),
        k in 1usize..=12,
    ) {
        let pts = data(shape, seed, N);
        let queries = data(shape, seed.wrapping_add(1), 6);
        let nat = build(&pts, ScanOrder::Natural, 0);
        let en = build(&pts, ScanOrder::Energy, 0);
        for q in &queries {
            for tier in [ScanTier::F64, ScanTier::F32, ScanTier::Q8] {
                // Scoped batch at one worker: the only scoped path whose
                // work counters are deterministic (the single-query path
                // races per-disk threads on the shared bound).
                let opts = QueryOptions::traced(k).with_tier(tier).with_workers(1);
                let a = nat.query_batch(std::slice::from_ref(q), &opts).unwrap().pop().unwrap();
                let b = en.query_batch(std::slice::from_ref(q), &opts).unwrap().pop().unwrap();
                prop_assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                    prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                    prop_assert_eq!(x.item, y.item);
                }
                let (t, u) = (a.trace.unwrap(), b.trace.unwrap());
                prop_assert_eq!(invariant(&t), invariant(&u));
            }
        }
    }

    /// Degraded engines (one hard-failed disk, replicas serving its
    /// buckets): failover on the energy layout stays bit-identical to
    /// failover on the natural layout.
    #[test]
    fn degraded_energy_layout_stays_exact(
        seed in any::<u64>(),
        shape in any::<u8>(),
        failed in 0usize..DISKS,
    ) {
        let pts = data(shape, seed, N);
        let queries = data(shape, seed.wrapping_add(1), 4);
        let nat = build(&pts, ScanOrder::Natural, 1);
        let en = build(&pts, ScanOrder::Energy, 1);
        nat.faults().fail(failed);
        en.faults().fail(failed);
        let opts = QueryOptions::traced(10).with_workers(1);
        for q in &queries {
            let a = nat.query_batch(std::slice::from_ref(q), &opts).unwrap().pop().unwrap();
            let b = en.query_batch(std::slice::from_ref(q), &opts).unwrap().pop().unwrap();
            prop_assert_eq!(&a.neighbors, &b.neighbors);
            let (t, u) = (a.trace.unwrap(), b.trace.unwrap());
            prop_assert_eq!(invariant(&t), invariant(&u));
            let (d, e) = (t.degraded.as_ref().unwrap(), u.degraded.as_ref().unwrap());
            prop_assert_eq!(&d.failed_over, &e.failed_over);
        }
    }

    /// A live `reorganize()` recomputes every per-leaf energy ordering;
    /// answers before and after the swap stay bit-identical to a natural
    /// engine that reorganized the same points.
    #[test]
    fn energy_layout_survives_a_live_reorganize(
        seed in any::<u64>(),
        shape in any::<u8>(),
    ) {
        let pts = data(shape, seed, N);
        let extra = data(shape, seed.wrapping_add(2), 40);
        let queries = data(shape, seed.wrapping_add(1), 4);
        let nat = build(&pts, ScanOrder::Natural, 0);
        let en = build(&pts, ScanOrder::Energy, 0);
        for p in &extra {
            nat.insert(p.clone()).unwrap();
            en.insert(p.clone()).unwrap();
        }
        nat.reorganize().unwrap();
        en.reorganize().unwrap();
        prop_assert_eq!(nat.len(), en.len());
        for q in &queries {
            for tier in [ScanTier::F64, ScanTier::F32, ScanTier::Q8] {
                let opts = QueryOptions::traced(10).with_tier(tier).with_workers(1);
                let a = nat.query_batch(std::slice::from_ref(q), &opts).unwrap().pop().unwrap();
                let b = en.query_batch(std::slice::from_ref(q), &opts).unwrap().pop().unwrap();
                for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                    prop_assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                    prop_assert_eq!(x.item, y.item);
                }
            }
        }
    }
}
