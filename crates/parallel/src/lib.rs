//! Parallel similarity search over declustered disks — the paper's system.
//!
//! A [`ParallelKnnEngine`] distributes feature vectors over `n` simulated
//! disks with a pluggable [`parsim_decluster::Declusterer`] and builds one
//! local X-tree per disk. A k-NN query runs on all disks concurrently; the
//! per-disk candidate lists are merged, and the reported cost is the
//! service time of the **most-loaded disk** — the paper's measurement
//! ("we determined the disk which accesses most pages during query
//! processing \[and\] used the search time of this disk as the search time
//! of the whole parallel X-tree").
//!
//! The [`SequentialEngine`] is the single-disk baseline used to compute
//! speed-ups, and [`metrics`] contains the workload runners used by every
//! experiment in the benchmark crate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod config;
pub mod declustered;
pub mod engine;
pub mod ingest;
pub mod lsh;
pub mod metrics;
pub mod obs;
pub mod options;
pub mod pool;
pub mod sequential;
pub mod serve;
pub mod throughput;

pub use builder::EngineBuilder;
pub use config::{EngineConfig, SplitStrategy};
pub use declustered::DeclusteredXTree;
pub use engine::{ArrayHandle, FaultsHandle, ParallelKnnEngine};
pub use ingest::IngestConfig;
pub use metrics::{run_knn_workload, run_traced_workload, DegradedInfo, QueryTrace, WorkloadCost};
pub use obs::EngineMetrics;
pub use options::{ExecutionMode, FaultPolicy, QueryMode, QueryOptions, QueryResult, RetryPolicy};
pub use parsim_index::{LshConfig, ScanTier};
pub use pool::PendingQuery;
pub use sequential::SequentialEngine;
pub use serve::AdmissionConfig;
pub use throughput::{run_batch, ThroughputReport};

/// Errors produced when building or querying an engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The data set was empty where a non-empty one is required.
    EmptyDataSet,
    /// A point of the wrong dimensionality was supplied.
    DimensionMismatch {
        /// Expected (engine) dimensionality.
        expected: usize,
        /// Supplied dimensionality.
        got: usize,
    },
    /// The declusterer's disk count does not match the engine's.
    DiskCountMismatch {
        /// Disks of the engine.
        engine: usize,
        /// Disks of the declusterer.
        declusterer: usize,
    },
    /// A disk holding un-replicated buckets is unavailable (failed, over
    /// its timeout budget, or flaky beyond the retry policy) and no
    /// healthy replica exists, so the query cannot return an exact answer.
    BucketUnavailable {
        /// The unavailable disk whose buckets could not be served.
        disk: usize,
    },
    /// The submission was load-shed at admission: the first disk of the
    /// query's itinerary had a full queue (see
    /// [`AdmissionConfig::queue_capacity`]). The query never entered the
    /// system; the caller decides whether to retry, degrade, or drop.
    Overloaded {
        /// The disk whose queue was full.
        disk: usize,
        /// The queue depth observed at rejection.
        depth: usize,
    },
    /// The query was shed mid-pipeline because the *modeled* service time
    /// it had already consumed exceeded its deadline budget — the rest of
    /// its work was doomed to miss and was not performed.
    DeadlineExceeded {
        /// The query's modeled budget, in µs.
        budget_micros: u64,
        /// The modeled service time consumed when the query was shed, in
        /// µs (always greater than the budget).
        spent_micros: u64,
    },
    /// An `Approx`-mode query was submitted to an engine built without
    /// [`EngineBuilder::approx`]: there is no LSH tier to serve it.
    ApproxUnavailable,
    /// A write (`insert`/`remove`) was attempted on an engine built
    /// without [`EngineBuilder::ingest`]: there is no delta buffer to
    /// accept it.
    ReadOnly,
    /// A write was shed because the delta buffer is at capacity — the
    /// write-side analogue of [`EngineError::Overloaded`]. The write was
    /// not applied; the caller decides whether to retry after a
    /// flush/reorganize drains the buffer, or drop.
    DeltaFull {
        /// The configured [`IngestConfig::delta_capacity`].
        capacity: usize,
    },
    /// An underlying component failed.
    Internal(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyDataSet => write!(f, "data set is empty"),
            EngineError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: engine is {expected}-d, got {got}-d")
            }
            EngineError::DiskCountMismatch {
                engine,
                declusterer,
            } => write!(
                f,
                "declusterer targets {declusterer} disks but the engine has {engine}"
            ),
            EngineError::BucketUnavailable { disk } => write!(
                f,
                "disk {disk} is unavailable and holds buckets with no healthy replica"
            ),
            EngineError::Overloaded { disk, depth } => write!(
                f,
                "overloaded: disk {disk}'s admission queue is full ({depth} waiting)"
            ),
            EngineError::DeadlineExceeded {
                budget_micros,
                spent_micros,
            } => write!(
                f,
                "deadline exceeded: {spent_micros}µs modeled service consumed \
                 against a {budget_micros}µs budget"
            ),
            EngineError::ApproxUnavailable => write!(
                f,
                "no LSH tier: build the engine with .approx(LshConfig) to serve Approx queries"
            ),
            EngineError::ReadOnly => write!(
                f,
                "engine is read-only: build it with .ingest(IngestConfig) to accept writes"
            ),
            EngineError::DeltaFull { capacity } => write!(
                f,
                "delta buffer full ({capacity} buffered writes): reorganize to drain it"
            ),
            EngineError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}
