//! The persistent per-disk worker pool — the throughput backbone of
//! [`ExecutionMode::Pooled`](crate::ExecutionMode::Pooled).
//!
//! One long-lived worker thread per disk, each owning that disk's subtree
//! set: a worker only ever touches its own disk's primary tree and the
//! mirror trees *hosted* on its disk. Workers are fed by per-disk
//! `DiskQueue`s (bounded priority queues — FIFO by submission order
//! until an [`crate::serve::AdmissionConfig`] asks for more); a query is
//! one `QueryTask` that travels worker to worker along its execution
//! itinerary (a **pipeline**, not a fan-out), carrying all of its mutable
//! search state with it. Because the task hops disks in exactly the order
//! the single-threaded reference search visits them, the pooled answer
//! *and* trace are bit-identical to the deterministic forest search —
//! while many queries pipeline through the disks concurrently with no
//! per-query thread spawn and no per-batch barrier.
//!
//! Shutdown protocol: dropping the `WorkerPool` first **drains** — it
//! waits until the in-flight counter hits zero, so no queued task can be
//! abandoned — then signals every queue's shutdown flag and joins the
//! workers. Workers never block on enqueue (hops are exempt from the
//! admission bound) and every hop strictly advances a task's itinerary,
//! so the drain always terminates: engine drop cannot deadlock even with
//! queued queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use parsim_geometry::Point;
use parsim_index::knn::{ForestCursor, Neighbor, ScanTier, SearchStats, SharedBound};
use parsim_index::ScanOrder;
use parsim_storage::DiskModel;

use crate::engine::{merge_candidates, DegradedState, EngineCore, TracedAnswer};
use crate::ingest::QueryOverlay;
use crate::lsh::{merge_unique_candidates, DiskProbes, LshCounters};
use crate::metrics::QueryTrace;
use crate::obs::EngineMetrics;
use crate::options::QueryResult;
use crate::serve::DiskQueue;
use crate::EngineError;

/// One in-flight query: its immutable inputs plus all mutable search
/// state, boxed so a hop moves a pointer, not the state.
pub(crate) struct QueryTask {
    /// The query point.
    pub(crate) query: Point,
    /// Result count.
    pub(crate) k: usize,
    /// Leaf-scan precision tier (the RKV cursor and degraded state carry
    /// their own copy; this one feeds the HS per-disk searches).
    pub(crate) tier: ScanTier,
    /// Scan-order knob, carried alongside the tier for the same reason.
    pub(crate) order: ScanOrder,
    /// Per-disk work counters, accumulated as the task hops.
    pub(crate) stats: Vec<SearchStats>,
    /// Submission instant (the trace's wall time spans queueing too).
    pub(crate) start: Instant,
    /// Where the query is in its execution.
    pub(crate) stage: Stage,
    /// Where the answer goes.
    pub(crate) completion: Arc<Completion>,
    /// Coalescing wave: queries sharing a wave id may share physical page
    /// reads (unique per submission unless the query came in through
    /// [`crate::ParallelKnnEngine::submit_wave`]).
    pub(crate) wave: u64,
    /// Modeled service-time budget in µs; `None` disables deadline
    /// shedding for this query.
    pub(crate) deadline_micros: Option<u64>,
    /// Modeled service time the query has consumed over its hops so far,
    /// in µs — compared against the budget at every hop.
    pub(crate) spent_micros: u64,
    /// Admission sequence number (assigned by the pool at submit; reused
    /// by every later hop as the FIFO tie-break).
    pub(crate) seq: u64,
}

/// The execution state machine of a pooled query.
pub(crate) enum Stage {
    /// Healthy RKV: one [`ForestCursor`] walking the MINDIST itinerary —
    /// the deterministic forest search, pipelined across workers.
    Rkv {
        /// The traveling search state.
        cursor: ForestCursor,
        /// `(root MINDIST², disk)` stops in visiting order.
        itinerary: Vec<(f64, usize)>,
        /// Next stop.
        pos: usize,
    },
    /// Healthy HS: disk-by-disk best-first searches under one carried
    /// pruning bound. Answers are exact; page traces are
    /// execution-shaped (see [`crate::ParallelKnnEngine::submit`]).
    Hs {
        /// The carried pruning bound, tightened at every disk.
        bound: SharedBound,
        /// Per-disk candidate lists, merged at the last disk.
        candidates: Vec<Vec<Neighbor>>,
        /// Next disk.
        next: usize,
    },
    /// Degraded execution: the same per-disk steps as the scoped
    /// sequential loop, pipelined primaries-then-failover.
    Degraded {
        /// The shared degraded state machine.
        state: DegradedState,
        /// Which half of the itinerary the task is in.
        phase: Phase,
    },
    /// Healthy approximate execution: the query's LSH probe plan,
    /// grouped by owning disk and visited in ascending disk order. Each
    /// stop scans its buckets and keeps the disk-local top-k; the last
    /// stop merges with cross-disk deduplication. (Degraded approximate
    /// queries run sequentially — failover needs the whole plan's
    /// outcome, so there is nothing to pipeline.)
    Approx {
        /// Probe targets grouped by owning disk, ascending.
        plan: Vec<DiskProbes>,
        /// Next plan entry.
        pos: usize,
        /// Per-disk candidate lists, merged at the last stop.
        candidates: Vec<Vec<Neighbor>>,
        /// LSH work counters, folded into the trace at completion.
        counters: LshCounters,
    },
}

/// Progress marker of a degraded pooled query.
pub(crate) enum Phase {
    /// Primary searches, disk 0 through n-1 in order.
    Primaries {
        /// Next disk to run its primary step.
        next: usize,
    },
    /// Failover stops planned by
    /// [`EngineCore::plan_failover`], executed on each mirror's host.
    Failover {
        /// Next itinerary position.
        pos: usize,
    },
}

/// A write-once answer slot with a wakeup for waiters.
pub(crate) struct Completion {
    slot: Mutex<Option<TracedAnswer>>,
    ready: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Self {
        Completion {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Stores the answer and wakes every waiter. Called exactly once.
    pub(crate) fn complete(&self, answer: TracedAnswer) {
        let mut slot = self.slot.lock().expect("completion lock is never poisoned");
        debug_assert!(slot.is_none(), "a query completes exactly once");
        *slot = Some(answer);
        self.ready.notify_all();
    }

    fn wait(&self) -> TracedAnswer {
        let mut slot = self.slot.lock().expect("completion lock is never poisoned");
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            slot = self
                .ready
                .wait(slot)
                .expect("completion lock is never poisoned");
        }
    }

    fn is_ready(&self) -> bool {
        self.slot
            .lock()
            .expect("completion lock is never poisoned")
            .is_some()
    }
}

/// A handle to a submitted query (see
/// [`crate::ParallelKnnEngine::submit`]): wait on it to get the
/// [`QueryResult`]. Dropping the handle without waiting is fine — the
/// query still runs to completion and its answer is discarded.
pub struct PendingQuery {
    completion: Arc<Completion>,
    trace: bool,
    model: DiskModel,
    /// The query's delta-buffer snapshot, merged into the answer on
    /// wait. The pipeline itself searches with `k` inflated by the
    /// overlay's tombstone count; the merge here filters the tombstones,
    /// folds in the delta hits, and truncates back to the caller's `k`.
    overlay: Option<QueryOverlay>,
}

impl PendingQuery {
    pub(crate) fn new(completion: Arc<Completion>, trace: bool, model: DiskModel) -> Self {
        PendingQuery {
            completion,
            trace,
            model,
            overlay: None,
        }
    }

    /// An already-answered handle (the scoped path computes eagerly).
    pub(crate) fn completed(answer: TracedAnswer, trace: bool, model: DiskModel) -> Self {
        let completion = Arc::new(Completion::new());
        completion.complete(answer);
        PendingQuery::new(completion, trace, model)
    }

    /// Attaches the query's delta snapshot (see [`QueryOverlay`]).
    pub(crate) fn with_overlay(mut self, overlay: Option<QueryOverlay>) -> Self {
        self.overlay = overlay;
        self
    }

    /// True once the answer is available and [`PendingQuery::wait`] will
    /// not block.
    pub fn is_ready(&self) -> bool {
        self.completion.is_ready()
    }

    /// Blocks until the query finishes and returns its result.
    pub fn wait(self) -> Result<QueryResult, EngineError> {
        let (neighbors, trace) = self.completion.wait()?;
        let neighbors = match &self.overlay {
            Some(o) => o.apply(neighbors),
            None => neighbors,
        };
        let cost = trace.cost(&self.model);
        Ok(QueryResult {
            neighbors,
            cost,
            trace: self.trace.then_some(trace),
        })
    }
}

/// In-flight query counter with a drained-to-zero wakeup.
struct Inflight {
    count: Mutex<u64>,
    zero: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Inflight {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    fn inc(&self) {
        *self.count.lock().expect("inflight lock is never poisoned") += 1;
    }

    fn dec(&self) {
        let mut count = self.count.lock().expect("inflight lock is never poisoned");
        *count -= 1;
        if *count == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut count = self.count.lock().expect("inflight lock is never poisoned");
        while *count > 0 {
            count = self
                .zero
                .wait(count)
                .expect("inflight lock is never poisoned");
        }
    }
}

/// The persistent pool: one pinned worker per disk plus its feeding
/// queues. Created eagerly at engine build, drained and joined on drop.
pub(crate) struct WorkerPool {
    queues: Vec<Arc<DiskQueue>>,
    handles: Vec<JoinHandle<()>>,
    inflight: Arc<Inflight>,
    metrics: Option<Arc<EngineMetrics>>,
    /// Global admission order; also the hop-priority tie-break.
    seq: AtomicU64,
    /// Coalescing wave ids; unique per submission unless a wave groups
    /// several (wave 0 is never handed out, so single submissions on an
    /// engine without coalescing can never alias a real wave).
    wave: AtomicU64,
}

impl WorkerPool {
    /// Spawns one worker per disk of `core`. The queue capacity comes
    /// from the core's admission config (`usize::MAX` — never reject —
    /// without one).
    pub(crate) fn start(core: Arc<EngineCore>) -> Self {
        let disks = core.trees.len();
        let capacity = core
            .admission
            .map(|a| a.queue_capacity)
            .unwrap_or(usize::MAX);
        let queues: Vec<Arc<DiskQueue>> = (0..disks)
            .map(|_| Arc::new(DiskQueue::new(capacity)))
            .collect();
        let inflight = Arc::new(Inflight::new());
        let metrics = core.metrics.clone();
        let handles = (0..disks)
            .map(|disk| {
                let core = Arc::clone(&core);
                let queues = queues.clone();
                let inflight = Arc::clone(&inflight);
                std::thread::Builder::new()
                    .name(format!("parsim-disk-{disk}"))
                    .spawn(move || worker_loop(disk, &core, &queues, &inflight))
                    .expect("worker thread spawns")
            })
            .collect();
        WorkerPool {
            queues,
            handles,
            inflight,
            metrics,
            seq: AtomicU64::new(0),
            wave: AtomicU64::new(1),
        }
    }

    /// A fresh coalescing wave id.
    pub(crate) fn next_wave(&self) -> u64 {
        self.wave.fetch_add(1, Ordering::Relaxed)
    }

    /// Admits a task with worker `first` (its first itinerary stop), or
    /// rejects it with [`EngineError::Overloaded`] when that disk's queue
    /// is at capacity. The queue-depth gauge is raised before the push
    /// and lowered by the receiving worker, so the gauges drain back to
    /// zero exactly when the pool does (a rejected push lowers it again
    /// itself).
    pub(crate) fn submit(&self, first: usize, mut task: QueryTask) -> Result<(), EngineError> {
        task.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let budget = task.deadline_micros.unwrap_or(u64::MAX);
        let seq = task.seq;
        self.inflight.inc();
        if let Some(m) = &self.metrics {
            m.queue_depth(first).inc();
        }
        match self.queues[first].push_submit(budget, seq, Box::new(task)) {
            Ok(()) => Ok(()),
            Err(depth) => {
                if let Some(m) = &self.metrics {
                    m.queue_depth(first).dec();
                }
                self.inflight.dec();
                Err(EngineError::Overloaded { disk: first, depth })
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Drain-then-stop: once inflight is zero no task exists in any
        // queue, so the shutdown flag can never overtake a live query.
        self.inflight.wait_zero();
        for queue in &self.queues {
            queue.shutdown();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One worker: pop a task, shed it if its modeled deadline already
/// passed, open its coalescing wave, run every consecutive step that
/// belongs to this disk, then either forward the task to the next disk's
/// worker or complete it.
fn worker_loop(disk: usize, core: &EngineCore, queues: &[Arc<DiskQueue>], inflight: &Inflight) {
    while let Some(task) = queues[disk].pop() {
        if let Some(m) = &core.metrics {
            m.queue_depth(disk).dec();
        }
        // Deadline shed: the modeled service time already consumed
        // exceeds the budget, so every further page read is wasted work —
        // deliver the typed error now instead of a late answer.
        if let Some(budget) = task.deadline_micros {
            if task.spent_micros > budget {
                if let Some(m) = &core.metrics {
                    m.record_shed_deadline(task.spent_micros - budget);
                }
                task.completion.complete(Err(EngineError::DeadlineExceeded {
                    budget_micros: budget,
                    spent_micros: task.spent_micros,
                }));
                inflight.dec();
                continue;
            }
        }
        core.begin_wave(disk, task.wave);
        let pages_before = task.stats[disk].pages;
        match step(core, disk, task) {
            Outcome::Forward(next, mut task) => {
                let read = task.stats[disk].pages - pages_before;
                task.spent_micros += core.array.model().service_time(read).as_micros() as u64;
                if let Some(m) = &core.metrics {
                    m.queue_depth(next).inc();
                }
                let budget = task.deadline_micros.unwrap_or(u64::MAX);
                let seq = task.seq;
                queues[next].push_hop(budget, seq, task);
            }
            Outcome::Done => inflight.dec(),
        }
    }
}

/// Result of running a task's local steps on one worker.
enum Outcome {
    /// The task's next step belongs to another disk.
    Forward(usize, Box<QueryTask>),
    /// The task completed (answer or error delivered).
    Done,
}

/// Advances `task` as far as this disk can, then forwards or completes.
fn step(core: &EngineCore, disk: usize, mut task: Box<QueryTask>) -> Outcome {
    let mut forward: Option<usize> = None;
    let mut error: Option<EngineError> = None;
    match task.stage {
        Stage::Rkv {
            ref mut cursor,
            ref itinerary,
            ref mut pos,
        } => {
            while *pos < itinerary.len() {
                let (min_dist, ti) = itinerary[*pos];
                if cursor.prunable(min_dist) {
                    // Sorted itinerary: every remaining tree is pruned
                    // whole, exactly as the reference loop counts it.
                    for &(_, tj) in &itinerary[*pos..] {
                        task.stats[tj].pruned += 1;
                    }
                    *pos = itinerary.len();
                    break;
                }
                if ti != disk {
                    forward = Some(ti);
                    break;
                }
                core.cursor_visit(ti, cursor, &task.query, &mut task.stats[ti]);
                *pos += 1;
            }
        }
        Stage::Hs {
            ref bound,
            ref mut candidates,
            ref mut next,
        } => {
            while *next < core.trees.len() {
                if *next != disk {
                    forward = Some(*next);
                    break;
                }
                let (cands, s) =
                    core.hs_visit(disk, &task.query, task.k, bound, task.tier, task.order);
                task.stats[disk].merge(s);
                candidates[disk] = cands;
                *next += 1;
            }
        }
        Stage::Approx {
            ref plan,
            ref mut pos,
            ref mut candidates,
            ref mut counters,
        } => {
            while *pos < plan.len() {
                let entry = &plan[*pos];
                if entry.disk != disk {
                    forward = Some(entry.disk);
                    break;
                }
                let lsh = core.lsh.as_ref().expect("Approx stage needs the LSH tier");
                candidates[disk] = lsh.scan_disk(
                    disk,
                    &entry.buckets,
                    &task.query,
                    task.k,
                    &mut task.stats[disk],
                    counters,
                );
                *pos += 1;
            }
        }
        Stage::Degraded {
            ref mut state,
            ref mut phase,
        } => loop {
            match phase {
                Phase::Primaries { next } => {
                    if *next >= core.trees.len() {
                        core.plan_failover(state);
                        *phase = Phase::Failover { pos: 0 };
                        continue;
                    }
                    if *next != disk {
                        forward = Some(*next);
                        break;
                    }
                    core.degraded_primary(disk, &task.query, task.k, state, &mut task.stats);
                    *next += 1;
                }
                Phase::Failover { pos } => {
                    if *pos >= state.itinerary.len() {
                        break;
                    }
                    let (_, host) = state.itinerary[*pos];
                    if host != disk {
                        forward = Some(host);
                        break;
                    }
                    match core.degraded_failover(*pos, &task.query, task.k, state, &mut task.stats)
                    {
                        Ok(()) => *pos += 1,
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
            }
        },
    }
    if let Some(e) = error {
        // Record before delivery so a snapshot taken after `wait` returns
        // always sees this query.
        if let Some(m) = &core.metrics {
            m.record_failure();
        }
        task.completion.complete(Err(e));
        return Outcome::Done;
    }
    if let Some(next) = forward {
        return Outcome::Forward(next, task);
    }
    complete(core, *task);
    Outcome::Done
}

/// Finishes a task whose itinerary is exhausted: merge, build the trace,
/// deliver the answer.
fn complete(core: &EngineCore, task: QueryTask) {
    let QueryTask {
        k,
        stats,
        start,
        stage,
        completion,
        ..
    } = task;
    let wall = start.elapsed();
    let answer = match stage {
        Stage::Rkv { cursor, .. } => {
            let neighbors = cursor.finish();
            let trace = QueryTrace::from_stats(&stats, wall, core.array.model());
            Ok((neighbors, trace))
        }
        Stage::Hs { candidates, .. } => {
            let merged = merge_candidates(candidates.iter().map(Vec::as_slice), k);
            let trace = QueryTrace::from_stats(&stats, wall, core.array.model());
            Ok((merged, trace))
        }
        Stage::Approx {
            candidates,
            counters,
            ..
        } => {
            let merged = merge_unique_candidates(candidates.iter().map(Vec::as_slice), k);
            let mut trace = QueryTrace::from_stats(&stats, wall, core.array.model());
            trace.lsh_probes = counters.probes;
            trace.lsh_candidates = counters.candidates;
            trace.lsh_empty_probes = counters.empty_probes;
            Ok((merged, trace))
        }
        Stage::Degraded { state, .. } => core.assemble_degraded(state, k, &stats, wall),
    };
    // Record before delivery so a snapshot taken after `wait` returns
    // always sees this query.
    if let Some(m) = &core.metrics {
        match &answer {
            Ok((_, trace)) => m.record_query(trace, core.array.model()),
            Err(_) => m.record_failure(),
        }
    }
    completion.complete(answer);
}
