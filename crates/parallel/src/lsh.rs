//! The engine-side runtime of the approximate tier: LSH buckets
//! declustered over the disk array.
//!
//! [`parsim_index::LshTables`] supplies the hash-function family; this
//! module owns its *placement*. Every `(table, signature)` bucket is a
//! `K`-bit quadrant code, so it goes through the paper's own coloring —
//! [`parsim_decluster::near_optimal::col`] over the signature bits,
//! complement-folded to the available disks — exactly as the exact tier
//! declusters its data buckets. Hamming-1 neighbor buckets get different
//! colors, and multi-probe widening flips low-margin signature bits
//! first, so the probe set of one query spreads over *different* disks
//! and the thread-per-disk pipeline, deadline shedding, and fault
//! handling of the worker pool carry over unchanged. A per-table disk
//! rotation keeps the aggregate load balanced across tables.
//!
//! Each disk holds one `DiskShard`: a flat [`VectorArena`] of the rows
//! hashed to that disk (deduplicated by item — several tables may send
//! the same item to one disk) plus the bucket directory. Bucket scans
//! charge pages to the owning disk at the same `rows → pages` rate as the
//! exact tier's leaf scans, so modeled times, `QueryCost`, and the
//! metrics registry need no new accounting path. When the engine is
//! replicated, every shard also has a full mirror hosted on the next
//! disk; a failed-over probe scans the mirror and charges the host.

use std::collections::BTreeMap;

use parsim_decluster::near_optimal::{col, colors_required, fold_table};
use parsim_geometry::Point;
use parsim_index::knn::{Neighbor, SearchStats};
use parsim_index::{LshConfig, LshTables};
use parsim_storage::{VectorArena, PAGE_SIZE};

/// LSH-specific work counters of one query, carried next to the
/// [`SearchStats`] and folded into the trace at completion.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LshCounters {
    /// Buckets probed (over all tables and disks).
    pub(crate) probes: u64,
    /// Unique candidate rows whose exact distance was computed.
    pub(crate) candidates: u64,
    /// Probed buckets that held no rows — the recall proxy: a rising
    /// empty-probe share means the probe budget is wasted on vacuum.
    pub(crate) empty_probes: u64,
}

/// The probe targets of one query on one disk: every `(table, signature)`
/// bucket of the query's probe sequences that this disk owns.
#[derive(Debug, Clone)]
pub(crate) struct DiskProbes {
    /// The owning disk (primary placement).
    pub(crate) disk: usize,
    /// The buckets to inspect there.
    pub(crate) buckets: Vec<(u32, u32)>,
}

/// One disk's slice of the LSH index.
pub(crate) struct DiskShard {
    /// Rows stored on this disk, flat row-major.
    arena: VectorArena,
    /// `items[r]` is the item id of arena row `r`.
    items: Vec<u64>,
    /// `(table, signature) → rows`, ordered for deterministic layout.
    buckets: BTreeMap<(u32, u32), Vec<u32>>,
}

impl DiskShard {
    fn new(dim: usize) -> DiskShard {
        DiskShard {
            arena: VectorArena::new(dim),
            items: Vec::new(),
            buckets: BTreeMap::new(),
        }
    }
}

/// The fitted, placed LSH index: the hash family plus one shard per disk
/// (and one mirror shard per disk when the engine is replicated).
pub(crate) struct LshRuntime {
    config: LshConfig,
    tables: LshTables,
    /// Color → disk, `fold_table` over the signature-bit coloring.
    fold: Vec<u32>,
    /// Disks that can own primary shards (`min(disks, colors)`).
    usable: usize,
    /// Total disks of the engine (mirror hosts may exceed `usable`).
    disks: usize,
    shards: Vec<DiskShard>,
    /// `mirrors[d]` is a full copy of shard `d`, hosted on
    /// `mirror_host(d)`; empty when the engine has no replicas.
    mirrors: Vec<DiskShard>,
    /// Rows per page of a bucket scan — the exact tier's leaf-entry math.
    rows_per_page: usize,
}

impl LshRuntime {
    /// Fits the hash family to `items` and builds the per-disk shards.
    /// `mirrored` additionally materializes one full mirror shard per
    /// disk (the engine guarantees `disks >= 2` in that case).
    pub(crate) fn build(
        config: LshConfig,
        dim: usize,
        items: &[(Point, u64)],
        disks: usize,
        mirrored: bool,
    ) -> LshRuntime {
        let tables = LshTables::fit(&config, dim, items.iter().map(|(p, _)| p.coords()));
        let bits = tables.bits();
        let colors = colors_required(bits) as usize;
        let usable = disks.min(colors).max(1);
        let fold = fold_table(colors as u32, usable);
        let rows_per_page = (PAGE_SIZE / (8 * dim + 8)).max(1);
        let mut rt = LshRuntime {
            config,
            tables,
            fold,
            usable,
            disks,
            shards: (0..disks).map(|_| DiskShard::new(dim)).collect(),
            mirrors: if mirrored {
                (0..disks).map(|_| DiskShard::new(dim)).collect()
            } else {
                Vec::new()
            },
            rows_per_page,
        };
        // Per-disk item → row map, so an item hashed to one disk by
        // several tables is stored (and later scanned) once.
        let mut row_of: Vec<BTreeMap<u64, u32>> = vec![BTreeMap::new(); disks];
        for (p, item) in items {
            for t in 0..rt.tables.tables() {
                let sig = rt.tables.signature(t, p.coords());
                let disk = rt.disk_of(t, sig);
                let row = *row_of[disk].entry(*item).or_insert_with(|| {
                    let r = rt.shards[disk].items.len() as u32;
                    rt.shards[disk].arena.push(p.coords());
                    rt.shards[disk].items.push(*item);
                    if mirrored {
                        rt.mirrors[disk].arena.push(p.coords());
                        rt.mirrors[disk].items.push(*item);
                    }
                    r
                });
                let bucket = rt.shards[disk].buckets.entry((t as u32, sig)).or_default();
                if bucket.last() != Some(&row) {
                    bucket.push(row);
                }
                if mirrored {
                    let mb = rt.mirrors[disk].buckets.entry((t as u32, sig)).or_default();
                    if mb.last() != Some(&row) {
                        mb.push(row);
                    }
                }
            }
        }
        rt
    }

    /// The build-time configuration.
    pub(crate) fn config(&self) -> LshConfig {
        self.config
    }

    /// The primary disk of bucket `(table, sig)`: the paper's coloring
    /// over the signature bits, folded to the usable disks and rotated by
    /// the table index so no single disk carries every table's hot
    /// bucket. The rotation is a per-table bijection, so Hamming-1 probe
    /// targets still land on distinct disks within each table.
    fn disk_of(&self, table: usize, sig: u32) -> usize {
        let color = col(sig as u64, self.tables.bits()) as usize;
        (self.fold[color] as usize + table) % self.usable
    }

    /// The disk hosting the mirror copy of `disk`'s shard, or `None` for
    /// an unreplicated engine.
    pub(crate) fn mirror_host(&self, disk: usize) -> Option<usize> {
        (!self.mirrors.is_empty()).then(|| (disk + 1) % self.disks)
    }

    /// Groups the query's probe targets — `probes` buckets per table, in
    /// multi-probe order — by owning disk, ascending. This is the
    /// query's LSH itinerary for the pooled pipeline.
    pub(crate) fn plan(&self, query: &Point, probes: usize) -> Vec<DiskProbes> {
        let probes = probes.max(1);
        let mut by_disk: BTreeMap<usize, Vec<(u32, u32)>> = BTreeMap::new();
        for t in 0..self.tables.tables() {
            for sig in self.tables.probe_sequence(t, query.coords(), probes) {
                by_disk
                    .entry(self.disk_of(t, sig))
                    .or_default()
                    .push((t as u32, sig));
            }
        }
        by_disk
            .into_iter()
            .map(|(disk, buckets)| DiskProbes { disk, buckets })
            .collect()
    }

    /// Scans `disk`'s primary shard for the given probe targets: charges
    /// pages to `stats`, computes the exact f64 distance of every
    /// first-seen row, and returns that disk's candidates sorted
    /// `(dist, item)` and truncated to `k` (the global top-`k` is a
    /// subset of the union of per-disk top-`k`s).
    pub(crate) fn scan_disk(
        &self,
        disk: usize,
        buckets: &[(u32, u32)],
        query: &Point,
        k: usize,
        stats: &mut SearchStats,
        counters: &mut LshCounters,
    ) -> Vec<Neighbor> {
        self.scan_shard(&self.shards[disk], buckets, query, k, stats, counters)
    }

    /// Scans the mirror copy of `disk`'s shard (the failover path). The
    /// caller charges `stats` of the *host* disk.
    pub(crate) fn scan_mirror(
        &self,
        disk: usize,
        buckets: &[(u32, u32)],
        query: &Point,
        k: usize,
        stats: &mut SearchStats,
        counters: &mut LshCounters,
    ) -> Vec<Neighbor> {
        self.scan_shard(&self.mirrors[disk], buckets, query, k, stats, counters)
    }

    fn scan_shard(
        &self,
        shard: &DiskShard,
        buckets: &[(u32, u32)],
        query: &Point,
        k: usize,
        stats: &mut SearchStats,
        counters: &mut LshCounters,
    ) -> Vec<Neighbor> {
        let mut seen = std::collections::HashSet::new();
        let mut out: Vec<Neighbor> = Vec::new();
        for key in buckets {
            counters.probes += 1;
            let Some(rows) = shard.buckets.get(key).filter(|r| !r.is_empty()) else {
                counters.empty_probes += 1;
                continue;
            };
            stats.pages += (rows.len().div_ceil(self.rows_per_page)).max(1) as u64;
            for &row in rows {
                if !seen.insert(row) {
                    continue;
                }
                let point = Point::from_vec(shard.arena.row(row as usize).to_vec());
                stats.dist_evals += 1;
                counters.candidates += 1;
                out.push(Neighbor {
                    item: shard.items[row as usize],
                    dist: point.dist(query),
                    point,
                });
            }
        }
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
        out.truncate(k);
        out
    }

    /// A deterministic byte serialization of every shard's bucket layout
    /// — disks in order, buckets in `(table, signature)` order, rows as
    /// item ids. Two runtimes built from the same `(config, items)` are
    /// byte-identical here; the seeded-determinism regression test pins
    /// exactly that.
    pub(crate) fn layout_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for shard in &self.shards {
            out.extend_from_slice(&(shard.buckets.len() as u64).to_le_bytes());
            for (&(t, sig), rows) in &shard.buckets {
                out.extend_from_slice(&t.to_le_bytes());
                out.extend_from_slice(&sig.to_le_bytes());
                out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                for &row in rows {
                    out.extend_from_slice(&shard.items[row as usize].to_le_bytes());
                }
            }
        }
        out
    }
}

/// Merges per-disk LSH candidate lists into the global top `k`,
/// deduplicating by item: an item stored on several disks (different
/// tables) appears once per disk, always with the same bit-identical
/// distance (one canonical kernel), so duplicates are adjacent after the
/// `(dist, item)` sort and collapse cleanly.
pub(crate) fn merge_unique_candidates<'a>(
    locals: impl Iterator<Item = &'a [Neighbor]>,
    k: usize,
) -> Vec<Neighbor> {
    let mut merged: Vec<Neighbor> = locals.flatten().cloned().collect();
    merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
    merged.dedup_by_key(|n| n.item);
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    fn items(n: usize, dim: usize, seed: u64) -> Vec<(Point, u64)> {
        UniformGenerator::new(dim)
            .generate(n, seed)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect()
    }

    #[test]
    fn every_item_is_reachable_through_its_own_signature() {
        let data = items(500, 6, 21);
        let cfg = LshConfig::new(3).tables(4).hyperplanes(8);
        let rt = LshRuntime::build(cfg, 6, &data, 8, false);
        for (p, item) in &data {
            // Probing the item's own buckets with probes=1 must surface it.
            let plan = rt.plan(p, 1);
            let mut found = false;
            for dp in &plan {
                let mut stats = SearchStats::default();
                let mut c = LshCounters::default();
                let local = rt.scan_disk(dp.disk, &dp.buckets, p, usize::MAX, &mut stats, &mut c);
                if local.iter().any(|n| n.item == *item && n.dist == 0.0) {
                    found = true;
                }
            }
            assert!(found, "item {item} not found through its own signature");
        }
    }

    #[test]
    fn probe_targets_of_one_table_spread_over_disks() {
        let data = items(400, 8, 5);
        let cfg = LshConfig::new(11).tables(1).hyperplanes(10);
        let rt = LshRuntime::build(cfg, 8, &data, 8, false);
        let q = &data[7].0;
        // The first 4 probes of table 0 are the signature and 3 Hamming-1
        // flips: the coloring sends each flip to a different disk.
        let plan = rt.plan(q, 4);
        let targets: usize = plan.iter().map(|d| d.buckets.len()).sum();
        assert_eq!(targets, 4);
        assert!(plan.len() >= 3, "probes landed on {} disks", plan.len());
    }

    #[test]
    fn layout_is_deterministic_and_seed_sensitive() {
        let data = items(300, 5, 9);
        let cfg = LshConfig::new(7).tables(3).hyperplanes(9);
        let a = LshRuntime::build(cfg, 5, &data, 6, false);
        let b = LshRuntime::build(cfg, 5, &data, 6, false);
        assert_eq!(a.layout_bytes(), b.layout_bytes());
        let other = LshRuntime::build(
            LshConfig::new(8).tables(3).hyperplanes(9),
            5,
            &data,
            6,
            false,
        );
        assert_ne!(a.layout_bytes(), other.layout_bytes());
    }

    #[test]
    fn mirrors_replicate_the_shard_content() {
        let data = items(200, 4, 3);
        let cfg = LshConfig::new(2).tables(2).hyperplanes(6);
        let rt = LshRuntime::build(cfg, 4, &data, 4, true);
        let q = &data[11].0;
        let plan = rt.plan(q, 2);
        for dp in &plan {
            let (mut s1, mut s2) = (SearchStats::default(), SearchStats::default());
            let (mut c1, mut c2) = (LshCounters::default(), LshCounters::default());
            let prim = rt.scan_disk(dp.disk, &dp.buckets, q, 10, &mut s1, &mut c1);
            let mirr = rt.scan_mirror(dp.disk, &dp.buckets, q, 10, &mut s2, &mut c2);
            assert_eq!(prim, mirr);
            assert_eq!(s1.pages, s2.pages);
            assert!(rt.mirror_host(dp.disk).is_some());
            assert_ne!(rt.mirror_host(dp.disk), Some(dp.disk));
        }
    }

    #[test]
    fn merge_unique_collapses_cross_disk_duplicates() {
        let p = Point::new(vec![0.1, 0.2]).unwrap();
        let n = |item: u64, dist: f64| Neighbor {
            item,
            point: p.clone(),
            dist,
        };
        let a = vec![n(1, 0.5), n(2, 0.7)];
        let b = vec![n(1, 0.5), n(3, 0.6)];
        let merged = merge_unique_candidates([a.as_slice(), b.as_slice()].into_iter(), 10);
        let ids: Vec<u64> = merged.iter().map(|m| m.item).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }
}
