//! Engine-wide cumulative metrics — the steady-state companion of the
//! per-query [`QueryTrace`].
//!
//! [`EngineMetrics`] owns a [`MetricsRegistry`] and pre-registers every
//! instrument the engine records into: query lifecycle counters,
//! per-disk page and busy-time counters, modeled latency histograms,
//! pool queue-depth gauges, serve-layer shed counters and the
//! deadline-overshoot histogram, per-disk coalesced-read counters,
//! per-shard page-cache counters, and the fault injector's counters. It is created only when
//! [`EngineBuilder::metrics`](crate::EngineBuilder::metrics) asks for it;
//! the default engine carries `None` and pays **zero** additional atomic
//! operations on the query path.
//!
//! **Determinism.** Everything recorded here is a count or a *modeled*
//! duration in microseconds (derived from page counts through the
//! [`DiskModel`]) — never wall-clock. Replaying a seeded workload
//! therefore produces an identical [`RegistrySnapshot`], and the
//! Prometheus/JSON exporters render it byte-for-byte identically; the
//! wall-clock view stays where it always was, on the per-query
//! [`QueryTrace::wall_time`].
//!
//! **Conformance.** The trace-derived counters (pages, distance
//! evaluations, pruning, cache hits, retries, replica pages, degraded
//! count) are accumulated from each completed query's trace in
//! `EngineMetrics::record_query` — one place, both execution modes —
//! which is exactly the invariant the `metrics_parity` suite pins:
//! registry totals equal the sums over the individual traces.

use std::sync::Arc;

use parsim_obs::{Counter, Gauge, Histogram, HistogramConfig, MetricsRegistry, RegistrySnapshot};
use parsim_storage::{CacheMetrics, DiskModel, FaultMetrics};

use crate::metrics::QueryTrace;

/// All cumulative instruments of one engine. See the module docs.
#[derive(Debug)]
pub struct EngineMetrics {
    registry: MetricsRegistry,
    queries_started: Arc<Counter>,
    queries_completed: Arc<Counter>,
    queries_failed: Arc<Counter>,
    queries_degraded: Arc<Counter>,
    pages: Vec<Arc<Counter>>,
    candidates_pruned: Arc<Counter>,
    dist_evals: Arc<Counter>,
    dist_evals_saved: Arc<Counter>,
    lb_evals: Arc<Counter>,
    rerank_evals: Arc<Counter>,
    abandoned_rows: Arc<Counter>,
    abandon_checkpoints: Arc<Counter>,
    cache_hits: Arc<Counter>,
    lsh_probes: Arc<Counter>,
    lsh_candidates: Arc<Counter>,
    lsh_empty_probes: Arc<Counter>,
    retries: Arc<Counter>,
    replica_pages: Arc<Counter>,
    shed_overloaded: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    coalesced: Vec<Arc<Counter>>,
    deadline_overshoot: Arc<Histogram>,
    latency: Arc<Histogram>,
    disk_service: Vec<Arc<Histogram>>,
    busy_micros: Vec<Arc<Counter>>,
    queue_depth: Vec<Arc<Gauge>>,
    ingest_inserts: Arc<Counter>,
    ingest_removes: Arc<Counter>,
    ingest_rejected: Arc<Counter>,
    rebuilds: Arc<Counter>,
    rebuilds_failed: Arc<Counter>,
    delta_points: Arc<Gauge>,
    delta_tombstones: Arc<Gauge>,
    rebuild_points: Arc<Histogram>,
    cache: Vec<CacheMetrics>,
    faults: FaultMetrics,
}

impl EngineMetrics {
    /// Registers every instrument for an engine of `disks` disks whose
    /// page caches (if any are installed later) use `cache_shards` shards
    /// per disk. Instruments are registered name-major so the exporters
    /// emit one `HELP`/`TYPE` header per metric.
    pub fn new(disks: usize, cache_shards: usize) -> Self {
        let r = MetricsRegistry::new();
        let disk_labels: Vec<String> = (0..disks).map(|d| d.to_string()).collect();
        let queries_started = r.counter("parsim_queries_started_total", "Queries submitted", &[]);
        let queries_completed = r.counter(
            "parsim_queries_completed_total",
            "Queries answered successfully",
            &[],
        );
        let queries_failed = r.counter(
            "parsim_queries_failed_total",
            "Queries that returned an error",
            &[],
        );
        let queries_degraded = r.counter(
            "parsim_queries_degraded_total",
            "Completed queries that ran degraded execution",
            &[],
        );
        let pages = disk_labels
            .iter()
            .map(|d| {
                r.counter(
                    "parsim_disk_pages_total",
                    "Pages served per disk (primaries and mirrors)",
                    &[("disk", d)],
                )
            })
            .collect();
        let candidates_pruned = r.counter(
            "parsim_candidates_pruned_total",
            "Subtrees discarded by the pruning bound",
            &[],
        );
        let dist_evals = r.counter(
            "parsim_dist_evals_total",
            "Point-distance evaluations started in leaf scans",
            &[],
        );
        let dist_evals_saved = r.counter(
            "parsim_dist_evals_saved_total",
            "Candidates whose full f64 distance was never computed (early abandon or lower-bound filter)",
            &[],
        );
        let lb_evals = r.counter(
            "parsim_lb_evals_total",
            "Phase-1 low-precision lower-bound kernel evaluations in leaf scans",
            &[],
        );
        let rerank_evals = r.counter(
            "parsim_rerank_evals_total",
            "Phase-1 survivors re-ranked by the exact f64 batch kernel",
            &[],
        );
        let abandoned_rows = r.counter(
            "parsim_abandoned_rows_total",
            "Rows abandoned mid-scan by a bounded distance kernel",
            &[],
        );
        let abandon_checkpoints = r.counter(
            "parsim_abandon_checkpoints_total",
            "4-coordinate checkpoints executed by abandoned rows before the bound was crossed",
            &[],
        );
        let cache_hits = r.counter(
            "parsim_query_cache_hits_total",
            "Page requests absorbed by the per-disk caches during queries",
            &[],
        );
        let lsh_probes = r.counter(
            "parsim_lsh_probes_total",
            "LSH buckets probed by Approx-mode queries, over all tables and disks",
            &[],
        );
        let lsh_candidates = r.counter(
            "parsim_lsh_candidates_total",
            "Unique LSH candidate rows exactly re-ranked by Approx-mode queries",
            &[],
        );
        let lsh_empty_probes = r.counter(
            "parsim_lsh_empty_probes_total",
            "Probed LSH buckets that held no rows (recall proxy: wasted probe budget)",
            &[],
        );
        let retries = r.counter(
            "parsim_read_retries_total",
            "Page-read retries against flaky disks",
            &[],
        );
        let replica_pages = r.counter(
            "parsim_replica_pages_total",
            "Pages read from replica trees instead of primaries",
            &[],
        );
        let shed_overloaded = r.counter(
            "parsim_queries_shed_total",
            "Queries shed by the serve layer, by reason",
            &[("reason", "overloaded")],
        );
        let shed_deadline = r.counter(
            "parsim_queries_shed_total",
            "Queries shed by the serve layer, by reason",
            &[("reason", "deadline")],
        );
        let coalesced = disk_labels
            .iter()
            .map(|d| {
                r.counter(
                    "parsim_coalesced_reads_total",
                    "Node visits that rode another wave member's physical read, per disk",
                    &[("disk", d)],
                )
            })
            .collect();
        let deadline_overshoot = r.histogram(
            "parsim_deadline_overshoot_micros",
            "Modeled service time past the budget when a query was deadline-shed",
            &[],
            HistogramConfig::latency_micros(),
        );
        let latency = r.histogram(
            "parsim_query_latency_micros",
            "Modeled end-to-end parallel service time per query",
            &[],
            HistogramConfig::latency_micros(),
        );
        let disk_service = disk_labels
            .iter()
            .map(|d| {
                r.histogram(
                    "parsim_disk_service_micros",
                    "Modeled per-disk service time of each query touching the disk",
                    &[("disk", d)],
                    HistogramConfig::latency_micros(),
                )
            })
            .collect();
        let busy_micros = disk_labels
            .iter()
            .map(|d| {
                r.counter(
                    "parsim_disk_busy_micros_total",
                    "Modeled cumulative busy time per disk",
                    &[("disk", d)],
                )
            })
            .collect();
        let queue_depth = disk_labels
            .iter()
            .map(|d| {
                r.gauge(
                    "parsim_worker_queue_depth",
                    "Tasks queued or running on the disk's pool worker",
                    &[("disk", d)],
                )
            })
            .collect();
        let ingest_inserts = r.counter(
            "parsim_ingest_inserts_total",
            "Points accepted into the delta buffer",
            &[],
        );
        let ingest_removes = r.counter(
            "parsim_ingest_removes_total",
            "Removals accepted (buffered point dropped or tombstone laid)",
            &[],
        );
        let ingest_rejected = r.counter(
            "parsim_ingest_rejected_total",
            "Writes shed with typed backpressure, by reason",
            &[("reason", "delta_full")],
        );
        let rebuilds = r.counter(
            "parsim_rebuilds_total",
            "Completed shadow rebuilds (explicit or triggered)",
            &[],
        );
        let rebuilds_failed = r.counter(
            "parsim_rebuilds_failed_total",
            "Shadow rebuilds aborted with the old state left serving",
            &[],
        );
        let delta_points = r.gauge(
            "parsim_delta_points",
            "Live (not yet bulk-loaded) points in the delta buffer",
            &[],
        );
        let delta_tombstones = r.gauge(
            "parsim_delta_tombstones",
            "Tombstones masking main-index points until the next rebuild",
            &[],
        );
        let rebuild_points = r.histogram(
            "parsim_rebuild_points",
            "Points bulk-loaded per shadow rebuild",
            &[],
            HistogramConfig::pages(),
        );
        let shards = cache_shards.max(1);
        let shard_labels: Vec<String> = (0..shards).map(|s| s.to_string()).collect();
        let cache_counter = |name: &'static str, help: &'static str| -> Vec<Vec<Arc<Counter>>> {
            disk_labels
                .iter()
                .map(|d| {
                    shard_labels
                        .iter()
                        .map(|s| r.counter(name, help, &[("disk", d), ("shard", s)]))
                        .collect()
                })
                .collect()
        };
        let hits = cache_counter(
            "parsim_cache_hits_total",
            "Page-cache hits per disk and shard",
        );
        let misses = cache_counter(
            "parsim_cache_misses_total",
            "Page-cache misses per disk and shard",
        );
        let evictions = cache_counter(
            "parsim_cache_evictions_total",
            "Page-cache evictions per disk and shard",
        );
        let cache = hits
            .into_iter()
            .zip(misses)
            .zip(evictions)
            .map(|((h, m), e)| CacheMetrics::new(h, m, e))
            .collect();
        let faults = FaultMetrics {
            faults_injected: r.counter(
                "parsim_faults_injected_total",
                "Faults armed on the injector",
                &[],
            ),
            faults_healed: r.counter(
                "parsim_faults_healed_total",
                "Armed faults cleared on the injector",
                &[],
            ),
            read_errors: r.counter(
                "parsim_flaky_read_errors_total",
                "Flaky reads drawn as errors",
                &[],
            ),
        };
        EngineMetrics {
            registry: r,
            queries_started,
            queries_completed,
            queries_failed,
            queries_degraded,
            pages,
            candidates_pruned,
            dist_evals,
            dist_evals_saved,
            lb_evals,
            rerank_evals,
            abandoned_rows,
            abandon_checkpoints,
            cache_hits,
            lsh_probes,
            lsh_candidates,
            lsh_empty_probes,
            retries,
            replica_pages,
            shed_overloaded,
            shed_deadline,
            coalesced,
            deadline_overshoot,
            latency,
            disk_service,
            busy_micros,
            queue_depth,
            ingest_inserts,
            ingest_removes,
            ingest_rejected,
            rebuilds,
            rebuilds_failed,
            delta_points,
            delta_tombstones,
            rebuild_points,
            cache,
            faults,
        }
    }

    /// Reads every instrument once. Deterministic for a seeded workload
    /// observed at a quiescent point (no queries in flight).
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Counts one submitted query.
    pub(crate) fn record_start(&self) {
        self.queries_started.inc();
    }

    /// Folds one completed query's trace into the cumulative totals.
    /// This is the single record point both execution modes funnel
    /// through, so registry totals equal summed traces by construction.
    pub(crate) fn record_query(&self, trace: &QueryTrace, model: &DiskModel) {
        self.queries_completed.inc();
        for (disk, &p) in trace.per_disk_pages.iter().enumerate() {
            if p == 0 {
                continue;
            }
            self.pages[disk].add(p);
            let micros = model.service_time(p).as_micros() as u64;
            self.disk_service[disk].record(micros);
            self.busy_micros[disk].add(micros);
        }
        self.candidates_pruned.add(trace.candidates_pruned);
        self.dist_evals.add(trace.dist_evals);
        self.dist_evals_saved.add(trace.dist_evals_saved);
        self.lb_evals.add(trace.lb_evals);
        self.rerank_evals.add(trace.rerank_evals);
        self.abandoned_rows.add(trace.abandoned_rows);
        self.abandon_checkpoints.add(trace.abandon_checkpoints);
        self.cache_hits.add(trace.cache_hits);
        self.lsh_probes.add(trace.lsh_probes);
        self.lsh_candidates.add(trace.lsh_candidates);
        self.lsh_empty_probes.add(trace.lsh_empty_probes);
        for (disk, &c) in trace.per_disk_coalesced.iter().enumerate() {
            if c > 0 {
                self.coalesced[disk].add(c);
            }
        }
        self.latency
            .record(trace.modeled_parallel.as_micros() as u64);
        if let Some(d) = &trace.degraded {
            self.queries_degraded.inc();
            self.retries.add(d.retries);
            self.replica_pages.add(d.replica_pages);
        }
    }

    /// Counts one query that finished with an error.
    pub(crate) fn record_failure(&self) {
        self.queries_failed.inc();
    }

    /// Counts one submission rejected at admission (full queue). Sheds
    /// are not failures: `parsim_queries_failed_total` stays untouched so
    /// the two causes reconcile separately against the typed errors.
    pub(crate) fn record_shed_overloaded(&self) {
        self.shed_overloaded.inc();
    }

    /// Counts one query shed mid-pipeline for blowing its modeled
    /// deadline, recording how far past the budget it was when caught.
    pub(crate) fn record_shed_deadline(&self, overshoot_micros: u64) {
        self.shed_deadline.inc();
        self.deadline_overshoot.record(overshoot_micros);
    }

    /// Counts one accepted insert and refreshes the delta-size gauges.
    pub(crate) fn record_ingest_insert(&self, live: usize, tombstones: usize) {
        self.ingest_inserts.inc();
        self.delta_points.set(live as i64);
        self.delta_tombstones.set(tombstones as i64);
    }

    /// Counts one accepted removal and refreshes the delta-size gauges.
    pub(crate) fn record_ingest_remove(&self, live: usize, tombstones: usize) {
        self.ingest_removes.inc();
        self.delta_points.set(live as i64);
        self.delta_tombstones.set(tombstones as i64);
    }

    /// Counts one write shed because the delta buffer was at capacity.
    pub(crate) fn record_ingest_rejected(&self) {
        self.ingest_rejected.inc();
    }

    /// Counts one completed shadow rebuild of `points` points, resetting
    /// the delta gauges to the freshly replayed buffer's sizes.
    pub(crate) fn record_rebuild(&self, points: u64, live: usize, tombstones: usize) {
        self.rebuilds.inc();
        self.rebuild_points.record(points);
        self.delta_points.set(live as i64);
        self.delta_tombstones.set(tombstones as i64);
    }

    /// Counts one aborted shadow rebuild (the old state kept serving).
    pub(crate) fn record_rebuild_failed(&self) {
        self.rebuilds_failed.inc();
    }

    /// The queue-depth gauge of `disk`'s pool worker.
    pub(crate) fn queue_depth(&self, disk: usize) -> &Arc<Gauge> {
        &self.queue_depth[disk]
    }

    /// The per-shard cache counters of `disk`, for wiring into its
    /// [`parsim_index::CachingSink`].
    pub(crate) fn cache_metrics(&self, disk: usize) -> CacheMetrics {
        self.cache[disk].clone()
    }

    /// The fault-injector counters, for wiring into the array's
    /// [`parsim_storage::FaultInjector`].
    pub(crate) fn fault_metrics(&self) -> FaultMetrics {
        self.faults.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn trace(pages: Vec<u64>, model: &DiskModel) -> QueryTrace {
        let max = pages.iter().copied().max().unwrap_or(0);
        let disks = pages.len();
        QueryTrace {
            per_disk_pages: pages,
            candidates_pruned: 3,
            cache_hits: 2,
            per_disk_coalesced: vec![0; disks],
            dist_evals: 40,
            dist_evals_saved: 10,
            lb_evals: 25,
            rerank_evals: 15,
            abandoned_rows: 6,
            abandon_checkpoints: 9,
            lsh_probes: 8,
            lsh_candidates: 20,
            lsh_empty_probes: 3,
            wall_time: Duration::from_millis(1),
            modeled_parallel: model.service_time(max),
            modeled_sequential: Duration::ZERO,
            degraded: None,
        }
    }

    #[test]
    fn record_query_accumulates_trace_totals() {
        let model = DiskModel::hp_workstation_1997();
        let m = EngineMetrics::new(2, 4);
        m.record_start();
        m.record_start();
        m.record_query(&trace(vec![5, 0], &model), &model);
        m.record_query(&trace(vec![1, 7], &model), &model);
        let s = m.snapshot();
        assert_eq!(s.counter_total("parsim_queries_started_total"), 2);
        assert_eq!(s.counter_total("parsim_queries_completed_total"), 2);
        assert_eq!(s.counter_total("parsim_disk_pages_total"), 13);
        assert_eq!(
            s.counter_with("parsim_disk_pages_total", &[("disk", "0")]),
            Some(6)
        );
        assert_eq!(s.counter_total("parsim_dist_evals_total"), 80);
        assert_eq!(s.counter_total("parsim_lb_evals_total"), 50);
        assert_eq!(s.counter_total("parsim_rerank_evals_total"), 30);
        assert_eq!(s.counter_total("parsim_abandoned_rows_total"), 12);
        assert_eq!(s.counter_total("parsim_abandon_checkpoints_total"), 18);
        assert_eq!(s.counter_total("parsim_query_cache_hits_total"), 4);
        assert_eq!(s.counter_total("parsim_lsh_probes_total"), 16);
        assert_eq!(s.counter_total("parsim_lsh_candidates_total"), 40);
        assert_eq!(s.counter_total("parsim_lsh_empty_probes_total"), 6);
        assert_eq!(s.counter_total("parsim_queries_degraded_total"), 0);
        let h = s
            .histogram_with("parsim_query_latency_micros", &[])
            .unwrap();
        assert_eq!(h.count, 2);
        // Only the second query touched disk 1 with pages > 0.
        let d1 = s
            .histogram_with("parsim_disk_service_micros", &[("disk", "1")])
            .unwrap();
        assert_eq!(d1.count, 1);
    }

    #[test]
    fn degraded_traces_feed_the_degraded_counters() {
        let model = DiskModel::hp_workstation_1997();
        let m = EngineMetrics::new(1, 1);
        let mut t = trace(vec![4], &model);
        t.degraded = Some(crate::metrics::DegradedInfo {
            failed_over: vec![0],
            retries: 5,
            replica_pages: 9,
            added_latency: Duration::ZERO,
        });
        m.record_query(&t, &model);
        m.record_failure();
        let s = m.snapshot();
        assert_eq!(s.counter_total("parsim_queries_degraded_total"), 1);
        assert_eq!(s.counter_total("parsim_read_retries_total"), 5);
        assert_eq!(s.counter_total("parsim_replica_pages_total"), 9);
        assert_eq!(s.counter_total("parsim_queries_failed_total"), 1);
    }
}
