//! The engine builder — the one front door for constructing a
//! [`ParallelKnnEngine`].
//!
//! ```
//! use parsim_parallel::ParallelKnnEngine;
//! use parsim_datagen::{DataGenerator, UniformGenerator};
//!
//! let points = UniformGenerator::new(8).generate(2000, 1);
//! let engine = ParallelKnnEngine::builder(8)
//!     .disks(16)
//!     .replicas(1)
//!     .page_cache(256)
//!     .build(&points)
//!     .unwrap();
//! assert_eq!(engine.disks(), 16);
//! assert!(engine.has_replicas());
//! ```

use std::collections::BTreeSet;
use std::sync::Arc;

use parsim_decluster::near_optimal::colors_required;
use parsim_decluster::replica::{ChainedReplica, ReplicaRouting};
use parsim_decluster::{BucketBased, Declusterer, NearOptimal, ReplicaDeclusterer};
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_index::{
    KnnAlgorithm, LshConfig, ScanOrder, ScanTier, TreeVariant, DEFAULT_CACHE_SHARDS,
};
use parsim_storage::DiskModel;

use crate::config::{EngineConfig, SplitStrategy};
use crate::engine::{make_splitter_of, ParallelKnnEngine};
use crate::ingest::IngestConfig;
use crate::options::{ExecutionMode, FaultPolicy};
use crate::serve::AdmissionConfig;
use crate::EngineError;

/// A resolved declustering: the placement plus, when replicated, the
/// mirror router.
pub(crate) type ResolvedDecluster = (Arc<dyn Declusterer>, Option<Arc<dyn ReplicaRouting>>);

/// The default declustering for `disks` disks: the paper's near-optimal
/// coloring behind a quadrant partition, or — with replication — the
/// [`ReplicaDeclusterer`] that places both copies. Shared by the builder
/// and the engine's online reorganize (which re-derives the declustering
/// from the then-current data).
pub(crate) fn resolve_default_decluster(
    config: &EngineConfig,
    disks: usize,
    replicated: bool,
    splitter: QuadrantSplitter,
) -> Result<ResolvedDecluster, EngineError> {
    if replicated {
        let rd = Arc::new(
            ReplicaDeclusterer::new(config.dim, disks, splitter)
                .map_err(|e| EngineError::Internal(e.to_string()))?,
        );
        Ok((
            Arc::clone(&rd) as Arc<dyn Declusterer>,
            Some(rd as Arc<dyn ReplicaRouting>),
        ))
    } else {
        // `col` can use at most nextpow2(d+1) disks; extra disks could
        // never receive data, so the engine is capped to the usable count.
        let capped = disks.min(colors_required(config.dim) as usize);
        let method = NearOptimal::new(config.dim, capped)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Ok((Arc::new(BucketBased::new(method, splitter)), None))
    }
}

/// Builds a [`ParallelKnnEngine`], replacing the former
/// `build` / `build_near_optimal` / `with_page_cache` constructor sprawl.
///
/// Defaults: the paper's configuration ([`EngineConfig::paper_defaults`]),
/// near-optimal declustering over `colors_required(dim)` disks, no
/// replicas, no page cache, and an empty [`FaultPolicy`].
#[derive(Clone)]
pub struct EngineBuilder {
    config: EngineConfig,
    disks: Option<usize>,
    declusterer: Option<Arc<dyn Declusterer>>,
    replicas: usize,
    page_cache: Option<usize>,
    cache_shards: usize,
    fault_policy: FaultPolicy,
    execution: ExecutionMode,
    metrics: bool,
    admission: Option<AdmissionConfig>,
    ingest: Option<IngestConfig>,
    lsh: Option<LshConfig>,
}

impl EngineBuilder {
    /// A builder for `dim`-dimensional data with the paper's defaults.
    pub fn new(dim: usize) -> Self {
        EngineBuilder {
            config: EngineConfig::paper_defaults(dim),
            disks: None,
            declusterer: None,
            replicas: 0,
            page_cache: None,
            cache_shards: DEFAULT_CACHE_SHARDS,
            fault_policy: FaultPolicy::default(),
            execution: ExecutionMode::default(),
            metrics: false,
            admission: None,
            ingest: None,
            lsh: None,
        }
    }

    /// Replaces the whole configuration (keeps every other builder knob).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the disk count for the default near-optimal declustering.
    ///
    /// Without replicas the count is capped at `colors_required(dim)` —
    /// extra disks could never receive data. With replicas the surplus
    /// disks become dedicated mirror spares (and make the replica
    /// placement conflict-free). Ignored when an explicit
    /// [`EngineBuilder::declusterer`] is set, except that a mismatch with
    /// the declusterer's own disk count is an error.
    pub fn disks(mut self, disks: usize) -> Self {
        self.disks = Some(disks);
        self
    }

    /// Uses an explicit declusterer instead of the default near-optimal
    /// one. With [`EngineBuilder::replicas`], mirrors are routed by the
    /// chained rule (`(primary + 1) mod n`) since an arbitrary
    /// declusterer carries no placement of its own.
    pub fn declusterer(mut self, declusterer: Arc<dyn Declusterer>) -> Self {
        self.declusterer = Some(declusterer);
        self
    }

    /// Number of replica copies per bucket (0 or 1). With one replica
    /// every bucket is mirrored on a second disk chosen by
    /// [`ReplicaDeclusterer`] to avoid the primaries of the bucket's
    /// neighbors, and queries survive disk failures.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Installs an LRU page cache of `capacity` pages in front of every
    /// disk's primary tree. The cache is sharded (see
    /// [`EngineBuilder::cache_shards`]) so concurrent searches of the
    /// same disk never serialize on one global cache mutex.
    pub fn page_cache(mut self, capacity: usize) -> Self {
        self.page_cache = Some(capacity);
        self
    }

    /// Number of independently locked LRU shards per disk cache (clamped
    /// to at least 1; default [`DEFAULT_CACHE_SHARDS`]). One shard is
    /// exact global LRU behind a single lock — the pre-sharding behavior.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Chooses how queries execute: scoped per-call threads (the default
    /// reference implementation) or the persistent per-disk worker pool.
    /// See [`ExecutionMode`].
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the engine-wide degraded-mode defaults (per-disk timeout
    /// budget and flaky-read retry policy).
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Turns the engine-wide metrics registry on or off (default **off**).
    ///
    /// With metrics on, every layer records cumulative counters, gauges,
    /// and modeled-latency histograms readable through
    /// [`crate::ParallelKnnEngine::metrics`] /
    /// [`crate::EngineMetrics::snapshot`]. With the default off, the
    /// query path carries no extra atomic operations at all.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Turns on the serve layer: bounded per-disk admission queues with
    /// backpressure, optional per-query modeled deadlines, and optional
    /// cross-query page coalescing (see
    /// [`AdmissionConfig`] and the [`crate::serve`] module docs).
    /// Implies [`ExecutionMode::Pooled`] — admission control is a
    /// property of the persistent worker pool's queues.
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self.execution = ExecutionMode::Pooled;
        self
    }

    /// Turns on streaming ingest: the engine accepts
    /// [`crate::ParallelKnnEngine::insert`] /
    /// [`crate::ParallelKnnEngine::remove`] while queries run, buffering
    /// writes in a bounded delta overlay that every query merges exactly
    /// (see [`IngestConfig`] and the [`crate::ingest`] module docs).
    /// Without this knob the engine is read-only after bulk load and
    /// writes fail with [`EngineError::ReadOnly`].
    pub fn ingest(mut self, ingest: IngestConfig) -> Self {
        self.ingest = Some(ingest);
        self
    }

    /// Attaches the approximate tier: seeded random-projection LSH
    /// tables, fitted and declustered over the disks next to the exact
    /// trees at bulk load (and re-fitted by every
    /// [`crate::ParallelKnnEngine::reorganize`]). Exact-mode queries are
    /// unaffected — answers stay bit-identical with or without this knob;
    /// [`crate::QueryMode::Approx`] queries scan the hash buckets instead
    /// of the trees. Without this knob, `Approx` queries fail with
    /// [`EngineError::ApproxUnavailable`]. See `docs/TUNING.md` for
    /// choosing table and probe counts.
    pub fn approx(mut self, config: LshConfig) -> Self {
        self.lsh = Some(config);
        self
    }

    /// Sets the k-NN algorithm (RKV or HS).
    pub fn algorithm(mut self, algorithm: KnnAlgorithm) -> Self {
        self.config.algorithm = algorithm;
        self
    }

    /// Sets the engine-wide leaf-scan precision tier (default
    /// [`ScanTier::F64`]). Every tier returns bit-identical answers;
    /// the cheap tiers trade f64 kernel work for certified low-precision
    /// lower-bound scans. Individual queries can override via
    /// [`crate::QueryOptions::with_tier`]. See `docs/TUNING.md`.
    pub fn scan_tier(mut self, tier: ScanTier) -> Self {
        self.config.tier = tier;
        self
    }

    /// Sets the engine-wide leaf-scan coordinate order (default
    /// [`ScanOrder::Natural`]). With [`ScanOrder::Energy`] every bulk
    /// load — and every [`crate::ParallelKnnEngine::reorganize`] rebuild —
    /// stores leaf rows with coordinates permuted by descending per-leaf
    /// variance, so bounded scans cross the pruning bound earlier.
    /// Answers stay bit-identical on every tier; see `DESIGN.md` ("Scan
    /// order") and `docs/TUNING.md`.
    pub fn scan_order(mut self, order: ScanOrder) -> Self {
        self.config.order = order;
        self
    }

    /// Sets the index variant of the per-disk trees.
    pub fn variant(mut self, variant: TreeVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Sets the quadrant split strategy for bucket-based declustering.
    pub fn split_strategy(mut self, splits: SplitStrategy) -> Self {
        self.config.splits = splits;
        self
    }

    /// Sets the disk service-time model.
    pub fn disk_model(mut self, model: DiskModel) -> Self {
        self.config.disk_model = model;
        self
    }

    /// Builds the engine over `points`, bulk-loading one tree per disk
    /// (plus mirror trees when replicas are on). Item ids are the indexes
    /// into `points`.
    pub fn build(&self, points: &[Point]) -> Result<ParallelKnnEngine, EngineError> {
        self.build_with_items(
            points
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i as u64))
                .collect(),
        )
    }

    /// Builds the engine over explicitly identified items — `(point, id)`
    /// pairs with caller-chosen ids. This is [`EngineBuilder::build`] with
    /// control over the item ids, which matters when reconstructing an
    /// engine from a prior engine's contents (where ids must survive the
    /// round trip). Duplicate ids are rejected.
    pub fn build_with_items(
        &self,
        items: Vec<(Point, u64)>,
    ) -> Result<ParallelKnnEngine, EngineError> {
        if items.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        if self.replicas > 1 {
            return Err(EngineError::Internal(
                "at most one replica per bucket is supported".to_owned(),
            ));
        }
        let mut seen = BTreeSet::new();
        for &(_, id) in &items {
            if !seen.insert(id) {
                return Err(EngineError::Internal(format!("duplicate item id {id}")));
            }
        }
        let (declusterer, router): ResolvedDecluster = match &self.declusterer {
            Some(d) => {
                if let Some(n) = self.disks {
                    if n != d.disks() {
                        return Err(EngineError::DiskCountMismatch {
                            engine: n,
                            declusterer: d.disks(),
                        });
                    }
                }
                let router: Option<Arc<dyn ReplicaRouting>> = if self.replicas == 1 {
                    if d.disks() < 2 {
                        return Err(EngineError::Internal(
                            "replication needs at least two disks".to_owned(),
                        ));
                    }
                    Some(Arc::new(ChainedReplica::new(Arc::clone(d))))
                } else {
                    None
                };
                (Arc::clone(d), router)
            }
            None => {
                let splitter = make_splitter_of(items.iter().map(|(p, _)| p), &self.config)?;
                let disks = self
                    .disks
                    .unwrap_or(colors_required(self.config.dim) as usize);
                resolve_default_decluster(&self.config, disks, self.replicas == 1, splitter)?
            }
        };
        ParallelKnnEngine::build_internal(
            items,
            declusterer,
            router,
            self.config,
            self.fault_policy,
            self.page_cache,
            self.cache_shards,
            self.execution,
            self.metrics,
            self.admission,
            self.ingest,
            self.lsh,
            self.declusterer.is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_decluster::RoundRobin;

    #[test]
    fn default_disk_count_is_the_optimal_one() {
        let pts = UniformGenerator::new(5).generate(400, 1);
        let e = ParallelKnnEngine::builder(5).build(&pts).unwrap();
        assert_eq!(e.disks(), colors_required(5) as usize);
        assert!(!e.has_replicas());
    }

    #[test]
    fn disks_are_capped_without_replicas_but_not_with() {
        let pts = UniformGenerator::new(3).generate(400, 2);
        // colors_required(3) == 4: a 10-disk request folds back to 4...
        let plain = ParallelKnnEngine::builder(3).disks(10).build(&pts).unwrap();
        assert_eq!(plain.disks(), 4);
        // ...unless replicas are on — then the spares host mirrors.
        let replicated = ParallelKnnEngine::builder(3)
            .disks(10)
            .replicas(1)
            .build(&pts)
            .unwrap();
        assert_eq!(replicated.disks(), 10);
        assert!(replicated.has_replicas());
        // Primaries still only live on the first 4 disks.
        let loads = replicated.load_distribution();
        assert!(loads[4..].iter().all(|&l| l == 0), "loads: {loads:?}");
    }

    #[test]
    fn explicit_declusterer_with_replicas_uses_the_chained_rule() {
        let pts = UniformGenerator::new(4).generate(300, 3);
        let rr: Arc<dyn Declusterer> = Arc::new(RoundRobin::new(6).unwrap());
        let e = ParallelKnnEngine::builder(4)
            .declusterer(Arc::clone(&rr))
            .replicas(1)
            .build(&pts)
            .unwrap();
        assert!(e.has_replicas());
        // Round-robin primary i mirrors on (i + 1) mod 6.
        for d in 0..6 {
            assert_eq!(e.replica_disks_of(d), vec![(d + 1) % 6]);
        }
    }

    #[test]
    fn scan_tier_knob_sets_the_config() {
        let pts = UniformGenerator::new(4).generate(100, 5);
        let e = ParallelKnnEngine::builder(4)
            .scan_tier(ScanTier::F32)
            .build(&pts)
            .unwrap();
        assert_eq!(e.config().tier, ScanTier::F32);
        let d = ParallelKnnEngine::builder(4).build(&pts).unwrap();
        assert_eq!(d.config().tier, ScanTier::F64);
    }

    #[test]
    fn scan_order_knob_sets_the_config() {
        let pts = UniformGenerator::new(4).generate(100, 6);
        let e = ParallelKnnEngine::builder(4)
            .scan_order(ScanOrder::Energy)
            .build(&pts)
            .unwrap();
        assert_eq!(e.config().order, ScanOrder::Energy);
        let d = ParallelKnnEngine::builder(4).build(&pts).unwrap();
        assert_eq!(d.config().order, ScanOrder::Natural);
    }

    #[test]
    fn rejects_contradictory_requests() {
        let pts = UniformGenerator::new(4).generate(100, 4);
        let rr: Arc<dyn Declusterer> = Arc::new(RoundRobin::new(6).unwrap());
        assert!(matches!(
            ParallelKnnEngine::builder(4)
                .declusterer(Arc::clone(&rr))
                .disks(8)
                .build(&pts),
            Err(EngineError::DiskCountMismatch {
                engine: 8,
                declusterer: 6
            })
        ));
        assert!(ParallelKnnEngine::builder(4)
            .replicas(2)
            .build(&pts)
            .is_err());
        let one: Arc<dyn Declusterer> = Arc::new(RoundRobin::new(1).unwrap());
        assert!(ParallelKnnEngine::builder(4)
            .declusterer(one)
            .replicas(1)
            .build(&pts)
            .is_err());
    }
}
