//! The page-declustered parallel X-tree — the paper's exact architecture.
//!
//! One **global** X-tree indexes all feature vectors; the declustering
//! method decides on which disk each *data (leaf) page* resides. A k-NN
//! query performs the ordinary branch-and-bound traversal of the global
//! tree; all the data pages it needs are fetched from their disks in
//! parallel, so the query's I/O time is the service time of the
//! most-loaded disk — precisely the quantity the paper reports. The small
//! X-tree directory is cached in RAM (the 1997 cluster had ample memory
//! for it) and accounted separately.
//!
//! Because the page set a query reads is decided by the *shared* tree, it
//! is identical for every declustering method; the methods differ only in
//! how those pages spread over the disks. This isolates exactly the effect
//! the paper studies. (The sibling [`crate::ParallelKnnEngine`] models the
//! alternative share-nothing design with one local tree per disk.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use std::collections::HashMap;

use parsim_decluster::quantile::median_splits;
use parsim_decluster::{BucketDecluster, Declusterer, NearOptimal};
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_index::knn::Neighbor;
use parsim_index::node::{Node, NodeId};
use parsim_index::{NodeSink, SpatialTree, TreeParams, VisitOutcome};
use parsim_storage::{DiskArray, QueryCost, SimDisk};

use crate::config::{EngineConfig, SplitStrategy};
use crate::EngineError;

/// How leaf pages are mapped to disks.
enum PageAssignment {
    /// Leaf page id modulo n — round robin at page granularity.
    RoundRobinPages,
    /// The disk of the point-level declusterer, evaluated on the leaf's
    /// center (exact for disk-pure leaves; the build aligns them).
    Declusterer(Arc<dyn Declusterer>),
    /// A bucket method over a quadrant splitter, evaluated on the leaf's
    /// center bucket (exact for bucket-pure leaves; the build aligns
    /// them).
    Bucket {
        method: Arc<dyn BucketDecluster>,
        splitter: Arc<QuadrantSplitter>,
    },
}

/// The visit sink installed on the global tree: leaf pages charge their
/// assigned disk, directory pages a separate counter.
struct DeclusterSink {
    disks: Vec<Arc<SimDisk>>,
    assignment: PageAssignment,
    /// Leaf → disk map recorded at build time (bucket-pure leaves).
    /// Leaves created later (splits after dynamic inserts) fall back to
    /// the assignment rule.
    leaf_map: RwLock<HashMap<u32, usize>>,
    directory_reads: AtomicU64,
}

impl DeclusterSink {
    fn disk_of_leaf(&self, id: NodeId, node: &Node) -> usize {
        if let Some(&d) = self.leaf_map.read().get(&id.0) {
            return d;
        }
        let d = match &self.assignment {
            PageAssignment::RoundRobinPages => id.0 as usize % self.disks.len(),
            PageAssignment::Declusterer(dec) => {
                let center = node.mbr().expect("visited leaves are non-empty").center();
                dec.assign(id.0 as u64, &center)
            }
            PageAssignment::Bucket { method, splitter } => {
                let center = node.mbr().expect("visited leaves are non-empty").center();
                method.disk_of_bucket(splitter.bucket_of(&center), splitter.dim())
            }
        };
        self.leaf_map.write().insert(id.0, d);
        d
    }
}

impl NodeSink for DeclusterSink {
    fn visit(&self, id: NodeId, node: &Node) -> VisitOutcome {
        if node.is_leaf() {
            let disk = self.disk_of_leaf(id, node);
            self.disks[disk].touch_read(node.pages() as u64);
        } else {
            self.directory_reads
                .fetch_add(node.pages() as u64, Ordering::Relaxed);
        }
        VisitOutcome::Charged
    }
}

/// The paper's parallel X-tree: one global index whose data pages are
/// declustered over `n` simulated disks.
pub struct DeclusteredXTree {
    config: EngineConfig,
    array: DiskArray,
    tree: SpatialTree,
    sink: Arc<DeclusterSink>,
    name: String,
    next_item: u64,
}

impl DeclusteredXTree {
    /// Builds the tree with a **bucket-level** declustering method over a
    /// quadrant splitter. Points are grouped by bucket before bulk
    /// loading, so every leaf page holds points of exactly one bucket and
    /// the declustering is page-exact. The resulting global tree is
    /// **identical for every bucket method** given the same splitter —
    /// exactly the comparison the paper's figures make.
    pub fn build_bucket(
        points: &[Point],
        method: Arc<dyn BucketDecluster>,
        splitter: QuadrantSplitter,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::validate(points, &config)?;
        if splitter.dim() != config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: config.dim,
                got: splitter.dim(),
            });
        }
        let disks = method.disks();
        // Partition by bucket, ordered by bucket number (z-order of the
        // quadrant grid, which keeps neighboring buckets close in the
        // directory).
        let mut by_bucket: std::collections::BTreeMap<u64, Vec<(Point, u64)>> =
            std::collections::BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            by_bucket
                .entry(splitter.bucket_of(p))
                .or_default()
                .push((p.clone(), i as u64));
        }
        let group_to_disk: Vec<usize> = by_bucket
            .keys()
            .map(|&b| method.disk_of_bucket(b, splitter.dim()))
            .collect();
        let groups: Vec<Vec<(Point, u64)>> = by_bucket.into_values().collect();
        let name = method.name().to_owned();
        Self::finish(
            groups,
            group_to_disk,
            PageAssignment::Bucket {
                method,
                splitter: Arc::new(splitter),
            },
            disks,
            config,
            name,
        )
    }

    /// Builds the tree with an explicit point-level declusterer (e.g. the
    /// recursive declusterer). Points are grouped by their assigned disk
    /// before bulk loading, so every leaf page holds points of exactly one
    /// disk and the declustering is page-exact.
    pub fn build(
        points: &[Point],
        declusterer: Arc<dyn Declusterer>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::validate(points, &config)?;
        let disks = declusterer.disks();
        let mut groups: Vec<Vec<(Point, u64)>> = vec![Vec::new(); disks];
        for (i, p) in points.iter().enumerate() {
            groups[declusterer.assign(i as u64, p)].push((p.clone(), i as u64));
        }
        let name = declusterer.name();
        let group_to_disk: Vec<usize> = (0..disks).collect();
        Self::finish(
            groups,
            group_to_disk,
            PageAssignment::Declusterer(declusterer),
            disks,
            config,
            name,
        )
    }

    /// Builds the tree with round-robin **page** placement (leaf page `j`
    /// on disk `j mod n`) — the baseline of the paper's Figure 2/3 at page
    /// granularity.
    pub fn build_round_robin_pages(
        points: &[Point],
        disks: usize,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::validate(points, &config)?;
        if disks == 0 {
            return Err(EngineError::Internal("need at least one disk".into()));
        }
        let items: Vec<(Point, u64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        Self::finish(
            vec![items],
            Vec::new(),
            PageAssignment::RoundRobinPages,
            disks,
            config,
            "round-robin-pages".to_owned(),
        )
    }

    /// Builds the tree with the paper's near-optimal declustering (folded
    /// to at most `disks` disks).
    pub fn build_near_optimal(
        points: &[Point],
        disks: usize,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::validate(points, &config)?;
        let splitter = match config.splits {
            SplitStrategy::Midpoint => QuadrantSplitter::midpoint(config.dim)
                .map_err(|e| EngineError::Internal(e.to_string()))?,
            SplitStrategy::DataMedian => {
                median_splits(points).map_err(|e| EngineError::Internal(e.to_string()))?
            }
        };
        let capped =
            disks.min(parsim_decluster::near_optimal::colors_required(config.dim) as usize);
        let method = NearOptimal::new(config.dim, capped)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Self::build_bucket(points, Arc::new(method), splitter, config)
    }

    fn validate(points: &[Point], config: &EngineConfig) -> Result<(), EngineError> {
        if points.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        for p in points {
            if p.dim() != config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        Ok(())
    }

    fn finish(
        groups: Vec<Vec<(Point, u64)>>,
        group_to_disk: Vec<usize>,
        assignment: PageAssignment,
        disks: usize,
        config: EngineConfig,
        name: String,
    ) -> Result<Self, EngineError> {
        let array = DiskArray::new(disks, config.disk_model)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        let params = TreeParams::for_dim(config.dim, config.variant)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        let (tree, group_leaves) = SpatialTree::bulk_load_grouped(params, groups)
            .map_err(|e| EngineError::Internal(e.to_string()))?;

        let mut leaf_map = HashMap::new();
        if !matches!(assignment, PageAssignment::RoundRobinPages) {
            for (gi, leaves) in group_leaves.iter().enumerate() {
                for id in leaves {
                    leaf_map.insert(id.0, group_to_disk[gi]);
                }
            }
        }
        let sink = Arc::new(DeclusterSink {
            disks: array.iter().cloned().collect(),
            assignment,
            leaf_map: RwLock::new(leaf_map),
            directory_reads: AtomicU64::new(0),
        });
        let tree = tree.with_sink(Arc::clone(&sink) as Arc<dyn NodeSink>);
        let next_item = tree.len() as u64;
        Ok(DeclusteredXTree {
            config,
            array,
            tree,
            sink,
            name,
            next_item,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.array.len()
    }

    /// Name of the declustering in use (for experiment logs).
    pub fn declusterer_name(&self) -> &str {
        &self.name
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The global tree (for statistics).
    pub fn tree(&self) -> &SpatialTree {
        &self.tree
    }

    /// Per-disk counts of *data pages* (leaves) currently assigned.
    pub fn page_distribution(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.disks()];
        for (&leaf, &disk) in self.sink.leaf_map.read().iter() {
            let _ = leaf;
            counts[disk] += 1;
        }
        counts
    }

    /// Runs a k-NN query on the global tree. Returns the neighbors and the
    /// per-disk data-page cost; directory pages (RAM-cached) are available
    /// via the second tuple element of [`DeclusteredXTree::knn_detailed`].
    pub fn knn(&self, query: &Point, k: usize) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        let (nb, cost, _) = self.knn_detailed(query, k)?;
        Ok((nb, cost))
    }

    /// Like [`DeclusteredXTree::knn`] but also returns the number of
    /// directory pages the traversal touched.
    pub fn knn_detailed(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryCost, u64), EngineError> {
        if query.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: query.dim(),
            });
        }
        let scope = self.array.begin_query();
        let dir_before = self.sink.directory_reads.load(Ordering::Relaxed);
        let neighbors = self.tree.knn(query, k, self.config.algorithm);
        let dir_after = self.sink.directory_reads.load(Ordering::Relaxed);
        Ok((neighbors, scope.finish(&self.array), dir_after - dir_before))
    }

    /// The disk service-time model in use.
    pub fn disk_model(&self) -> parsim_storage::DiskModel {
        *self.array.model()
    }

    /// Runs a similarity ε-range query: all points within `radius` of
    /// `center`, sorted by distance, plus the per-disk page cost.
    pub fn range_query(
        &self,
        center: &Point,
        radius: f64,
    ) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        if center.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: center.dim(),
            });
        }
        let scope = self.array.begin_query();
        let hits = self.tree.range_query(center, radius);
        Ok((hits, scope.finish(&self.array)))
    }

    /// Runs a window query: all points inside the closed rectangle, plus
    /// the per-disk page cost.
    pub fn window_query(
        &self,
        window: &parsim_geometry::HyperRect,
    ) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        if window.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: window.dim(),
            });
        }
        let scope = self.array.begin_query();
        let hits = self.tree.window_query(window);
        Ok((hits, scope.finish(&self.array)))
    }

    /// Starts an incremental (distance-browsing) neighbor scan; page costs
    /// accrue on the disks as the iterator advances.
    pub fn nn_iter(&self, query: &Point) -> parsim_index::NnIterator<'_> {
        self.tree.nn_iter(query)
    }

    /// Inserts a point dynamically. New leaves created by later splits are
    /// assigned by the declustering rule on their region center.
    pub fn insert(&mut self, point: Point) -> Result<u64, EngineError> {
        if point.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        let item = self.next_item;
        self.next_item += 1;
        // Structural changes invalidate recorded leaf placements of the
        // nodes involved; conservatively drop the cache for simplicity —
        // the assignment rule recomputes on demand.
        self.sink.leaf_map.write().clear();
        self.tree
            .insert(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Ok(item)
    }

    /// Deletes a previously stored point. Structural changes invalidate
    /// recorded leaf placements, so the placement cache is dropped and
    /// recomputed lazily from the assignment rule.
    pub fn delete(&mut self, point: &Point, item: u64) -> Result<(), EngineError> {
        if point.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        self.sink.leaf_map.write().clear();
        self.tree
            .delete(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_index::knn::brute_force_knn;

    fn build(n: usize, dim: usize, disks: usize) -> (DeclusteredXTree, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 3);
        let config = EngineConfig::paper_defaults(dim);
        let e = DeclusteredXTree::build_near_optimal(&pts, disks, config).unwrap();
        (e, pts)
    }

    #[test]
    fn knn_is_exact() {
        let (e, pts) = build(3000, 8, 8);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for q in UniformGenerator::new(8).generate(10, 99) {
            let (got, cost) = e.knn(&q, 10).unwrap();
            let want = brute_force_knn(&data, &q, 10);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
            assert!(cost.total_reads > 0);
        }
    }

    #[test]
    fn page_set_is_method_independent() {
        // The global tree is shared, so total pages per query must be
        // identical across declusterings built from the same disk-pure
        // grouping order... here we check the weaker, robust property:
        // round-robin pages and near-optimal read similar totals (same
        // tree family), but distribute differently.
        let dim = 8;
        let pts = UniformGenerator::new(dim).generate(4000, 5);
        let config = EngineConfig::paper_defaults(dim);
        let no = DeclusteredXTree::build_near_optimal(&pts, 8, config).unwrap();
        let rr = DeclusteredXTree::build_round_robin_pages(&pts, 8, config).unwrap();
        let q = UniformGenerator::new(dim).generate(1, 6).pop().unwrap();
        let (_, c1) = no.knn(&q, 10).unwrap();
        let (_, c2) = rr.knn(&q, 10).unwrap();
        assert!(c1.total_reads > 0 && c2.total_reads > 0);
        // Same order of magnitude (both are bulk-loaded X-trees).
        let ratio = c1.total_reads as f64 / c2.total_reads as f64;
        assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn directory_pages_are_counted_separately() {
        let (e, _) = build(3000, 8, 8);
        let q = UniformGenerator::new(8).generate(1, 7).pop().unwrap();
        let (_, cost, dir) = e.knn_detailed(&q, 10).unwrap();
        assert!(dir > 0, "directory must be traversed");
        assert!(cost.total_reads > 0, "leaves must be read");
    }

    #[test]
    fn leaf_pages_balance_on_uniform_data() {
        let (e, pts) = build(8000, 8, 8);
        // Run a workload so the lazy leaf map fills, then check placement.
        for q in UniformGenerator::new(8).generate(20, 8) {
            e.knn(&q, 10).unwrap();
        }
        let dist = e.page_distribution();
        let total: u64 = dist.iter().sum();
        assert!(total > 0);
        let _ = pts;
        let max = *dist.iter().max().unwrap() as f64;
        let avg = total as f64 / dist.len() as f64;
        assert!(max / avg < 2.0, "distribution {dist:?}");
    }

    #[test]
    fn dynamic_insert_keeps_answers_correct() {
        let (mut e, pts) = build(1000, 6, 4);
        let extra = UniformGenerator::new(6).generate(300, 11);
        for p in &extra {
            e.insert(p.clone()).unwrap();
        }
        assert_eq!(e.len(), 1300);
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
        let (res, _) = e.knn(&extra[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let config = EngineConfig::paper_defaults(4);
        assert!(matches!(
            DeclusteredXTree::build_near_optimal(&[], 4, config),
            Err(EngineError::EmptyDataSet)
        ));
        let (e, _) = build(100, 4, 4);
        let wrong = Point::new(vec![0.1; 3]).unwrap();
        assert!(e.knn(&wrong, 1).is_err());
    }
}

#[cfg(test)]
mod passthrough_tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_geometry::HyperRect;

    fn engine(dim: usize, n: usize) -> (DeclusteredXTree, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 23);
        let config = EngineConfig::paper_defaults(dim);
        let e = DeclusteredXTree::build_near_optimal(&pts, 8, config).unwrap();
        (e, pts)
    }

    #[test]
    fn range_query_matches_scan_and_charges_disks() {
        let (e, pts) = engine(5, 3000);
        let center = Point::new(vec![0.5; 5]).unwrap();
        let (hits, cost) = e.range_query(&center, 0.4).unwrap();
        let expected = pts.iter().filter(|p| p.dist(&center) <= 0.4).count();
        assert_eq!(hits.len(), expected);
        assert!(hits.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert!(cost.total_reads > 0);
        // The sphere pages must spread over several disks.
        let active = cost.per_disk_reads.iter().filter(|&&r| r > 0).count();
        assert!(
            active >= 4,
            "only {active} disks active: {:?}",
            cost.per_disk_reads
        );
    }

    #[test]
    fn window_query_matches_scan() {
        let (e, pts) = engine(4, 2000);
        let window = HyperRect::new(vec![0.2; 4], vec![0.8; 4]).unwrap();
        let (hits, cost) = e.window_query(&window).unwrap();
        let expected = pts.iter().filter(|p| window.contains_point(p)).count();
        assert_eq!(hits.len(), expected);
        assert!(cost.total_reads > 0);
    }

    #[test]
    fn nn_iter_streams_in_order_and_charges() {
        let (e, _) = engine(6, 2500);
        let q = Point::new(vec![0.3; 6]).unwrap();
        let scope = e.array.begin_query();
        let firsts: Vec<f64> = e.nn_iter(&q).take(20).map(|nb| nb.dist).collect();
        let cost = scope.finish(&e.array);
        assert_eq!(firsts.len(), 20);
        assert!(firsts.windows(2).all(|w| w[0] <= w[1]));
        assert!(cost.total_reads > 0);
    }

    #[test]
    fn insert_then_delete_round_trip() {
        let dim = 5;
        let pts = UniformGenerator::new(dim).generate(800, 41);
        let config = EngineConfig::paper_defaults(dim);
        let mut e = DeclusteredXTree::build_near_optimal(&pts, 8, config).unwrap();
        let extra = UniformGenerator::new(dim).generate(50, 42);
        let mut ids = Vec::new();
        for p in &extra {
            ids.push(e.insert(p.clone()).unwrap());
        }
        assert_eq!(e.len(), 850);
        for (p, id) in extra.iter().zip(&ids) {
            e.delete(p, *id).unwrap();
        }
        assert_eq!(e.len(), 800);
        // Remaining data still answers exactly.
        let (res, _) = e.knn(&pts[3], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
        // Deleting twice fails cleanly.
        assert!(e.delete(&extra[0], ids[0]).is_err());
    }

    #[test]
    fn queries_with_wrong_dimension_fail() {
        let (e, _) = engine(4, 200);
        let bad = Point::new(vec![0.5; 3]).unwrap();
        assert!(e.range_query(&bad, 0.1).is_err());
        let bad_window = HyperRect::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
        assert!(e.window_query(&bad_window).is_err());
    }
}
