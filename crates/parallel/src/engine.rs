//! The parallel k-NN engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parsim_decluster::quantile::median_splits;
use parsim_decluster::{BucketBased, Declusterer, NearOptimal};
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_index::knn::{forest_knn_traced, Neighbor, SharedBound};
use parsim_index::{CachingSink, DiskSink, NodeSink, SpatialTree, TreeParams};
use parsim_storage::{DiskArray, QueryCost};

use crate::config::{EngineConfig, SplitStrategy};
use crate::metrics::QueryTrace;
use crate::EngineError;

/// The paper's parallel similarity-search system: a declusterer assigns
/// every feature vector to one of `n` simulated disks, each disk carries a
/// local X-tree, and k-NN queries execute on all disks concurrently.
pub struct ParallelKnnEngine {
    config: EngineConfig,
    array: DiskArray,
    trees: Vec<SpatialTree>,
    declusterer: Arc<dyn Declusterer>,
    next_seq: u64,
    /// Per-disk page caches; empty unless
    /// [`ParallelKnnEngine::with_page_cache`] was called.
    caches: Vec<Arc<CachingSink>>,
}

impl ParallelKnnEngine {
    /// Builds an engine over `points` with an explicit declusterer.
    ///
    /// The per-disk trees are bulk-loaded. Item ids are the indexes into
    /// `points`.
    pub fn build(
        points: &[Point],
        declusterer: Arc<dyn Declusterer>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        if points.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        for p in points {
            if p.dim() != config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        let disks = declusterer.disks();
        let array = DiskArray::new(disks, config.disk_model)
            .map_err(|e| EngineError::Internal(e.to_string()))?;

        // Partition the points over the disks.
        let mut partitions: Vec<Vec<(Point, u64)>> = vec![Vec::new(); disks];
        for (i, p) in points.iter().enumerate() {
            let disk = declusterer.assign(i as u64, p);
            partitions[disk].push((p.clone(), i as u64));
        }

        // One bulk-loaded tree per disk, charging that disk.
        let mut trees = Vec::with_capacity(disks);
        for (i, part) in partitions.into_iter().enumerate() {
            let params = TreeParams::for_dim(config.dim, config.variant)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
            let tree = SpatialTree::bulk_load(params, part)
                .map_err(|e| EngineError::Internal(e.to_string()))?
                .with_disk(Arc::clone(array.disk(i)));
            trees.push(tree);
        }

        Ok(ParallelKnnEngine {
            config,
            array,
            trees,
            declusterer,
            next_seq: points.len() as u64,
            caches: Vec::new(),
        })
    }

    /// Installs an LRU page cache of `capacity` pages in front of every
    /// disk. Cached node visits no longer charge the disk; per-query cache
    /// hits are reported in the [`QueryTrace`].
    pub fn with_page_cache(mut self, capacity: usize) -> Self {
        let caches: Vec<Arc<CachingSink>> = (0..self.trees.len())
            .map(|i| {
                let disk_sink: Arc<dyn NodeSink> =
                    Arc::new(DiskSink(Arc::clone(self.array.disk(i))));
                Arc::new(CachingSink::new(disk_sink, capacity))
            })
            .collect();
        self.trees = self
            .trees
            .into_iter()
            .zip(&caches)
            .map(|(t, c)| t.with_sink(Arc::clone(c) as Arc<dyn NodeSink>))
            .collect();
        self.caches = caches;
        self
    }

    /// The per-disk page caches (empty for an uncached engine).
    pub fn caches(&self) -> &[Arc<CachingSink>] {
        &self.caches
    }

    /// Builds an engine with the paper's **near-optimal declustering**
    /// (folded to `disks` disks) and the configured split strategy.
    pub fn build_near_optimal(
        points: &[Point],
        disks: usize,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        if points.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        let splitter = Self::make_splitter(points, &config)?;
        // `col` can use at most nextpow2(d+1) disks; extra disks could never
        // receive data, so the engine is capped to the usable count.
        let capped =
            disks.min(parsim_decluster::near_optimal::colors_required(config.dim) as usize);
        let method = NearOptimal::new(config.dim, capped)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Self::build(points, Arc::new(BucketBased::new(method, splitter)), config)
    }

    fn make_splitter(
        points: &[Point],
        config: &EngineConfig,
    ) -> Result<QuadrantSplitter, EngineError> {
        match config.splits {
            SplitStrategy::Midpoint => QuadrantSplitter::midpoint(config.dim)
                .map_err(|e| EngineError::Internal(e.to_string())),
            SplitStrategy::DataMedian => {
                median_splits(points).map_err(|e| EngineError::Internal(e.to_string()))
            }
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.array.len()
    }

    /// The declusterer in use.
    pub fn declusterer(&self) -> &Arc<dyn Declusterer> {
        &self.declusterer
    }

    /// Total number of indexed points.
    pub fn len(&self) -> usize {
        self.trees.iter().map(SpatialTree::len).sum()
    }

    /// True if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-disk point counts — the load-balance view.
    pub fn load_distribution(&self) -> Vec<usize> {
        self.trees.iter().map(SpatialTree::len).collect()
    }

    /// Inserts a point dynamically (the system "is completely dynamical",
    /// Section 4.3).
    pub fn insert(&mut self, point: Point) -> Result<u64, EngineError> {
        if point.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        let item = self.next_seq;
        self.next_seq += 1;
        let disk = self.declusterer.assign(item, &point);
        self.trees[disk]
            .insert(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Ok(item)
    }

    /// Deletes a previously inserted point.
    pub fn delete(&mut self, point: &Point, item: u64) -> Result<(), EngineError> {
        let disk = self.declusterer.assign(item, point);
        self.trees[disk]
            .delete(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))
    }

    /// Runs a k-NN query against the declustered data and returns the `k`
    /// nearest neighbors plus the per-disk page cost of the query.
    ///
    /// This is the paper's **Var. 3 parallel search**: one thread per
    /// disk, each running a branch-and-bound (RKV) or best-first (HS)
    /// search on its local tree, all pruning against a single
    /// atomically-shared bound — the tightest k-th-best distance any disk
    /// has published so far. The per-disk candidate lists are merged into
    /// the exact global answer; every visited node charges the disk that
    /// stores it, and the cost's `parallel_time` is the service time of
    /// the most-loaded disk (the paper's metric — all disks fetch their
    /// pages concurrently, the busiest one gates).
    pub fn knn(&self, query: &Point, k: usize) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        let (merged, trace) = self.knn_traced(query, k)?;
        Ok((merged, trace.cost(self.array.model())))
    }

    /// Runs [`ParallelKnnEngine::knn`] and returns the full
    /// [`QueryTrace`] — per-disk pages, pruning and cache counters, and
    /// measured wall-clock vs modeled service time.
    pub fn knn_traced(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        if query.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: query.dim(),
            });
        }
        let algorithm = self.config.algorithm;
        let start = Instant::now();
        let shared = SharedBound::new();
        // One scoped thread per disk; each returns its local candidates
        // and locally-counted work so the trace is exact per query.
        let locals: Vec<_> = std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = self
                .trees
                .iter()
                .map(|tree| s.spawn(move || tree.knn_traced(query, k, algorithm, Some(shared))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("per-disk search does not panic"))
                .collect()
        });
        let wall = start.elapsed();
        let merged = merge_candidates(locals.iter().map(|(c, _)| c.as_slice()), k);
        let stats: Vec<_> = locals.iter().map(|(_, s)| *s).collect();
        let trace = QueryTrace::from_stats(&stats, wall, self.array.model());
        Ok((merged, trace))
    }

    /// Answers a batch of queries on a bounded worker pool sized to the
    /// host's available parallelism. See
    /// [`ParallelKnnEngine::knn_batch_with`].
    pub fn knn_batch(
        &self,
        queries: &[Point],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.knn_batch_with(queries, k, workers)
    }

    /// Answers a batch of queries on a bounded pool of `workers` threads
    /// (clamped to at least 1), in the paper's **inter-query** parallel
    /// mode: each worker pulls the next unanswered query and runs the
    /// globally-pruned forest search for it, so `workers` queries are in
    /// flight at any time and every disk serves all of them concurrently.
    ///
    /// Results are returned in query order, each with its own exact
    /// [`QueryTrace`] (pages are counted in the executing worker, not read
    /// from the shared disk counters, so concurrent queries never blend).
    pub fn knn_batch_with(
        &self,
        queries: &[Point],
        k: usize,
        workers: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        for q in queries {
            if q.dim() != self.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: self.config.dim,
                    got: q.dim(),
                });
            }
        }
        let algorithm = self.config.algorithm;
        let model = *self.array.model();
        let next = AtomicUsize::new(0);
        let workers = workers.clamp(1, queries.len().max(1));
        let mut results: Vec<Option<(Vec<Neighbor>, QueryTrace)>> =
            (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let refs: Vec<&SpatialTree> = self.trees.iter().collect();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                return out;
                            }
                            let start = Instant::now();
                            let (res, stats) = forest_knn_traced(&refs, &queries[i], k, algorithm);
                            let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                            out.push((i, res, trace));
                        }
                    })
                })
                .collect();
            for h in handles {
                for (i, res, trace) in h.join().expect("batch worker does not panic") {
                    results[i] = Some((res, trace));
                }
            }
        });
        Ok(results
            .into_iter()
            .map(|r| r.expect("every query index was claimed by a worker"))
            .collect())
    }

    /// Runs a k-NN query with **independent** per-disk searches: every
    /// disk finds its local top-`k` to completion (no shared bound) and
    /// the candidates are merged. This models a share-nothing cluster
    /// without inter-node pruning traffic; it reads more pages than
    /// [`ParallelKnnEngine::knn`] and is kept for the ablation benches.
    pub fn knn_independent(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        if query.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: query.dim(),
            });
        }
        let scope = self.array.begin_query();
        let algorithm = self.config.algorithm;

        let mut locals: Vec<Vec<Neighbor>> = Vec::with_capacity(self.trees.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .trees
                .iter()
                .map(|tree| s.spawn(move || tree.knn(query, k, algorithm)))
                .collect();
            for h in handles {
                locals.push(h.join().expect("local knn does not panic"));
            }
        });

        let merged = merge_candidates(locals.iter().map(Vec::as_slice), k);
        Ok((merged, scope.finish(&self.array)))
    }

    /// Reorganizes the engine for the current data: recomputes the
    /// declustering (median splits from the stored points) and rebuilds
    /// the per-disk trees. Returns the rebuilt engine.
    ///
    /// This is the paper's reorganization step for data whose distribution
    /// drifted after many insertions.
    pub fn reorganize(self) -> Result<Self, EngineError> {
        let mut points: Vec<(u64, Point)> = Vec::with_capacity(self.len());
        for tree in &self.trees {
            for node in tree.iter_nodes() {
                if let parsim_index::node::Node::Leaf { entries, .. } = node {
                    for (row, item) in entries.iter() {
                        points.push((item, Point::from_vec(row.to_vec())));
                    }
                }
            }
        }
        points.sort_by_key(|(item, _)| *item);
        let pts: Vec<Point> = points.into_iter().map(|(_, p)| p).collect();
        Self::build_near_optimal(&pts, self.disks(), self.config)
    }

    /// Immutable access to the disk array (for experiment accounting).
    pub fn array(&self) -> &DiskArray {
        &self.array
    }

    /// Immutable access to the per-disk trees (for statistics).
    pub fn trees(&self) -> &[SpatialTree] {
        &self.trees
    }
}

/// Merges per-disk candidate lists into the global top `k` (ties broken by
/// item id, matching [`parsim_index::knn::brute_force_knn`]).
fn merge_candidates<'a>(locals: impl Iterator<Item = &'a [Neighbor]>, k: usize) -> Vec<Neighbor> {
    let mut merged: Vec<Neighbor> = locals.flatten().cloned().collect();
    merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_index::knn::brute_force_knn;

    fn engine(disks: usize, n: usize, dim: usize) -> (ParallelKnnEngine, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 7);
        let config = EngineConfig::paper_defaults(dim);
        let e = ParallelKnnEngine::build_near_optimal(&pts, disks, config).unwrap();
        (e, pts)
    }

    #[test]
    fn parallel_knn_is_exact() {
        let (e, pts) = engine(8, 3000, 8);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for q in UniformGenerator::new(8).generate(10, 100) {
            let (got, cost) = e.knn(&q, 10).unwrap();
            let want = brute_force_knn(&data, &q, 10);
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
            assert!(cost.total_reads > 0);
            assert_eq!(cost.per_disk_reads.len(), 8);
        }
    }

    #[test]
    fn load_is_roughly_balanced_on_uniform_data() {
        let (e, _) = engine(8, 8000, 8);
        let loads = e.load_distribution();
        assert_eq!(loads.iter().sum::<usize>(), 8000);
        let max = *loads.iter().max().unwrap() as f64;
        let avg = 8000.0 / 8.0;
        assert!(max / avg < 1.7, "loads: {loads:?}");
    }

    #[test]
    fn dynamic_insert_and_delete() {
        let (mut e, pts) = engine(4, 500, 5);
        let extra = UniformGenerator::new(5).generate(100, 42);
        let mut ids = Vec::new();
        for p in &extra {
            ids.push(e.insert(p.clone()).unwrap());
        }
        assert_eq!(e.len(), 600);
        for (p, id) in extra.iter().zip(&ids) {
            e.delete(p, *id).unwrap();
        }
        assert_eq!(e.len(), 500);
        // Original points still answer queries.
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        let config = EngineConfig::paper_defaults(4);
        assert!(matches!(
            ParallelKnnEngine::build_near_optimal(&[], 4, config),
            Err(EngineError::EmptyDataSet)
        ));
        let (e, _) = engine(4, 100, 5);
        let wrong = Point::new(vec![0.5; 3]).unwrap();
        assert!(matches!(
            e.knn(&wrong, 1),
            Err(EngineError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn parallel_cost_beats_sequential_cost() {
        let (e, _) = engine(8, 5000, 10);
        let queries = UniformGenerator::new(10).generate(20, 11);
        let mut par = 0u64;
        let mut tot = 0u64;
        for q in &queries {
            let (_, cost) = e.knn(q, 10).unwrap();
            par += cost.max_reads;
            tot += cost.total_reads;
        }
        // With 8 disks the busiest disk must read far less than everything.
        assert!(par * 2 < tot, "max {par} vs total {tot}");
    }

    #[test]
    fn reorganize_preserves_contents() {
        let (e, pts) = engine(4, 800, 6);
        let before = e.len();
        let e = e.reorganize().unwrap();
        assert_eq!(e.len(), before);
        let (res, _) = e.knn(&pts[5], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }
}
