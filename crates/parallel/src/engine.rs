//! The parallel k-NN engine.
//!
//! The engine's shared, thread-safe state (disk array, per-disk trees,
//! mirror trees) lives in an `EngineCore` behind an `Arc`, so both the
//! scoped reference paths and the persistent worker pool of
//! [`crate::pool`] execute the same per-disk steps against the same data.
//!
//! Since the streaming-ingest redesign the engine itself is a thin handle
//! over an `EngineShared`: the swappable `EngineInner` (core + pool +
//! build recipe) behind a `RwLock`, next to the write-path state — the
//! delta buffer of [`crate::ingest`], the id allocator, and the shadow-
//! rebuild machinery. Every maintenance operation takes `&self`;
//! [`ParallelKnnEngine::reorganize`] bulk-loads a replacement inner off
//! to the side and swaps it in atomically while queries keep running.
//! See `DESIGN.md` ("Query execution backbone", "Streaming ingest &
//! online reorganize") for the full picture.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use parsim_decluster::quantile::median_splits_of;
use parsim_decluster::replica::ReplicaRouting;
use parsim_decluster::Declusterer;
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_index::knn::{
    forest_itinerary, forest_knn_traced_ordered, ForestCursor, Neighbor, ScanTier, SearchStats,
    SharedBound,
};
use parsim_index::{
    CachingSink, CoalescingSink, DiskSink, KnnAlgorithm, LshConfig, NodeSink, ScanOrder,
    SpatialTree, TreeParams,
};
use parsim_storage::{DiskArray, DiskModel, FaultInjector, FaultKind, QueryCost};

use crate::builder::{resolve_default_decluster, EngineBuilder};
use crate::config::{EngineConfig, SplitStrategy};
use crate::ingest::{DeltaOp, DeltaState, IngestConfig, QueryOverlay};
use crate::lsh::{merge_unique_candidates, DiskProbes, LshCounters, LshRuntime};
use crate::metrics::{DegradedInfo, QueryTrace};
use crate::obs::EngineMetrics;
use crate::options::{
    ExecutionMode, FaultPolicy, QueryMode, QueryOptions, QueryResult, RetryPolicy,
};
use crate::pool::{Completion, PendingQuery, Phase, QueryTask, Stage, WorkerPool};
use crate::serve::AdmissionConfig;
use crate::EngineError;

/// One query's answer on the batch path: neighbors plus the exact trace.
pub(crate) type TracedAnswer = Result<(Vec<Neighbor>, QueryTrace), EngineError>;

/// The paper's parallel similarity-search system: a declusterer assigns
/// every feature vector to one of `n` simulated disks, each disk carries a
/// local X-tree, and k-NN queries execute on all disks concurrently.
///
/// Engines are constructed with [`ParallelKnnEngine::builder`]. With
/// [`EngineBuilder::replicas`] every bucket additionally gets a mirror
/// copy on a second disk, and queries survive disk failures injected
/// through [`ParallelKnnEngine::faults`]: reads against a failed, flaky,
/// or over-budget disk **fail over** to the replicas and still return the
/// exact (bit-identical) answer.
///
/// With [`EngineBuilder::execution`] set to [`ExecutionMode::Pooled`] the
/// engine keeps one persistent worker thread per disk and queries are
/// enqueued ([`ParallelKnnEngine::submit`]) instead of spawning threads;
/// dropping the engine drains in-flight queries and joins the pool.
///
/// With [`EngineBuilder::ingest`] the engine additionally accepts writes
/// while queries run: [`ParallelKnnEngine::insert`] /
/// [`ParallelKnnEngine::remove`] land in a bounded delta buffer that
/// every query merges into its answer (always exact over
/// `index ∪ delta`), and [`ParallelKnnEngine::reorganize`] — now
/// non-consuming — drains the buffer through a background-capable shadow
/// rebuild with an atomic state swap.
pub struct ParallelKnnEngine {
    shared: Arc<EngineShared>,
}

/// Everything behind the engine handle that must be shared with the
/// background rebuild thread: the swappable inner under its lock, the
/// write-path state, and the registry that outlives every swap.
pub(crate) struct EngineShared {
    /// The swappable engine state. Queries take the read lock for the
    /// duration of submission (pooled) or execution (scoped);
    /// [`EngineShared::rebuild`] takes the write lock only for the final
    /// pointer swap.
    inner: RwLock<EngineInner>,
    /// Write-path configuration; `None` means the engine is read-only
    /// and the delta buffer stays empty forever (queries skip it).
    ingest: Option<IngestConfig>,
    /// The delta buffer. Lock order: `inner` before `delta`, always.
    delta: Mutex<DeltaState>,
    /// Item-id allocator; seeded past the largest bulk-loaded id.
    next_seq: AtomicU64,
    /// Serializes rebuilds: trigger storms and concurrent explicit
    /// `reorganize()` calls queue here instead of racing.
    maintenance: Mutex<()>,
    /// True while a triggered background rebuild is queued or running —
    /// collapses a burst of triggering writes into one rebuild.
    rebuild_running: AtomicBool,
    /// The most recent background rebuild thread, joined on engine drop
    /// (and opportunistically when the next one starts).
    rebuild_handle: Mutex<Option<JoinHandle<()>>>,
    /// The engine-wide metrics registry. Held here — above the swappable
    /// inner — so cumulative totals survive every reorganize.
    metrics: Option<Arc<EngineMetrics>>,
}

/// The swappable unit of engine state: the query-facing core plus the
/// build recipe needed to reconstruct it (declusterer, caches, pool).
/// A shadow rebuild constructs a complete replacement `EngineInner` and
/// swaps it behind [`EngineShared::inner`]; dropping the old one drains
/// its worker pool against the old core (the PR-4 in-flight counter).
pub(crate) struct EngineInner {
    core: Arc<EngineCore>,
    declusterer: Arc<dyn Declusterer>,
    replica_router: Option<Arc<dyn ReplicaRouting>>,
    fault_policy: FaultPolicy,
    page_cache_capacity: Option<usize>,
    cache_shards: usize,
    /// Per-disk page caches; empty unless [`EngineBuilder::page_cache`]
    /// was set.
    caches: Vec<Arc<CachingSink>>,
    execution: ExecutionMode,
    /// True when the declusterer was supplied explicitly at build time —
    /// a rebuild then reuses it verbatim instead of re-deriving the
    /// default declustering from the current data.
    explicit_declusterer: bool,
    /// The persistent per-disk worker pool; `Some` iff `execution` is
    /// [`ExecutionMode::Pooled`]. Dropped (drained + joined) before the
    /// core when this inner is replaced or the engine goes away.
    pool: Option<WorkerPool>,
}

/// The engine state shared with the worker pool: the simulated disk
/// array plus the per-disk primary and mirror trees.
///
/// Trees sit behind [`RwLock`]s because pool workers outlive any `&mut
/// self` borrow of the engine: queries take read locks (one tree at a
/// time). Since the streaming-ingest redesign the trees are never
/// mutated in place — writes go to the delta buffer and materialize
/// through the shadow rebuild.
pub(crate) struct EngineCore {
    pub(crate) config: EngineConfig,
    pub(crate) array: DiskArray,
    pub(crate) trees: Vec<RwLock<SpatialTree>>,
    /// `mirrors[d][j]` is the tree holding the replica copies of disk
    /// `d`'s points that live on disk `j`. Empty maps when the engine was
    /// built without replicas. Mirror trees bypass the page caches: they
    /// are touched only on failover, so caching them would let rare
    /// degraded queries evict the hot primary working set.
    pub(crate) mirrors: Vec<RwLock<BTreeMap<usize, SpatialTree>>>,
    /// The approximate tier: the fitted LSH runtime, or `None` (the
    /// default) for an exact-only engine. Built from the same items as
    /// the trees at every bulk load, so index and LSH tier always agree
    /// on the main-index contents.
    pub(crate) lsh: Option<Arc<LshRuntime>>,
    /// The engine-wide metrics registry; `None` (the default) keeps the
    /// query path free of any additional atomic operations.
    pub(crate) metrics: Option<Arc<EngineMetrics>>,
    /// Serve-layer admission policy; `None` (the default) keeps the pool
    /// on unbounded FIFO queues with no deadlines and no coalescing.
    pub(crate) admission: Option<AdmissionConfig>,
    /// Per-disk read-combining sinks; non-empty iff
    /// [`AdmissionConfig::coalescing`] is on. Workers open each popped
    /// task's wave on its disk's combiner before searching.
    pub(crate) coalescers: Vec<Arc<CoalescingSink>>,
}

/// The mutable state of one degraded-mode query, shared verbatim by the
/// scoped sequential loop and the pooled pipeline so both execute the
/// paper's failure handling step-for-step identically (same retry draws,
/// same failover order, same trace).
pub(crate) struct DegradedState {
    pub(crate) timeout: Option<Duration>,
    pub(crate) retry: RetryPolicy,
    /// Leaf-scan precision tier; rides in the state so primary and
    /// failover searches of one query always scan at the same tier.
    pub(crate) tier: ScanTier,
    /// Scan-order knob; rides along for the same reason as the tier.
    pub(crate) order: ScanOrder,
    pub(crate) bound: SharedBound,
    pub(crate) extra_time: Vec<Duration>,
    pub(crate) candidates: Vec<Vec<Neighbor>>,
    pub(crate) down: Vec<usize>,
    pub(crate) failed_over: Vec<usize>,
    pub(crate) replica_pages: u64,
    pub(crate) retries_total: u64,
    /// Failover stops, in execution order: `(down disk, mirror host)`.
    pub(crate) itinerary: Vec<(usize, usize)>,
    /// A down disk discovered (during planning) to have no mirrors: the
    /// query fails with `BucketUnavailable` *after* the itinerary built so
    /// far has run, exactly as the sequential loop would.
    pub(crate) error_after: Option<usize>,
}

impl DegradedState {
    pub(crate) fn new(
        disks: usize,
        timeout: Option<Duration>,
        retry: RetryPolicy,
        tier: ScanTier,
        order: ScanOrder,
    ) -> Self {
        DegradedState {
            timeout,
            retry,
            tier,
            order,
            bound: SharedBound::new(),
            extra_time: vec![Duration::ZERO; disks],
            candidates: vec![Vec::new(); disks],
            down: Vec::new(),
            failed_over: Vec::new(),
            replica_pages: 0,
            retries_total: 0,
            itinerary: Vec::new(),
            error_after: None,
        }
    }
}

/// A cloneable handle on the engine's fault injector, valid across
/// reorganize swaps of the engine that produced it (it pins the core it
/// was taken from). Dereferences to [`FaultInjector`].
pub struct FaultsHandle(Arc<EngineCore>);

impl Deref for FaultsHandle {
    type Target = FaultInjector;
    fn deref(&self) -> &FaultInjector {
        self.0.array.faults()
    }
}

/// A handle on the engine's simulated disk array (for experiment
/// accounting), pinning the core it was taken from. Dereferences to
/// [`DiskArray`].
pub struct ArrayHandle(Arc<EngineCore>);

impl Deref for ArrayHandle {
    type Target = DiskArray;
    fn deref(&self) -> &DiskArray {
        &self.0.array
    }
}

impl EngineCore {
    /// Opens coalescing wave `wave` on `disk`'s read-combining window —
    /// a no-op without coalescing sinks installed. Correctness never
    /// depends on the window state: a reset window only forgoes
    /// read-sharing, it cannot mis-coalesce.
    pub(crate) fn begin_wave(&self, disk: usize, wave: u64) {
        if let Some(c) = self.coalescers.get(disk) {
            c.begin_wave(wave);
        }
    }

    /// Runs the deterministic forest search (the canonical batch path):
    /// all trees under one bounded heap, visited in MINDIST order.
    pub(crate) fn forest_search(
        &self,
        query: &Point,
        k: usize,
        tier: ScanTier,
        order: ScanOrder,
    ) -> (Vec<Neighbor>, Vec<SearchStats>) {
        let guards: Vec<_> = self.trees.iter().map(|t| t.read()).collect();
        let refs: Vec<&SpatialTree> = guards.iter().map(|g| &**g).collect();
        forest_knn_traced_ordered(&refs, query, k, self.config.algorithm, tier, order)
    }

    /// The RKV itinerary of the current trees (see
    /// [`parsim_index::forest_itinerary`]).
    pub(crate) fn itinerary(&self, query: &Point) -> Vec<(f64, usize)> {
        let guards: Vec<_> = self.trees.iter().map(|t| t.read()).collect();
        let refs: Vec<&SpatialTree> = guards.iter().map(|g| &**g).collect();
        forest_itinerary(&refs, query)
    }

    /// One RKV pipeline hop: visit tree `disk` with the traveling cursor.
    pub(crate) fn cursor_visit(
        &self,
        disk: usize,
        cursor: &mut ForestCursor,
        query: &Point,
        stats: &mut SearchStats,
    ) {
        cursor.visit(&self.trees[disk].read(), query, stats);
    }

    /// One HS pipeline hop: disk `disk`'s full local best-first search,
    /// pruning against (and tightening) the traveling bound.
    pub(crate) fn hs_visit(
        &self,
        disk: usize,
        query: &Point,
        k: usize,
        bound: &SharedBound,
        tier: ScanTier,
        order: ScanOrder,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.trees[disk].read().knn_traced_ordered(
            query,
            k,
            KnnAlgorithm::Hs,
            Some(bound),
            tier,
            order,
        )
    }

    /// The degraded primary step of one disk: skip it if hard-failed,
    /// otherwise search it, replay the flaky-read error stream, and apply
    /// the timeout budget. An unusable disk joins `state.down`.
    pub(crate) fn degraded_primary(
        &self,
        disk: usize,
        query: &Point,
        k: usize,
        state: &mut DegradedState,
        stats: &mut [SearchStats],
    ) {
        let faults = self.array.faults();
        if faults.is_failed(disk) {
            state.down.push(disk);
            return;
        }
        let (cands, s) = self.trees[disk].read().knn_traced_ordered(
            query,
            k,
            self.config.algorithm,
            Some(&state.bound),
            state.tier,
            state.order,
        );
        stats[disk].merge(s);
        let mut alive = true;
        if matches!(faults.fault(disk), Some(FaultKind::Flaky { .. })) {
            let (retries, extra, ok) =
                simulate_flaky_reads(faults, disk, s.pages, &state.retry, self.array.model());
            state.retries_total += retries;
            state.extra_time[disk] += extra;
            alive = ok;
        }
        if alive {
            if let Some(budget) = state.timeout {
                let disk_time = faults
                    .model_for(disk, self.array.model())
                    .service_time(stats[disk].pages)
                    + state.extra_time[disk];
                alive = disk_time <= budget;
            }
        }
        if alive {
            state.candidates[disk] = cands;
        } else {
            // The pages were read (and are charged) but the answer is not
            // trusted: the disk's buckets fail over.
            state.down.push(disk);
        }
    }

    /// Plans the failover itinerary once every primary step ran: each
    /// non-empty down disk contributes its mirror hosts in ascending
    /// order. A down disk with no mirrors truncates the plan and records
    /// the error, preserving the sequential loop's fail-after-searching
    /// order.
    pub(crate) fn plan_failover(&self, state: &mut DegradedState) {
        for i in 0..state.down.len() {
            let d = state.down[i];
            if self.trees[d].read().is_empty() {
                continue;
            }
            let mirrors = self.mirrors[d].read();
            if mirrors.is_empty() {
                state.error_after = Some(d);
                break;
            }
            for &host in mirrors.keys() {
                state.itinerary.push((d, host));
            }
        }
    }

    /// Executes failover stop `pos` of the planned itinerary: search the
    /// mirror of the down disk on its host, replaying the host's flaky
    /// stream. Errors if the host itself is failed or flaky beyond the
    /// retry policy.
    pub(crate) fn degraded_failover(
        &self,
        pos: usize,
        query: &Point,
        k: usize,
        state: &mut DegradedState,
        stats: &mut [SearchStats],
    ) -> Result<(), EngineError> {
        let (d, host) = state.itinerary[pos];
        let faults = self.array.faults();
        if faults.is_failed(host) {
            return Err(EngineError::BucketUnavailable { disk: d });
        }
        let (cands, s) = {
            let mirrors = self.mirrors[d].read();
            let mirror = mirrors.get(&host).expect("planned failover host exists");
            mirror.knn_traced_ordered(
                query,
                k,
                self.config.algorithm,
                Some(&state.bound),
                state.tier,
                state.order,
            )
        };
        if matches!(faults.fault(host), Some(FaultKind::Flaky { .. })) {
            let (retries, extra, ok) =
                simulate_flaky_reads(faults, host, s.pages, &state.retry, self.array.model());
            state.retries_total += retries;
            state.extra_time[host] += extra;
            if !ok {
                return Err(EngineError::BucketUnavailable { disk: d });
            }
        }
        state.replica_pages += s.pages;
        stats[host].merge(s);
        state.candidates[host].extend(cands);
        // The down disk is fully served once its last host ran.
        if state.itinerary.get(pos + 1).map(|&(nd, _)| nd) != Some(d) {
            state.failed_over.push(d);
        }
        Ok(())
    }

    /// Merges a finished degraded query into its answer and trace: the
    /// degraded critical path charges every disk its fault-scaled service
    /// time plus retry backoff; timed-out disks charge the budget;
    /// hard-failed disks charge nothing.
    pub(crate) fn assemble_degraded(
        &self,
        state: DegradedState,
        k: usize,
        stats: &[SearchStats],
        wall: Duration,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        if let Some(d) = state.error_after {
            return Err(EngineError::BucketUnavailable { disk: d });
        }
        let faults = self.array.faults();
        let model = self.array.model();
        let mut modeled_parallel = Duration::ZERO;
        for (i, s) in stats.iter().enumerate().take(self.trees.len()) {
            let mut t = faults.model_for(i, model).service_time(s.pages) + state.extra_time[i];
            if state.down.contains(&i) {
                if faults.is_failed(i) {
                    t = Duration::ZERO;
                } else if let Some(budget) = state.timeout {
                    t = t.min(budget);
                }
            }
            modeled_parallel = modeled_parallel.max(t);
        }
        let merged = merge_candidates(state.candidates.iter().map(Vec::as_slice), k);
        let mut trace = QueryTrace::from_stats(stats, wall, model);
        let healthy_parallel = trace.modeled_parallel;
        trace.modeled_parallel = modeled_parallel;
        trace.degraded = Some(DegradedInfo {
            failed_over: state.failed_over,
            retries: state.retries_total,
            replica_pages: state.replica_pages,
            added_latency: modeled_parallel.saturating_sub(healthy_parallel),
        });
        Ok((merged, trace))
    }
}

impl EngineInner {
    /// Bulk-loads one complete engine state: one primary tree per disk
    /// and, when a replica router is supplied, one mirror tree per
    /// (source disk, mirror disk) pair; sink chains (`DiskSink`,
    /// optionally wrapped by a sharded LRU [`CachingSink`], optionally
    /// wrapped by a [`CoalescingSink`] — outermost first) installed at
    /// construction. With [`ExecutionMode::Pooled`] the per-disk worker
    /// pool starts eagerly, before the first query.
    #[allow(clippy::too_many_arguments)]
    fn build(
        items: Vec<(Point, u64)>,
        declusterer: Arc<dyn Declusterer>,
        replica_router: Option<Arc<dyn ReplicaRouting>>,
        config: EngineConfig,
        fault_policy: FaultPolicy,
        page_cache: Option<usize>,
        cache_shards: usize,
        execution: ExecutionMode,
        metrics: Option<Arc<EngineMetrics>>,
        admission: Option<AdmissionConfig>,
        lsh_config: Option<LshConfig>,
        explicit_declusterer: bool,
    ) -> Result<EngineInner, EngineError> {
        if items.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        for (p, _) in &items {
            if p.dim() != config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        let disks = declusterer.disks();
        let array = DiskArray::new(disks, config.disk_model)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        if let Some(m) = &metrics {
            array.faults().set_metrics(m.fault_metrics());
        }

        // The approximate tier fits its hash family and shards on the
        // same item set the trees are about to bulk-load, before the
        // partitioning below consumes it.
        let lsh = lsh_config.map(|cfg| {
            Arc::new(LshRuntime::build(
                cfg,
                config.dim,
                &items,
                disks,
                replica_router.is_some(),
            ))
        });

        // Partition the items over the disks; with replication every
        // point also lands in the mirror partition its router picks.
        let mut partitions: Vec<Vec<(Point, u64)>> = vec![Vec::new(); disks];
        let mut mirror_parts: Vec<BTreeMap<usize, Vec<(Point, u64)>>> =
            vec![BTreeMap::new(); disks];
        for (p, item) in items {
            let disk = declusterer.assign(item, &p);
            if let Some(router) = &replica_router {
                let mirror = router.replica_disk(item, &p);
                mirror_parts[disk]
                    .entry(mirror)
                    .or_default()
                    .push((p.clone(), item));
            }
            partitions[disk].push((p, item));
        }

        // One bulk-loaded tree per disk, charging that disk. The sink
        // chain wraps the disk at construction: a coalesced visit skips
        // the cache entirely and leaves the LRU state exactly as an
        // uncoalesced replay would expect.
        let coalescing = admission.map(|a| a.coalescing).unwrap_or(false);
        let mut caches = Vec::new();
        let mut coalescers = Vec::new();
        let mut trees = Vec::with_capacity(disks);
        for (i, part) in partitions.into_iter().enumerate() {
            let params = TreeParams::for_dim(config.dim, config.variant)
                .map_err(|e| EngineError::Internal(e.to_string()))?
                .with_scan_order(config.order);
            let mut tree = SpatialTree::bulk_load(params, part)
                .map_err(|e| EngineError::Internal(e.to_string()))?
                .with_disk(Arc::clone(array.disk(i)));
            if page_cache.is_some() || coalescing {
                let mut sink: Arc<dyn NodeSink> = Arc::new(DiskSink(Arc::clone(array.disk(i))));
                if let Some(capacity) = page_cache {
                    let cm = metrics.as_ref().map(|m| m.cache_metrics(i));
                    let cache =
                        Arc::new(CachingSink::with_metrics(sink, capacity, cache_shards, cm));
                    caches.push(Arc::clone(&cache));
                    sink = cache;
                }
                if coalescing {
                    let combiner = Arc::new(CoalescingSink::new(sink));
                    coalescers.push(Arc::clone(&combiner));
                    sink = combiner;
                }
                tree = tree.with_sink(sink);
            }
            trees.push(tree);
        }

        // Mirror trees charge the disk that hosts the replica.
        let mut mirrors = Vec::with_capacity(disks);
        for parts in mirror_parts {
            let mut per_host = BTreeMap::new();
            for (host, part) in parts {
                let params = TreeParams::for_dim(config.dim, config.variant)
                    .map_err(|e| EngineError::Internal(e.to_string()))?
                    .with_scan_order(config.order);
                let tree = SpatialTree::bulk_load(params, part)
                    .map_err(|e| EngineError::Internal(e.to_string()))?
                    .with_disk(Arc::clone(array.disk(host)));
                per_host.insert(host, tree);
            }
            mirrors.push(per_host);
        }

        let core = Arc::new(EngineCore {
            config,
            array,
            trees: trees.into_iter().map(RwLock::new).collect(),
            mirrors: mirrors.into_iter().map(RwLock::new).collect(),
            lsh,
            metrics: metrics.clone(),
            admission,
            coalescers,
        });
        let pool =
            (execution == ExecutionMode::Pooled).then(|| WorkerPool::start(Arc::clone(&core)));
        Ok(EngineInner {
            core,
            declusterer,
            replica_router,
            fault_policy,
            page_cache_capacity: page_cache,
            cache_shards,
            caches,
            execution,
            explicit_declusterer,
            pool,
        })
    }

    /// Dispatches a dimension-checked query to the pool (pooled mode) or
    /// computes it synchronously (scoped mode). `wave` groups queries
    /// into one coalescing wave; `None` draws a fresh (private) wave.
    /// `overlay` is the query's delta-buffer snapshot: the search runs
    /// with `k` inflated by its tombstone count and the handle merges the
    /// snapshot into the answer on [`PendingQuery::wait`].
    pub(crate) fn submit_with_wave(
        &self,
        query: &Point,
        opts: &QueryOptions,
        wave: Option<u64>,
        overlay: Option<QueryOverlay>,
    ) -> Result<PendingQuery, EngineError> {
        let (timeout, retry) = self.resolve_policy(opts);
        let tier = opts.tier.unwrap_or(self.core.config.tier);
        let order = opts.order.unwrap_or(self.core.config.order);
        let k = opts.k + overlay.as_ref().map_or(0, QueryOverlay::extra_k);
        let degraded = timeout.is_some() || self.core.array.faults().any_armed();
        let model = *self.core.array.model();
        if let QueryMode::Approx { probes } = opts.mode {
            return self.submit_approx(
                query, opts, probes, k, degraded, timeout, &retry, wave, overlay,
            );
        }
        if let Some(m) = &self.core.metrics {
            m.record_start();
        }
        let Some(pool) = &self.pool else {
            // Scoped: answer now, return an already-complete handle.
            let answer = if degraded {
                self.knn_degraded(query, k, timeout, &retry, tier, order)
            } else {
                Ok(self.knn_healthy(query, k, tier, order))
            };
            if let Some(m) = &self.core.metrics {
                match &answer {
                    Ok((_, trace)) => m.record_query(trace, &model),
                    Err(_) => m.record_failure(),
                }
            }
            return Ok(PendingQuery::completed(answer, opts.trace, model).with_overlay(overlay));
        };

        let n = self.core.trees.len();
        let completion = Arc::new(Completion::new());
        let pending =
            PendingQuery::new(Arc::clone(&completion), opts.trace, model).with_overlay(overlay);
        let start = Instant::now();
        let (first, stage) = if degraded {
            (
                0,
                Stage::Degraded {
                    state: DegradedState::new(n, timeout, retry, tier, order),
                    phase: Phase::Primaries { next: 0 },
                },
            )
        } else {
            match self.core.config.algorithm {
                KnnAlgorithm::Rkv => {
                    let itinerary = self.core.itinerary(query);
                    if k == 0 || itinerary.is_empty() {
                        // Nothing to search: complete inline, matching the
                        // forest search's early return. The overlay (if
                        // any) still applies on wait.
                        let stats = vec![SearchStats::default(); n];
                        let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                        if let Some(m) = &self.core.metrics {
                            m.record_query(&trace, &model);
                        }
                        completion.complete(Ok((Vec::new(), trace)));
                        return Ok(pending);
                    }
                    let first = itinerary[0].1;
                    (
                        first,
                        Stage::Rkv {
                            cursor: ForestCursor::with_tier_order(k, tier, order),
                            itinerary,
                            pos: 0,
                        },
                    )
                }
                KnnAlgorithm::Hs => {
                    if k == 0 {
                        let stats = vec![SearchStats::default(); n];
                        let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                        if let Some(m) = &self.core.metrics {
                            m.record_query(&trace, &model);
                        }
                        completion.complete(Ok((Vec::new(), trace)));
                        return Ok(pending);
                    }
                    (
                        0,
                        Stage::Hs {
                            bound: SharedBound::new(),
                            candidates: vec![Vec::new(); n],
                            next: 0,
                        },
                    )
                }
            }
        };
        let deadline = opts
            .deadline
            .or(self.core.admission.and_then(|a| a.deadline));
        let outcome = pool.submit(
            first,
            QueryTask {
                query: query.clone(),
                k,
                tier,
                order,
                stats: vec![SearchStats::default(); n],
                start,
                stage,
                completion,
                wave: wave.unwrap_or_else(|| pool.next_wave()),
                deadline_micros: deadline.map(|d| d.as_micros() as u64),
                spent_micros: 0,
                seq: 0,
            },
        );
        match outcome {
            Ok(()) => Ok(pending),
            Err(e) => {
                // The task never entered the system: surface the typed
                // rejection instead of the (never-completing) handle.
                if let Some(m) = &self.core.metrics {
                    m.record_shed_overloaded();
                }
                Err(e)
            }
        }
    }

    /// The scoped healthy fast path: one scoped thread per disk, shared
    /// pruning bound, exact per-query trace — the paper's Var. 3 search.
    fn knn_healthy(
        &self,
        query: &Point,
        k: usize,
        tier: ScanTier,
        order: ScanOrder,
    ) -> (Vec<Neighbor>, QueryTrace) {
        let algorithm = self.core.config.algorithm;
        let start = Instant::now();
        let shared = SharedBound::new();
        // One scoped thread per disk; each returns its local candidates
        // and locally-counted work so the trace is exact per query.
        let locals: Vec<_> = std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = self
                .core
                .trees
                .iter()
                .map(|tree| {
                    s.spawn(move || {
                        tree.read().knn_traced_ordered(
                            query,
                            k,
                            algorithm,
                            Some(shared),
                            tier,
                            order,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("per-disk search does not panic"))
                .collect()
        });
        let wall = start.elapsed();
        let merged = merge_candidates(locals.iter().map(|(c, _)| c.as_slice()), k);
        let stats: Vec<_> = locals.iter().map(|(_, s)| *s).collect();
        let trace = QueryTrace::from_stats(&stats, wall, self.core.array.model());
        (merged, trace)
    }

    /// Degraded execution, scoped flavor: the same per-disk steps the
    /// pooled pipeline runs ([`EngineCore::degraded_primary`] /
    /// [`EngineCore::degraded_failover`]), driven sequentially so the
    /// retry draws — and therefore the whole trace — are deterministic
    /// for a given injector seed.
    #[allow(clippy::too_many_arguments)]
    fn knn_degraded(
        &self,
        query: &Point,
        k: usize,
        timeout: Option<Duration>,
        retry: &RetryPolicy,
        tier: ScanTier,
        order: ScanOrder,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let core = &self.core;
        let n = core.trees.len();
        let start = Instant::now();
        let mut stats = vec![SearchStats::default(); n];
        let mut state = DegradedState::new(n, timeout, *retry, tier, order);
        for disk in 0..n {
            core.degraded_primary(disk, query, k, &mut state, &mut stats);
        }
        core.plan_failover(&mut state);
        for pos in 0..state.itinerary.len() {
            core.degraded_failover(pos, query, k, &mut state, &mut stats)?;
        }
        core.assemble_degraded(state, k, &stats, start.elapsed())
    }

    /// Dispatches one `Approx`-mode query: sequentially on a scoped
    /// engine (and for degraded or trivial queries on a pooled one —
    /// degraded failover needs the whole plan's outcome, so there is
    /// nothing to pipeline), or as a [`Stage::Approx`] task traveling the
    /// probe plan disk to disk on the healthy pooled path.
    #[allow(clippy::too_many_arguments)]
    fn submit_approx(
        &self,
        query: &Point,
        opts: &QueryOptions,
        probes: usize,
        k: usize,
        degraded: bool,
        timeout: Option<Duration>,
        retry: &RetryPolicy,
        wave: Option<u64>,
        overlay: Option<QueryOverlay>,
    ) -> Result<PendingQuery, EngineError> {
        if self.core.lsh.is_none() {
            return Err(EngineError::ApproxUnavailable);
        }
        let model = *self.core.array.model();
        if let Some(m) = &self.core.metrics {
            m.record_start();
        }
        let n = self.core.trees.len();
        let pooled_healthy = self.pool.is_some() && !degraded && k > 0;
        if !pooled_healthy {
            let start = Instant::now();
            let answer = if k == 0 {
                let stats = vec![SearchStats::default(); n];
                Ok((
                    Vec::new(),
                    QueryTrace::from_stats(&stats, start.elapsed(), &model),
                ))
            } else {
                self.knn_approx(query, k, probes, degraded, timeout, retry)
            };
            if let Some(m) = &self.core.metrics {
                match &answer {
                    Ok((_, trace)) => m.record_query(trace, &model),
                    Err(_) => m.record_failure(),
                }
            }
            return Ok(PendingQuery::completed(answer, opts.trace, model).with_overlay(overlay));
        }
        let pool = self.pool.as_ref().expect("pooled_healthy implies a pool");
        let lsh = self.core.lsh.as_ref().expect("checked above");
        let plan = lsh.plan(query, probes);
        let completion = Arc::new(Completion::new());
        let pending =
            PendingQuery::new(Arc::clone(&completion), opts.trace, model).with_overlay(overlay);
        let first = plan[0].disk;
        let deadline = opts
            .deadline
            .or(self.core.admission.and_then(|a| a.deadline));
        let outcome = pool.submit(
            first,
            QueryTask {
                query: query.clone(),
                k,
                tier: opts.tier.unwrap_or(self.core.config.tier),
                order: opts.order.unwrap_or(self.core.config.order),
                stats: vec![SearchStats::default(); n],
                start: Instant::now(),
                stage: Stage::Approx {
                    plan,
                    pos: 0,
                    candidates: vec![Vec::new(); n],
                    counters: LshCounters::default(),
                },
                completion,
                wave: wave.unwrap_or_else(|| pool.next_wave()),
                deadline_micros: deadline.map(|d| d.as_micros() as u64),
                spent_micros: 0,
                seq: 0,
            },
        );
        match outcome {
            Ok(()) => Ok(pending),
            Err(e) => {
                if let Some(m) = &self.core.metrics {
                    m.record_shed_overloaded();
                }
                Err(e)
            }
        }
    }

    /// Sequential `Approx` execution (the reference implementation, also
    /// the degraded path): scan the probe plan's buckets disk by disk,
    /// failing lost disks over to their mirror shards exactly as the
    /// exact tier's degraded loop fails trees over to mirror trees.
    fn knn_approx(
        &self,
        query: &Point,
        k: usize,
        probes: usize,
        degraded: bool,
        timeout: Option<Duration>,
        retry: &RetryPolicy,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let core = &self.core;
        let lsh = core.lsh.as_ref().expect("caller checked the LSH tier");
        let n = core.trees.len();
        let start = Instant::now();
        let mut stats = vec![SearchStats::default(); n];
        let mut counters = LshCounters::default();
        let mut candidates: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let plan = lsh.plan(query, probes.max(1));
        if !degraded {
            for dp in &plan {
                candidates[dp.disk] = lsh.scan_disk(
                    dp.disk,
                    &dp.buckets,
                    query,
                    k,
                    &mut stats[dp.disk],
                    &mut counters,
                );
            }
            let merged = merge_unique_candidates(candidates.iter().map(Vec::as_slice), k);
            let mut trace = QueryTrace::from_stats(&stats, start.elapsed(), core.array.model());
            trace.lsh_probes = counters.probes;
            trace.lsh_candidates = counters.candidates;
            trace.lsh_empty_probes = counters.empty_probes;
            return Ok((merged, trace));
        }
        // Degraded: the same per-disk policy as the exact tier — a
        // hard-failed disk is skipped, a flaky one replays its error
        // stream under the retry policy, an over-budget one is abandoned
        // (its pages stay charged, its answer is not trusted) — and every
        // lost disk's probe targets are served from its mirror shard.
        let faults = core.array.faults();
        let model = core.array.model();
        let mut extra_time = vec![Duration::ZERO; n];
        let mut down: Vec<usize> = Vec::new();
        let mut failed_over: Vec<usize> = Vec::new();
        let mut retries_total = 0u64;
        let mut replica_pages = 0u64;
        let mut failover: Vec<&DiskProbes> = Vec::new();
        for dp in &plan {
            let disk = dp.disk;
            if faults.is_failed(disk) {
                down.push(disk);
                failover.push(dp);
                continue;
            }
            let mut local = SearchStats::default();
            let cands = lsh.scan_disk(disk, &dp.buckets, query, k, &mut local, &mut counters);
            stats[disk].merge(local);
            let mut alive = true;
            if matches!(faults.fault(disk), Some(FaultKind::Flaky { .. })) {
                let (retries, extra, ok) =
                    simulate_flaky_reads(faults, disk, local.pages, retry, model);
                retries_total += retries;
                extra_time[disk] += extra;
                alive = ok;
            }
            if alive {
                if let Some(budget) = timeout {
                    let disk_time = faults
                        .model_for(disk, model)
                        .service_time(stats[disk].pages)
                        + extra_time[disk];
                    alive = disk_time <= budget;
                }
            }
            if alive {
                candidates[disk] = cands;
            } else {
                down.push(disk);
                failover.push(dp);
            }
        }
        for dp in failover {
            let d = dp.disk;
            let host = lsh
                .mirror_host(d)
                .ok_or(EngineError::BucketUnavailable { disk: d })?;
            if faults.is_failed(host) {
                return Err(EngineError::BucketUnavailable { disk: d });
            }
            let mut local = SearchStats::default();
            let cands = lsh.scan_mirror(d, &dp.buckets, query, k, &mut local, &mut counters);
            if matches!(faults.fault(host), Some(FaultKind::Flaky { .. })) {
                let (retries, extra, ok) =
                    simulate_flaky_reads(faults, host, local.pages, retry, model);
                retries_total += retries;
                extra_time[host] += extra;
                if !ok {
                    return Err(EngineError::BucketUnavailable { disk: d });
                }
            }
            replica_pages += local.pages;
            stats[host].merge(local);
            candidates[host].extend(cands);
            failed_over.push(d);
        }
        // The degraded critical path, fault-scaled exactly as
        // `assemble_degraded` charges it for the exact tier.
        let mut modeled_parallel = Duration::ZERO;
        for (i, s) in stats.iter().enumerate() {
            let mut t = faults.model_for(i, model).service_time(s.pages) + extra_time[i];
            if down.contains(&i) {
                if faults.is_failed(i) {
                    t = Duration::ZERO;
                } else if let Some(budget) = timeout {
                    t = t.min(budget);
                }
            }
            modeled_parallel = modeled_parallel.max(t);
        }
        let merged = merge_unique_candidates(candidates.iter().map(Vec::as_slice), k);
        let mut trace = QueryTrace::from_stats(&stats, start.elapsed(), model);
        let healthy_parallel = trace.modeled_parallel;
        trace.modeled_parallel = modeled_parallel;
        trace.degraded = Some(DegradedInfo {
            failed_over,
            retries: retries_total,
            replica_pages,
            added_latency: modeled_parallel.saturating_sub(healthy_parallel),
        });
        trace.lsh_probes = counters.probes;
        trace.lsh_candidates = counters.candidates;
        trace.lsh_empty_probes = counters.empty_probes;
        Ok((merged, trace))
    }

    fn resolve_policy(&self, opts: &QueryOptions) -> (Option<Duration>, RetryPolicy) {
        (
            opts.timeout.or(self.fault_policy.timeout),
            opts.retry.unwrap_or(self.fault_policy.retry),
        )
    }
}

impl EngineShared {
    /// The query's delta snapshot, taken under the delta lock — its
    /// linearization point. `None` (the common read-only / empty-delta
    /// case) keeps the query path allocation- and merge-free.
    fn overlay_for(&self, query: &Point, k: usize) -> Option<QueryOverlay> {
        if self.ingest.is_none() || k == 0 {
            return None;
        }
        self.delta.lock().overlay(query, k)
    }

    /// True when the write that just applied should trigger a rebuild:
    /// the delta crossed its size threshold, or the projected per-disk
    /// load imbalance (`max/avg`, counting buffered inserts toward the
    /// disks the current declusterer gives them) crossed the skew knob.
    fn rebuild_due(&self, cfg: &IngestConfig, inner: &EngineInner, delta: &DeltaState) -> bool {
        if cfg.rebuild_threshold.is_some_and(|t| delta.size() >= t) {
            return true;
        }
        let Some(threshold) = cfg.imbalance_threshold else {
            return false;
        };
        let per_disk = delta.per_disk();
        let loads: Vec<usize> = inner
            .core
            .trees
            .iter()
            .enumerate()
            .map(|(d, t)| t.read().len() + per_disk.get(d).copied().unwrap_or(0))
            .collect();
        let total: usize = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return false;
        }
        let max = *loads.iter().max().expect("non-empty") as f64;
        let avg = total as f64 / loads.len() as f64;
        max / avg > threshold
    }

    /// Launches (or coalesces into) a background shadow rebuild. A burst
    /// of triggering writes starts one rebuild: the `rebuild_running`
    /// flag stays up until the thread finishes, and the maintenance lock
    /// serializes it against explicit `reorganize()` calls.
    fn spawn_rebuild(self: &Arc<Self>) {
        if self
            .rebuild_running
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let shared = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("parsim-rebuild".into())
            .spawn(move || {
                // A failed background rebuild (e.g. every point removed)
                // leaves the delta intact and is already recorded in the
                // rebuild-failure counter; there is no caller to surface
                // the error to.
                let _ = EngineShared::rebuild(&shared);
                shared.rebuild_running.store(false, Ordering::Release);
            })
            .expect("spawn rebuild thread");
        let prev = self.rebuild_handle.lock().replace(handle);
        if let Some(prev) = prev {
            let _ = prev.join();
        }
    }

    /// The shadow rebuild: bulk-loads a complete replacement
    /// `EngineInner` from `index ∪ delta` off to the side — queries
    /// and writes keep running the whole time — then swaps it in
    /// atomically and replays the writes that arrived during the build
    /// into the fresh delta buffer. Dropping the old inner drains its
    /// worker pool (the PR-4 in-flight counter), so in-flight queries
    /// finish against the state they started on.
    ///
    /// The metrics registry is *carried over*, not reset: cumulative
    /// totals span the swap.
    fn rebuild(shared: &EngineShared) -> Result<(), EngineError> {
        let _guard = shared.maintenance.lock();
        let (
            old_core,
            declusterer,
            replica_router,
            fault_policy,
            page_cache,
            cache_shards,
            execution,
            explicit,
        ) = {
            let inner = shared.inner.read();
            (
                Arc::clone(&inner.core),
                Arc::clone(&inner.declusterer),
                inner.replica_router.clone(),
                inner.fault_policy,
                inner.page_cache_capacity,
                inner.cache_shards,
                inner.execution,
                inner.explicit_declusterer,
            )
        };
        // The LSH config is part of the recipe: the rebuilt tier re-fits
        // the same seeded family on the then-current data.
        let lsh_config = old_core.lsh.as_ref().map(|l| l.config());
        let config = old_core.config;
        let admission = old_core.admission;
        let disks = old_core.array.len();

        // Snapshot the delta and open the journal capture: from here on
        // every write keeps applying to the buffer *and* is recorded for
        // post-swap replay.
        let (live, tombstones) = shared.delta.lock().begin_rebuild();

        // The rebuild input: every non-tombstoned main-index point plus
        // the buffered live points, in item order (so a rebuild of the
        // same logical set is bit-identical to a fresh bulk load).
        let mut items: Vec<(Point, u64)> = Vec::new();
        for tree in &old_core.trees {
            let tree = tree.read();
            for node in tree.iter_nodes() {
                if let parsim_index::node::Node::Leaf { entries, .. } = node {
                    for (row, item) in entries.iter() {
                        if !tombstones.contains(&item) {
                            items.push((Point::from_vec(row.to_vec()), item));
                        }
                    }
                }
            }
        }
        items.extend(live);
        items.sort_by_key(|&(_, item)| item);
        let total_points = items.len();
        // The ids going into the new index, sorted (items is) — consulted
        // by the journal replay below to drop tombstones for ids the
        // rebuild already purged.
        let new_ids: Vec<u64> = items.iter().map(|&(_, item)| item).collect();

        let replicated = replica_router.is_some();
        let built = (move || -> Result<EngineInner, EngineError> {
            if items.is_empty() {
                return Err(EngineError::EmptyDataSet);
            }
            let (declusterer, replica_router) = if explicit {
                (declusterer, replica_router)
            } else {
                let splitter = make_splitter_of(items.iter().map(|(p, _)| p), &config)?;
                resolve_default_decluster(&config, disks, replicated, splitter)?
            };
            EngineInner::build(
                items,
                declusterer,
                replica_router,
                config,
                fault_policy,
                page_cache,
                cache_shards,
                execution,
                shared.metrics.clone(),
                admission,
                lsh_config,
                explicit,
            )
        })();
        let new_inner = match built {
            Ok(inner) => inner,
            Err(e) => {
                // Abort: close the capture window (the buffer tracked
                // everything normally, so no recovery is needed) and
                // leave the old state serving.
                shared.delta.lock().end_rebuild();
                if let Some(m) = &shared.metrics {
                    m.record_rebuild_failed();
                }
                return Err(e);
            }
        };

        // The atomic swap. Holding the inner write lock excludes new
        // query submissions for the duration of the pointer swap and the
        // journal replay only; in-flight pooled queries are untouched —
        // their workers hold their own Arc to the old core.
        let old = {
            let mut inner = shared.inner.write();
            let old = std::mem::replace(&mut *inner, new_inner);
            let mut delta = shared.delta.lock();
            let tail = delta.end_rebuild();
            *delta = DeltaState::new(disks);
            for op in tail {
                match op {
                    DeltaOp::Insert(point, item) => {
                        let disk = inner.declusterer.assign(item, &point);
                        delta.apply_insert(point, item, disk);
                    }
                    DeltaOp::Remove(item) => {
                        // A journaled remove may target an id the rebuild
                        // already purged (tombstoned before the build
                        // began, re-removed during it). Replaying it would
                        // lay a tombstone that masks nothing and
                        // undercount `len()` until the next rebuild —
                        // replay only when the id still exists, in the
                        // new index or as a just-replayed buffered insert.
                        if delta.contains_live(item) || new_ids.binary_search(&item).is_ok() {
                            let d = Arc::clone(&inner.declusterer);
                            delta.apply_remove(item, &|id, p| d.assign(id, p));
                        }
                    }
                }
            }
            if let Some(m) = &shared.metrics {
                m.record_rebuild(total_points as u64, delta.live_len(), delta.tombstone_len());
            }
            old
        };
        // Dropping the old inner outside every lock: its pool drain
        // (joining worker threads mid-query) must not block writers.
        drop(old);
        Ok(())
    }
}

impl ParallelKnnEngine {
    /// Starts building an engine for `dim`-dimensional data with the
    /// paper's default configuration. See [`EngineBuilder`].
    pub fn builder(dim: usize) -> EngineBuilder {
        EngineBuilder::new(dim)
    }

    /// The workhorse constructor behind [`EngineBuilder::build`]: sets up
    /// the shared write-path state and bulk-loads the first
    /// `EngineInner`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_internal(
        items: Vec<(Point, u64)>,
        declusterer: Arc<dyn Declusterer>,
        replica_router: Option<Arc<dyn ReplicaRouting>>,
        config: EngineConfig,
        fault_policy: FaultPolicy,
        page_cache: Option<usize>,
        cache_shards: usize,
        execution: ExecutionMode,
        metrics: bool,
        admission: Option<AdmissionConfig>,
        ingest: Option<IngestConfig>,
        lsh: Option<LshConfig>,
        explicit_declusterer: bool,
    ) -> Result<Self, EngineError> {
        let disks = declusterer.disks();
        let metrics = metrics.then(|| Arc::new(EngineMetrics::new(disks, cache_shards)));
        let next_seq = items.iter().map(|&(_, id)| id + 1).max().unwrap_or(0);
        let inner = EngineInner::build(
            items,
            declusterer,
            replica_router,
            config,
            fault_policy,
            page_cache,
            cache_shards,
            execution,
            metrics.clone(),
            admission,
            lsh,
            explicit_declusterer,
        )?;
        Ok(ParallelKnnEngine {
            shared: Arc::new(EngineShared {
                inner: RwLock::new(inner),
                ingest,
                delta: Mutex::new(DeltaState::new(disks)),
                next_seq: AtomicU64::new(next_seq),
                maintenance: Mutex::new(()),
                rebuild_running: AtomicBool::new(false),
                rebuild_handle: Mutex::new(None),
                metrics,
            }),
        })
    }

    /// The per-disk page caches (empty for an uncached engine), as of
    /// the current engine state — a reorganize swap installs fresh ones.
    pub fn caches(&self) -> Vec<Arc<CachingSink>> {
        self.shared.inner.read().caches.clone()
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.shared.inner.read().core.config
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.shared.inner.read().core.array.len()
    }

    /// How this engine executes queries (set at build time).
    pub fn execution(&self) -> ExecutionMode {
        self.shared.inner.read().execution
    }

    /// The declusterer in use. After a reorganize of a default-built
    /// engine this is the freshly re-derived declustering.
    pub fn declusterer(&self) -> Arc<dyn Declusterer> {
        Arc::clone(&self.shared.inner.read().declusterer)
    }

    /// The fault injector of the underlying disk array: mark disks
    /// failed, slow, or flaky here and the engine's degraded execution
    /// takes over. The handle pins the current engine state; a
    /// [`ParallelKnnEngine::reorganize`] swap starts a fresh, healthy
    /// array — re-take the handle to inject into the rebuilt state.
    pub fn faults(&self) -> FaultsHandle {
        FaultsHandle(Arc::clone(&self.shared.inner.read().core))
    }

    /// The engine-wide degraded-mode defaults set at build time.
    pub fn fault_policy(&self) -> FaultPolicy {
        self.shared.inner.read().fault_policy
    }

    /// The serve-layer admission policy, or `None` when the engine runs
    /// without backpressure, deadlines, or coalescing (the default).
    pub fn admission(&self) -> Option<AdmissionConfig> {
        self.shared.inner.read().core.admission
    }

    /// The engine-wide metrics registry, or `None` unless the engine was
    /// built with [`EngineBuilder::metrics`]`(true)`. The registry lives
    /// above the swappable engine state: cumulative totals survive
    /// [`ParallelKnnEngine::reorganize`]. Snapshot through
    /// [`EngineMetrics::snapshot`]; export with
    /// [`parsim_obs::prometheus_text`] / [`parsim_obs::to_json`].
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.shared.metrics.as_ref()
    }

    /// The write-path configuration, or `None` for a read-only engine.
    pub fn ingest_config(&self) -> Option<IngestConfig> {
        self.shared.ingest
    }

    /// The approximate tier's build-time configuration, or `None` when
    /// the engine was built without [`EngineBuilder::approx`]. Survives
    /// [`ParallelKnnEngine::reorganize`]: the rebuilt tier re-fits the
    /// same seeded family.
    pub fn lsh_config(&self) -> Option<LshConfig> {
        self.shared
            .inner
            .read()
            .core
            .lsh
            .as_ref()
            .map(|l| l.config())
    }

    /// A deterministic byte serialization of the LSH tier's bucket layout
    /// (disks in order, buckets in `(table, signature)` order, rows as
    /// item ids), or `None` without an LSH tier. Two engines built from
    /// the same items and config — including across a
    /// [`ParallelKnnEngine::reorganize`] of an unchanged engine — are
    /// byte-identical here; the seeded-determinism regression test pins
    /// exactly that.
    pub fn lsh_layout_bytes(&self) -> Option<Vec<u8>> {
        self.shared
            .inner
            .read()
            .core
            .lsh
            .as_ref()
            .map(|l| l.layout_bytes())
    }

    /// True if the engine keeps replica copies of every bucket.
    pub fn has_replicas(&self) -> bool {
        self.shared.inner.read().replica_router.is_some()
    }

    /// The disks hosting replica copies of `disk`'s buckets (empty for an
    /// un-replicated engine or a disk with no data).
    pub fn replica_disks_of(&self, disk: usize) -> Vec<usize> {
        self.shared
            .inner
            .read()
            .core
            .mirrors
            .get(disk)
            .map(|m| m.read().keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total number of logically present points: main-index primaries
    /// plus buffered inserts, minus tombstones. Exact at every instant:
    /// the rebuild's journal replay drops removes whose id the rebuild
    /// already purged, so every tombstone masks a present point.
    pub fn len(&self) -> usize {
        let inner = self.shared.inner.read();
        let main: usize = inner.core.trees.iter().map(|t| t.read().len()).sum();
        let delta = self.shared.delta.lock();
        (main + delta.live_len()).saturating_sub(delta.tombstone_len())
    }

    /// True if no points are logically present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buffered writes (live points + tombstones) waiting for
    /// the next reorganize. Always 0 for a read-only engine.
    pub fn delta_size(&self) -> usize {
        self.shared.delta.lock().size()
    }

    /// Per-disk point counts — the load-balance view (main-index
    /// primaries only; buffered inserts are not yet placed).
    pub fn load_distribution(&self) -> Vec<usize> {
        self.shared
            .inner
            .read()
            .core
            .trees
            .iter()
            .map(|t| t.read().len())
            .collect()
    }

    /// Inserts a point through the streaming-ingest write path (the
    /// system "is completely dynamical", Section 4.3): the point lands
    /// in the delta buffer, becomes visible to every subsequent query
    /// immediately, and is bulk-loaded into the main index by the next
    /// [`ParallelKnnEngine::reorganize`]. Safe while queries are in
    /// flight on any thread.
    ///
    /// # Errors
    ///
    /// [`EngineError::ReadOnly`] when the engine was built without
    /// [`EngineBuilder::ingest`]; [`EngineError::DeltaFull`] when the
    /// buffer is at capacity (typed write backpressure — retry after a
    /// flush/reorganize); [`EngineError::DimensionMismatch`] for a point
    /// of the wrong dimension. When the write trips a foreground rebuild
    /// trigger, rebuild errors propagate — the write itself was applied.
    pub fn insert(&self, point: Point) -> Result<u64, EngineError> {
        let Some(cfg) = self.shared.ingest else {
            return Err(EngineError::ReadOnly);
        };
        let (item, due) = {
            let inner = self.shared.inner.read();
            if point.dim() != inner.core.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: inner.core.config.dim,
                    got: point.dim(),
                });
            }
            let mut delta = self.shared.delta.lock();
            if delta.size() >= cfg.delta_capacity {
                if let Some(m) = &self.shared.metrics {
                    m.record_ingest_rejected();
                }
                return Err(EngineError::DeltaFull {
                    capacity: cfg.delta_capacity,
                });
            }
            let item = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
            let disk = inner.declusterer.assign(item, &point);
            delta.apply_insert(point, item, disk);
            if let Some(m) = &self.shared.metrics {
                m.record_ingest_insert(delta.live_len(), delta.tombstone_len());
            }
            (item, self.shared.rebuild_due(&cfg, &inner, &delta))
        };
        if due {
            if cfg.background {
                self.shared.spawn_rebuild();
            } else {
                EngineShared::rebuild(&self.shared)?;
            }
        }
        Ok(item)
    }

    /// Removes a point by the item id [`ParallelKnnEngine::insert`] (or
    /// bulk-load order) gave it: a buffered insert is dropped on the
    /// spot, a main-index point is masked by a tombstone until the next
    /// reorganize purges it. Idempotent; visible to every subsequent
    /// query immediately.
    ///
    /// # Errors
    ///
    /// [`EngineError::ReadOnly`] without an ingest config;
    /// [`EngineError::DeltaFull`] when the removal would need a new
    /// tombstone and the buffer is at capacity;
    /// [`EngineError::Internal`] for an id that was never allocated.
    /// Foreground rebuild-trigger errors propagate as for `insert`.
    pub fn remove(&self, item: u64) -> Result<(), EngineError> {
        let Some(cfg) = self.shared.ingest else {
            return Err(EngineError::ReadOnly);
        };
        let due = {
            let inner = self.shared.inner.read();
            if item >= self.shared.next_seq.load(Ordering::Relaxed) {
                return Err(EngineError::Internal(format!(
                    "item {item} was never allocated"
                )));
            }
            let mut delta = self.shared.delta.lock();
            if !delta.contains_live(item) && delta.size() >= cfg.delta_capacity {
                if let Some(m) = &self.shared.metrics {
                    m.record_ingest_rejected();
                }
                return Err(EngineError::DeltaFull {
                    capacity: cfg.delta_capacity,
                });
            }
            let d = Arc::clone(&inner.declusterer);
            delta.apply_remove(item, &|id, p| d.assign(id, p));
            if let Some(m) = &self.shared.metrics {
                m.record_ingest_remove(delta.live_len(), delta.tombstone_len());
            }
            self.shared.rebuild_due(&cfg, &inner, &delta)
        };
        if due {
            if cfg.background {
                self.shared.spawn_rebuild();
            } else {
                EngineShared::rebuild(&self.shared)?;
            }
        }
        Ok(())
    }

    /// Drains the delta buffer into the main index now (a synchronous
    /// [`ParallelKnnEngine::reorganize`]); a no-op when the buffer is
    /// empty or the engine is read-only.
    pub fn flush(&self) -> Result<(), EngineError> {
        if self.shared.ingest.is_none() || self.shared.delta.lock().is_empty() {
            return Ok(());
        }
        self.reorganize()
    }

    /// Reorganizes the engine **in place** for the current data: bulk-
    /// loads a complete replacement state from `index ∪ delta` (for a
    /// default-built engine the declustering is re-derived — median
    /// splits from the current points — exactly as a fresh build would),
    /// then swaps it in atomically. Queries and writes keep running
    /// throughout the build; writes that land mid-build are journaled
    /// and replayed into the fresh delta buffer at swap time, so nothing
    /// is lost or duplicated. Disk count, replication, fault policy,
    /// page-cache setup, execution mode, and admission policy are
    /// preserved; the rebuilt state starts with a fresh, healthy disk
    /// array (injected faults do not carry over) and rebuilt caches. The
    /// metrics registry (when enabled) is **carried over** — cumulative
    /// totals span the swap.
    ///
    /// This is the paper's reorganization step for data whose
    /// distribution drifted after many insertions, made non-stop-the-
    /// world. Concurrent calls serialize; a failed rebuild (e.g. every
    /// point removed) leaves the engine serving its old state with the
    /// delta intact.
    pub fn reorganize(&self) -> Result<(), EngineError> {
        EngineShared::rebuild(&self.shared)
    }

    /// Consuming shim for the pre-ingest API: reorganizes in place and
    /// hands the engine back.
    #[deprecated(note = "reorganize() is now non-consuming: call `engine.reorganize()` directly")]
    pub fn into_reorganized(self) -> Result<Self, EngineError> {
        self.reorganize()?;
        Ok(self)
    }

    /// Shim for the pre-ingest delete API, which addressed points by
    /// value and id; the point is no longer needed.
    #[deprecated(note = "use remove(item): the write path addresses points by item id alone")]
    pub fn delete(&self, point: &Point, item: u64) -> Result<(), EngineError> {
        let _ = point;
        self.remove(item)
    }

    /// Answers one k-NN query under `opts` — the single entry point
    /// behind every legacy `knn*` method. Equivalent to
    /// [`ParallelKnnEngine::submit`] followed by [`PendingQuery::wait`].
    ///
    /// When no faults are armed and no timeout budget applies, this is
    /// the paper's parallel search; otherwise the engine runs **degraded
    /// execution**: failed disks are skipped, flaky reads are retried per
    /// [`RetryPolicy`], disks over the timeout budget are abandoned, and
    /// every lost disk's buckets are served from their replicas — the
    /// merged answer is bit-identical to the healthy one as long as a
    /// healthy replica exists for every lost bucket
    /// ([`EngineError::BucketUnavailable`] otherwise).
    ///
    /// On an ingesting engine the answer is always exact over
    /// `index ∪ delta`, linearized at submission.
    pub fn query(&self, query: &Point, opts: &QueryOptions) -> Result<QueryResult, EngineError> {
        self.submit(query, opts)?.wait()
    }

    /// Enqueues one k-NN query and returns a handle to wait on.
    ///
    /// In [`ExecutionMode::Pooled`] the query is handed to the per-disk
    /// worker pool and this call returns immediately; the query travels
    /// worker-to-worker along its MINDIST itinerary (RKV), or disk by
    /// disk with a carried pruning bound (HS), or through the degraded
    /// state machine when faults are armed. Submitting many queries
    /// before waiting pipelines them across the disks — while one query
    /// searches disk 3, the next searches disk 1 — with no per-batch
    /// barrier and no thread spawned.
    ///
    /// In [`ExecutionMode::Scoped`] the query is answered synchronously
    /// (scoped threads, the reference implementation) and the returned
    /// handle is already complete.
    ///
    /// **Determinism.** With RKV (the default), pooled answers *and*
    /// traces (`per_disk_pages`, `dist_evals`, pruning counters) are
    /// bit-identical to the deterministic forest search that scoped
    /// batches run — the itinerary pipeline replays it exactly. With HS,
    /// answers are identical but page traces differ (the pooled pipeline
    /// searches disk-by-disk under a carried bound; the scoped batch path
    /// interleaves all disks through one global queue). Cache-hit
    /// counters are execution-order dependent in all modes.
    pub fn submit(&self, query: &Point, opts: &QueryOptions) -> Result<PendingQuery, EngineError> {
        let inner = self.shared.inner.read();
        if query.dim() != inner.core.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: inner.core.config.dim,
                got: query.dim(),
            });
        }
        let overlay = self.shared.overlay_for(query, opts.k);
        inner.submit_with_wave(query, opts, None, overlay)
    }

    /// Submits a group of queries as one **coalescing wave**: with
    /// [`AdmissionConfig::coalescing`] on, the wave's queries share
    /// physical page reads — the first to touch a page charges the disk,
    /// the rest ride that read ([`QueryTrace::per_disk_coalesced`]).
    /// Answers and logical traces are bit-identical to submitting the
    /// queries individually.
    ///
    /// The outer `Err` is a whole-batch input error (dimension mismatch);
    /// the inner per-query results surface admission rejections — an
    /// [`EngineError::Overloaded`] query was never admitted, the rest of
    /// the wave still runs. Waiting on a handle can further return
    /// [`EngineError::DeadlineExceeded`] for queries shed mid-pipeline.
    ///
    /// On a scoped (non-pooled) engine this degrades to per-query
    /// submission: there are no waves to share reads within.
    pub fn submit_wave(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<Result<PendingQuery, EngineError>>, EngineError> {
        let inner = self.shared.inner.read();
        for q in queries {
            if q.dim() != inner.core.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: inner.core.config.dim,
                    got: q.dim(),
                });
            }
        }
        let wave = inner.pool.as_ref().map(|p| p.next_wave());
        Ok(queries
            .iter()
            .map(|q| {
                let overlay = self.shared.overlay_for(q, opts.k);
                inner.submit_with_wave(q, opts, wave, overlay)
            })
            .collect())
    }

    /// [`ParallelKnnEngine::submit_wave`] followed by a wait on every
    /// admitted handle: one result per query, in query order.
    pub fn query_wave(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<Result<QueryResult, EngineError>>, EngineError> {
        let pending = self.submit_wave(queries, opts)?;
        Ok(pending
            .into_iter()
            .map(|p| p.and_then(PendingQuery::wait))
            .collect())
    }

    /// Answers a batch of queries. In [`ExecutionMode::Pooled`] every
    /// query is enqueued up front and the batch **pipelines** across the
    /// disks — query `i+1` searches disk 0 while query `i` searches disk
    /// 1 — with no per-batch barrier ([`QueryOptions::workers`] is
    /// ignored; concurrency comes from the per-disk workers).
    ///
    /// In [`ExecutionMode::Scoped`] the batch runs on a bounded scoped
    /// worker pool ([`QueryOptions::workers`], defaulting to the host's
    /// available parallelism) in the paper's **inter-query** parallel
    /// mode: each worker pulls the next unanswered query.
    ///
    /// Results are in query order, each with its own exact [`QueryTrace`]
    /// when tracing is on. With faults armed or a timeout budget set,
    /// both modes run the same degraded execution as
    /// [`ParallelKnnEngine::query`].
    pub fn query_batch(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<QueryResult>, EngineError> {
        let inner = self.shared.inner.read();
        for q in queries {
            if q.dim() != inner.core.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: inner.core.config.dim,
                    got: q.dim(),
                });
            }
        }
        if inner.pool.is_some() {
            // Each query gets a private wave (batches don't coalesce —
            // use `query_wave` for read-sharing); the first admission
            // rejection aborts the batch, already-submitted queries
            // drain normally with their answers discarded.
            let pending: Vec<PendingQuery> = queries
                .iter()
                .map(|q| {
                    let overlay = self.shared.overlay_for(q, opts.k);
                    inner.submit_with_wave(q, opts, None, overlay)
                })
                .collect::<Result<_, _>>()?;
            drop(inner);
            return pending.into_iter().map(PendingQuery::wait).collect();
        }
        let (timeout, retry) = inner.resolve_policy(opts);
        let tier = opts.tier.unwrap_or(inner.core.config.tier);
        let order = opts.order.unwrap_or(inner.core.config.order);
        let degraded = timeout.is_some() || inner.core.array.faults().any_armed();
        let model = *inner.core.array.model();
        let next = AtomicUsize::new(0);
        let workers = opts
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, queries.len().max(1));
        let mut results: Vec<Option<TracedAnswer>> = (0..queries.len()).map(|_| None).collect();
        let shared = &*self.shared;
        let inner_ref = &*inner;
        std::thread::scope(|s| {
            let next = &next;
            let retry = &retry;
            let core = &inner_ref.core;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                return out;
                            }
                            let overlay = shared.overlay_for(&queries[i], opts.k);
                            let k = opts.k + overlay.as_ref().map_or(0, QueryOverlay::extra_k);
                            let answer = if let QueryMode::Approx { probes } = opts.mode {
                                if core.lsh.is_none() {
                                    Err(EngineError::ApproxUnavailable)
                                } else {
                                    inner_ref.knn_approx(
                                        &queries[i],
                                        k,
                                        probes,
                                        degraded,
                                        timeout,
                                        retry,
                                    )
                                }
                            } else if degraded {
                                inner_ref.knn_degraded(&queries[i], k, timeout, retry, tier, order)
                            } else {
                                let start = Instant::now();
                                let (res, stats) = core.forest_search(&queries[i], k, tier, order);
                                let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                                Ok((res, trace))
                            };
                            let answer = answer.map(|(neighbors, trace)| {
                                let neighbors = match &overlay {
                                    Some(o) => o.apply(neighbors),
                                    None => neighbors,
                                };
                                (neighbors, trace)
                            });
                            if let Some(m) = &core.metrics {
                                m.record_start();
                                match &answer {
                                    Ok((_, trace)) => m.record_query(trace, &model),
                                    Err(_) => m.record_failure(),
                                }
                            }
                            out.push((i, answer));
                        }
                    })
                })
                .collect();
            for h in handles {
                for (i, answer) in h.join().expect("batch worker does not panic") {
                    results[i] = Some(answer);
                }
            }
        });
        results
            .into_iter()
            .map(|r| {
                let (neighbors, trace) = r.expect("every query index was claimed by a worker")?;
                let cost = trace.cost(&model);
                Ok(QueryResult {
                    neighbors,
                    cost,
                    trace: opts.trace.then_some(trace),
                })
            })
            .collect()
    }

    /// Runs a k-NN query against the declustered data and returns the `k`
    /// nearest neighbors plus the per-disk page cost of the query.
    /// Shorthand for [`ParallelKnnEngine::query`] without a trace.
    pub fn knn(&self, query: &Point, k: usize) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        let result = self.query(query, &QueryOptions::new(k))?;
        Ok((result.neighbors, result.cost))
    }

    /// Runs [`ParallelKnnEngine::knn`] and returns the full
    /// [`QueryTrace`] — per-disk pages, pruning and cache counters,
    /// measured wall-clock vs modeled service time, and the degraded-mode
    /// record when failure handling engaged.
    pub fn knn_traced(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let result = self.query(query, &QueryOptions::traced(k))?;
        let trace = result.trace.expect("trace was requested");
        Ok((result.neighbors, trace))
    }

    /// Answers a batch of queries on a worker pool sized to the host's
    /// available parallelism. See [`ParallelKnnEngine::query_batch`].
    pub fn knn_batch(
        &self,
        queries: &[Point],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let results = self.query_batch(queries, &QueryOptions::traced(k))?;
        Ok(results
            .into_iter()
            .map(|r| (r.neighbors, r.trace.expect("trace was requested")))
            .collect())
    }

    /// Answers a batch of queries on a bounded pool of `workers` threads.
    /// See [`ParallelKnnEngine::query_batch`].
    pub fn knn_batch_with(
        &self,
        queries: &[Point],
        k: usize,
        workers: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let results = self.query_batch(queries, &QueryOptions::traced(k).with_workers(workers))?;
        Ok(results
            .into_iter()
            .map(|r| (r.neighbors, r.trace.expect("trace was requested")))
            .collect())
    }

    /// Runs a k-NN query with **independent** per-disk searches: every
    /// disk finds its local top-`k` to completion (no shared bound) and
    /// the candidates are merged. This models a share-nothing cluster
    /// without inter-node pruning traffic; it reads more pages than
    /// [`ParallelKnnEngine::knn`] and is kept for the ablation benches.
    pub fn knn_independent(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        let inner = self.shared.inner.read();
        if query.dim() != inner.core.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: inner.core.config.dim,
                got: query.dim(),
            });
        }
        let overlay = self.shared.overlay_for(query, k);
        let k_eff = k + overlay.as_ref().map_or(0, QueryOverlay::extra_k);
        let scope = inner.core.array.begin_query();
        let algorithm = inner.core.config.algorithm;

        let mut locals: Vec<Vec<Neighbor>> = Vec::with_capacity(inner.core.trees.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = inner
                .core
                .trees
                .iter()
                .map(|tree| s.spawn(move || tree.read().knn(query, k_eff, algorithm)))
                .collect();
            for h in handles {
                locals.push(h.join().expect("local knn does not panic"));
            }
        });

        let merged = merge_candidates(locals.iter().map(Vec::as_slice), k_eff);
        let merged = match &overlay {
            Some(o) => o.apply(merged),
            None => merged,
        };
        Ok((merged, scope.finish(&inner.core.array)))
    }

    /// A handle on the simulated disk array (for experiment accounting).
    /// Pins the current engine state; see [`ArrayHandle`].
    pub fn array(&self) -> ArrayHandle {
        ArrayHandle(Arc::clone(&self.shared.inner.read().core))
    }

    /// Runs `f` over every per-disk primary tree, in disk order, under
    /// that tree's read lock (the trees are shared with the worker pool,
    /// so a borrowed slice can no longer be handed out). Buffered
    /// (delta) points are not in any tree yet.
    pub fn for_each_tree(&self, mut f: impl FnMut(&SpatialTree)) {
        let inner = self.shared.inner.read();
        for tree in &inner.core.trees {
            f(&tree.read());
        }
    }
}

impl Drop for ParallelKnnEngine {
    /// Joins any background rebuild before the shared state goes away;
    /// dropping the inner afterwards drains the worker pool.
    fn drop(&mut self) {
        let handle = self.shared.rebuild_handle.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// Derives the quadrant splitter for a build from the configured
/// [`SplitStrategy`], reading the points through any re-iterable view —
/// the online reorganize feeds `(point, item)` pairs without
/// materializing a second vector.
pub(crate) fn make_splitter_of<'a, I>(
    points: I,
    config: &EngineConfig,
) -> Result<QuadrantSplitter, EngineError>
where
    I: Iterator<Item = &'a Point> + Clone,
{
    match config.splits {
        SplitStrategy::Midpoint => {
            QuadrantSplitter::midpoint(config.dim).map_err(|e| EngineError::Internal(e.to_string()))
        }
        SplitStrategy::DataMedian => {
            median_splits_of(points).map_err(|e| EngineError::Internal(e.to_string()))
        }
    }
}

/// Simulates the error stream of `pages` reads against a flaky disk:
/// every erroring read is retried up to the policy's limit, each retry
/// charging its backoff plus one page's service time. Returns the retry
/// count, the extra modeled time, and whether every page eventually read
/// cleanly (`false` means the disk is abandoned as down).
fn simulate_flaky_reads(
    faults: &FaultInjector,
    disk: usize,
    pages: u64,
    retry: &RetryPolicy,
    model: &DiskModel,
) -> (u64, Duration, bool) {
    let per_page = model.service_time(1);
    let mut retries = 0u64;
    let mut extra = Duration::ZERO;
    for _ in 0..pages {
        if !faults.draw_read_error(disk) {
            continue;
        }
        let mut recovered = false;
        for attempt in 0..retry.max_retries {
            retries += 1;
            extra += retry.backoff_before(attempt) + per_page;
            if !faults.draw_read_error(disk) {
                recovered = true;
                break;
            }
        }
        if !recovered {
            return (retries, extra, false);
        }
    }
    (retries, extra, true)
}

/// Merges per-disk candidate lists into the global top `k` (ties broken by
/// item id, matching [`parsim_index::knn::brute_force_knn`]).
pub(crate) fn merge_candidates<'a>(
    locals: impl Iterator<Item = &'a [Neighbor]>,
    k: usize,
) -> Vec<Neighbor> {
    let mut merged: Vec<Neighbor> = locals.flatten().cloned().collect();
    merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_index::knn::brute_force_knn;

    fn engine(disks: usize, n: usize, dim: usize) -> (ParallelKnnEngine, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 7);
        let e = ParallelKnnEngine::builder(dim)
            .disks(disks)
            .build(&pts)
            .unwrap();
        (e, pts)
    }

    #[test]
    fn parallel_knn_is_exact() {
        let (e, pts) = engine(8, 3000, 8);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for q in UniformGenerator::new(8).generate(10, 100) {
            let (got, cost) = e.knn(&q, 10).unwrap();
            let want = brute_force_knn(&data, &q, 10);
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
            assert!(cost.total_reads > 0);
            assert_eq!(cost.per_disk_reads.len(), 8);
        }
    }

    #[test]
    fn pooled_knn_matches_scoped() {
        let pts = UniformGenerator::new(8).generate(2500, 7);
        let scoped = ParallelKnnEngine::builder(8).disks(8).build(&pts).unwrap();
        let pooled = ParallelKnnEngine::builder(8)
            .disks(8)
            .execution(ExecutionMode::Pooled)
            .build(&pts)
            .unwrap();
        assert_eq!(pooled.execution(), ExecutionMode::Pooled);
        for q in UniformGenerator::new(8).generate(8, 101) {
            let (a, _) = scoped.knn(&q, 10).unwrap();
            let (b, _) = pooled.knn(&q, 10).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_is_roughly_balanced_on_uniform_data() {
        let (e, _) = engine(8, 8000, 8);
        let loads = e.load_distribution();
        assert_eq!(loads.iter().sum::<usize>(), 8000);
        let max = *loads.iter().max().unwrap() as f64;
        let avg = 8000.0 / 8.0;
        assert!(max / avg < 1.7, "loads: {loads:?}");
    }

    #[test]
    fn writes_require_an_ingest_config() {
        let (e, pts) = engine(4, 200, 5);
        assert!(matches!(
            e.insert(pts[0].clone()),
            Err(EngineError::ReadOnly)
        ));
        assert!(matches!(e.remove(0), Err(EngineError::ReadOnly)));
        assert_eq!(e.delta_size(), 0);
    }

    #[test]
    fn dynamic_insert_and_remove_through_the_delta() {
        let pts = UniformGenerator::new(5).generate(500, 7);
        let e = ParallelKnnEngine::builder(5)
            .disks(4)
            .ingest(IngestConfig::new(1000))
            .build(&pts)
            .unwrap();
        let extra = UniformGenerator::new(5).generate(100, 42);
        let mut ids = Vec::new();
        for p in &extra {
            ids.push(e.insert(p.clone()).unwrap());
        }
        assert_eq!(e.len(), 600);
        assert_eq!(e.delta_size(), 100);
        // Buffered points answer queries immediately and exactly.
        let (res, _) = e.knn(&extra[3], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
        assert_eq!(res[0].item, ids[3]);
        for id in &ids {
            e.remove(*id).unwrap();
        }
        assert_eq!(e.len(), 500);
        assert_eq!(e.delta_size(), 0);
        // Removing a main-index point masks it from answers.
        e.remove(0).unwrap();
        assert_eq!(e.len(), 499);
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert!(res[0].item != 0);
        // Original points still answer queries.
        let (res, _) = e.knn(&pts[1], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn a_full_delta_sheds_writes_with_typed_backpressure() {
        let pts = UniformGenerator::new(3).generate(50, 3);
        let e = ParallelKnnEngine::builder(3)
            .disks(2)
            .ingest(IngestConfig::new(2))
            .build(&pts)
            .unwrap();
        let extra = UniformGenerator::new(3).generate(3, 9);
        e.insert(extra[0].clone()).unwrap();
        e.insert(extra[1].clone()).unwrap();
        assert!(matches!(
            e.insert(extra[2].clone()),
            Err(EngineError::DeltaFull { capacity: 2 })
        ));
        // Removing a *buffered* point frees a slot without a tombstone...
        e.remove(51).unwrap();
        // ...so the next insert is admitted again.
        e.insert(extra[2].clone()).unwrap();
        // A flush drains everything into the main index.
        e.flush().unwrap();
        assert_eq!(e.delta_size(), 0);
        assert_eq!(e.len(), 52);
        let (res, _) = e.knn(&extra[2], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            ParallelKnnEngine::builder(4).disks(4).build(&[]),
            Err(EngineError::EmptyDataSet)
        ));
        let (e, _) = engine(4, 100, 5);
        let wrong = Point::new(vec![0.5; 3]).unwrap();
        assert!(matches!(
            e.knn(&wrong, 1),
            Err(EngineError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn parallel_cost_beats_sequential_cost() {
        let (e, _) = engine(8, 5000, 10);
        let queries = UniformGenerator::new(10).generate(20, 11);
        let mut par = 0u64;
        let mut tot = 0u64;
        for q in &queries {
            let (_, cost) = e.knn(q, 10).unwrap();
            par += cost.max_reads;
            tot += cost.total_reads;
        }
        // With 8 disks the busiest disk must read far less than everything.
        assert!(par * 2 < tot, "max {par} vs total {tot}");
    }

    #[test]
    fn reorganize_preserves_contents() {
        let (e, pts) = engine(4, 800, 6);
        let before = e.len();
        e.reorganize().unwrap();
        assert_eq!(e.len(), before);
        let (res, _) = e.knn(&pts[5], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn reorganize_drains_the_delta_into_the_main_index() {
        let pts = UniformGenerator::new(4).generate(300, 5);
        let e = ParallelKnnEngine::builder(4)
            .disks(4)
            .ingest(IngestConfig::new(500))
            .build(&pts)
            .unwrap();
        let extra = UniformGenerator::new(4).generate(50, 21);
        for p in &extra {
            e.insert(p.clone()).unwrap();
        }
        e.remove(7).unwrap();
        assert_eq!(e.delta_size(), 51);
        e.reorganize().unwrap();
        assert_eq!(e.delta_size(), 0);
        assert_eq!(e.len(), 349);
        assert_eq!(e.load_distribution().iter().sum::<usize>(), 349);
        let (res, _) = e.knn(&extra[10], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
        let (res, _) = e.knn(&pts[7], 1).unwrap();
        assert!(res[0].item != 7);
    }

    #[test]
    fn reorganize_preserves_replication() {
        let pts = UniformGenerator::new(5).generate(600, 3);
        let e = ParallelKnnEngine::builder(5)
            .disks(8)
            .replicas(1)
            .build(&pts)
            .unwrap();
        assert!(e.has_replicas());
        e.reorganize().unwrap();
        assert!(e.has_replicas());
        assert_eq!(e.len(), 600);
        e.faults().fail(0);
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn reorganize_preserves_execution_mode() {
        let pts = UniformGenerator::new(5).generate(400, 13);
        let e = ParallelKnnEngine::builder(5)
            .disks(4)
            .execution(ExecutionMode::Pooled)
            .build(&pts)
            .unwrap();
        e.reorganize().unwrap();
        assert_eq!(e.execution(), ExecutionMode::Pooled);
        let (res, _) = e.knn(&pts[3], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn removing_every_point_fails_the_rebuild_and_keeps_serving() {
        let pts = UniformGenerator::new(3).generate(20, 5);
        let e = ParallelKnnEngine::builder(3)
            .disks(2)
            .ingest(IngestConfig::new(64))
            .build(&pts)
            .unwrap();
        for id in 0..20 {
            e.remove(id).unwrap();
        }
        assert!(e.is_empty());
        assert!(matches!(e.reorganize(), Err(EngineError::EmptyDataSet)));
        // The delta survives the aborted rebuild; answers stay masked.
        assert_eq!(e.delta_size(), 20);
        let (res, _) = e.knn(&pts[0], 5).unwrap();
        assert!(res.is_empty());
    }

    #[test]
    fn metrics_are_off_by_default_and_carry_over_reorganize() {
        let pts = UniformGenerator::new(4).generate(300, 9);
        let plain = ParallelKnnEngine::builder(4).disks(4).build(&pts).unwrap();
        assert!(plain.metrics().is_none());
        let metered = ParallelKnnEngine::builder(4)
            .disks(4)
            .metrics(true)
            .build(&pts)
            .unwrap();
        let q = Point::new(vec![0.4; 4]).unwrap();
        metered.knn(&q, 5).unwrap();
        let m = metered.metrics().expect("metrics were enabled");
        let s = m.snapshot();
        assert_eq!(s.counter_total("parsim_queries_started_total"), 1);
        assert_eq!(s.counter_total("parsim_queries_completed_total"), 1);
        assert!(s.counter_total("parsim_disk_pages_total") > 0);
        // Reorganize carries the registry over: cumulative totals span
        // the swap instead of resetting.
        metered.reorganize().unwrap();
        let s = metered.metrics().expect("still enabled").snapshot();
        assert_eq!(s.counter_total("parsim_queries_started_total"), 1);
        assert_eq!(s.counter_total("parsim_rebuilds_total"), 1);
        metered.knn(&q, 5).unwrap();
        let s = metered.metrics().expect("still enabled").snapshot();
        assert_eq!(s.counter_total("parsim_queries_started_total"), 2);
    }

    #[test]
    fn a_remove_replayed_across_the_swap_does_not_undercount_len() {
        // Regression: a remove journaled mid-rebuild for an id the rebuild
        // already purged used to replay as a tombstone over nothing,
        // undercounting len() by one until the next rebuild.
        let pts = UniformGenerator::new(3).generate(40, 5);
        let e = ParallelKnnEngine::builder(3)
            .disks(2)
            .ingest(IngestConfig::new(64))
            .build(&pts)
            .unwrap();
        e.remove(7).unwrap();
        assert_eq!(e.len(), 39);
        let decl = e.declusterer();
        let shared = Arc::clone(&e.shared);
        // Pin the capture window open: the swap needs the inner write
        // lock, so holding a read guard parks the rebuild right before
        // its journal replay — however fast the build itself is.
        let pin = e.shared.inner.read();
        let rebuild = std::thread::spawn(move || EngineShared::rebuild(&shared).unwrap());
        // Wait for the capture window to open (the rebuild only needs
        // the delta lock to get there), then land the racing second
        // remove exactly as `remove(7)` would.
        loop {
            let mut delta = e.shared.delta.lock();
            if delta.capturing() {
                delta.apply_remove(7, &|id, p| decl.assign(id, p));
                break;
            }
            drop(delta);
            std::thread::yield_now();
        }
        drop(pin);
        rebuild.join().unwrap();
        // The replay must drop the stale remove: 39 points, no tombstone.
        assert_eq!(e.len(), 39);
        assert_eq!(e.delta_size(), 0);
        let (res, _) = e.knn(&pts[7], 1).unwrap();
        assert!(res[0].item != 7);
        // A remove racing the swap for an id the rebuild KEPT still lands.
        e.remove(8).unwrap();
        assert_eq!(e.len(), 38);
        e.reorganize().unwrap();
        assert_eq!(e.len(), 38);
    }

    #[test]
    fn energy_scan_order_is_bit_identical_through_the_engine() {
        use parsim_index::ScanOrder;
        let pts = UniformGenerator::new(8).generate(2000, 17);
        let nat = ParallelKnnEngine::builder(8).disks(8).build(&pts).unwrap();
        let cfg = EngineConfig {
            order: ScanOrder::Energy,
            ..EngineConfig::paper_defaults(8)
        };
        let en = ParallelKnnEngine::builder(8)
            .config(cfg)
            .disks(8)
            .build(&pts)
            .unwrap();
        assert_eq!(en.config().order, ScanOrder::Energy);
        for q in UniformGenerator::new(8).generate(8, 18) {
            for tier in [ScanTier::F64, ScanTier::F32, ScanTier::Q8] {
                // Scoped batch at one worker: the only scoped path with
                // deterministic work counters (the single-query path races
                // per-disk threads on the shared bound).
                let opts = QueryOptions::traced(10).with_tier(tier).with_workers(1);
                let a = nat
                    .query_batch(std::slice::from_ref(&q), &opts)
                    .unwrap()
                    .pop()
                    .unwrap();
                let b = en
                    .query_batch(std::slice::from_ref(&q), &opts)
                    .unwrap()
                    .pop()
                    .unwrap();
                assert_eq!(a.neighbors.len(), b.neighbors.len());
                for (x, y) in a.neighbors.iter().zip(&b.neighbors) {
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "{tier:?}");
                    assert_eq!(x.item, y.item, "{tier:?}");
                }
                // Page traces match too: the permutation never changes
                // which nodes are visited.
                let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
                assert_eq!(ta.per_disk_pages, tb.per_disk_pages, "{tier:?}");
            }
        }
        // The energy engine abandons rows on the f64 tier and surfaces
        // checkpoint depth in the trace.
        let q = Point::new(vec![0.5; 8]).unwrap();
        let r = en
            .query_batch(
                std::slice::from_ref(&q),
                &QueryOptions::traced(10)
                    .with_order(ScanOrder::Energy)
                    .with_workers(1),
            )
            .unwrap()
            .pop()
            .unwrap();
        let t = r.trace.unwrap();
        assert!(t.abandoned_rows > 0, "energy f64 filter never abandoned");
        assert!(t.abandon_checkpoints >= t.abandoned_rows);
        // Reorganize recomputes the energy layout; answers stay identical.
        en.reorganize().unwrap();
        for q in UniformGenerator::new(8).generate(4, 19) {
            let a = nat.query(&q, &QueryOptions::new(10)).unwrap();
            let b = en.query(&q, &QueryOptions::new(10)).unwrap();
            assert_eq!(a.neighbors, b.neighbors);
        }
    }

    #[test]
    fn triggered_foreground_rebuild_fires_on_the_threshold() {
        let pts = UniformGenerator::new(3).generate(100, 3);
        let e = ParallelKnnEngine::builder(3)
            .disks(2)
            .ingest(
                IngestConfig::new(64)
                    .with_rebuild_threshold(10)
                    .foreground(),
            )
            .build(&pts)
            .unwrap();
        let extra = UniformGenerator::new(3).generate(10, 77);
        for p in &extra {
            e.insert(p.clone()).unwrap();
        }
        // The 10th insert crossed the threshold and rebuilt synchronously.
        assert_eq!(e.delta_size(), 0);
        assert_eq!(e.load_distribution().iter().sum::<usize>(), 110);
    }
}
