//! The parallel k-NN engine.
//!
//! The engine's shared, thread-safe state (disk array, per-disk trees,
//! mirror trees) lives in an `EngineCore` behind an `Arc`, so both the
//! scoped reference paths and the persistent worker pool of
//! [`crate::pool`] execute the same per-disk steps against the same data.
//! See `DESIGN.md` ("Query execution backbone") for the full picture.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use parsim_decluster::quantile::median_splits;
use parsim_decluster::replica::ReplicaRouting;
use parsim_decluster::Declusterer;
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_index::knn::{
    forest_itinerary, forest_knn_traced_tiered, ForestCursor, Neighbor, ScanTier, SearchStats,
    SharedBound,
};
use parsim_index::{
    CachingSink, CoalescingSink, DiskSink, KnnAlgorithm, NodeSink, SpatialTree, TreeParams,
};
use parsim_storage::{DiskArray, DiskModel, FaultInjector, FaultKind, QueryCost};

use crate::builder::EngineBuilder;
use crate::config::{EngineConfig, SplitStrategy};
use crate::metrics::{DegradedInfo, QueryTrace};
use crate::obs::EngineMetrics;
use crate::options::{ExecutionMode, FaultPolicy, QueryOptions, QueryResult, RetryPolicy};
use crate::pool::{Completion, PendingQuery, Phase, QueryTask, Stage, WorkerPool};
use crate::serve::AdmissionConfig;
use crate::EngineError;

/// One query's answer on the batch path: neighbors plus the exact trace.
pub(crate) type TracedAnswer = Result<(Vec<Neighbor>, QueryTrace), EngineError>;

/// The paper's parallel similarity-search system: a declusterer assigns
/// every feature vector to one of `n` simulated disks, each disk carries a
/// local X-tree, and k-NN queries execute on all disks concurrently.
///
/// Engines are constructed with [`ParallelKnnEngine::builder`]. With
/// [`EngineBuilder::replicas`] every bucket additionally gets a mirror
/// copy on a second disk, and queries survive disk failures injected
/// through [`ParallelKnnEngine::faults`]: reads against a failed, flaky,
/// or over-budget disk **fail over** to the replicas and still return the
/// exact (bit-identical) answer.
///
/// With [`EngineBuilder::execution`] set to [`ExecutionMode::Pooled`] the
/// engine keeps one persistent worker thread per disk and queries are
/// enqueued ([`ParallelKnnEngine::submit`]) instead of spawning threads;
/// dropping the engine drains in-flight queries and joins the pool.
pub struct ParallelKnnEngine {
    core: Arc<EngineCore>,
    declusterer: Arc<dyn Declusterer>,
    replica_router: Option<Arc<dyn ReplicaRouting>>,
    fault_policy: FaultPolicy,
    page_cache_capacity: Option<usize>,
    cache_shards: usize,
    next_seq: u64,
    /// Per-disk page caches; empty unless [`EngineBuilder::page_cache`]
    /// was set.
    caches: Vec<Arc<CachingSink>>,
    execution: ExecutionMode,
    /// The persistent per-disk worker pool; `Some` iff `execution` is
    /// [`ExecutionMode::Pooled`]. Dropped (drained + joined) before the
    /// core when the engine goes away.
    pool: Option<WorkerPool>,
}

/// The engine state shared with the worker pool: the simulated disk
/// array plus the per-disk primary and mirror trees.
///
/// Trees sit behind [`RwLock`]s because pool workers outlive any `&mut
/// self` borrow of the engine: queries take read locks (one tree at a
/// time), dynamic [`ParallelKnnEngine::insert`]/
/// [`ParallelKnnEngine::delete`] take write locks.
pub(crate) struct EngineCore {
    pub(crate) config: EngineConfig,
    pub(crate) array: DiskArray,
    pub(crate) trees: Vec<RwLock<SpatialTree>>,
    /// `mirrors[d][j]` is the tree holding the replica copies of disk
    /// `d`'s points that live on disk `j`. Empty maps when the engine was
    /// built without replicas. Mirror trees bypass the page caches: they
    /// are touched only on failover, so caching them would let rare
    /// degraded queries evict the hot primary working set.
    pub(crate) mirrors: Vec<RwLock<BTreeMap<usize, SpatialTree>>>,
    /// The engine-wide metrics registry; `None` (the default) keeps the
    /// query path free of any additional atomic operations.
    pub(crate) metrics: Option<Arc<EngineMetrics>>,
    /// Serve-layer admission policy; `None` (the default) keeps the pool
    /// on unbounded FIFO queues with no deadlines and no coalescing.
    pub(crate) admission: Option<AdmissionConfig>,
    /// Per-disk read-combining sinks; non-empty iff
    /// [`AdmissionConfig::coalescing`] is on. Workers open each popped
    /// task's wave on its disk's combiner before searching.
    pub(crate) coalescers: Vec<Arc<CoalescingSink>>,
}

/// The mutable state of one degraded-mode query, shared verbatim by the
/// scoped sequential loop and the pooled pipeline so both execute the
/// paper's failure handling step-for-step identically (same retry draws,
/// same failover order, same trace).
pub(crate) struct DegradedState {
    pub(crate) timeout: Option<Duration>,
    pub(crate) retry: RetryPolicy,
    /// Leaf-scan precision tier; rides in the state so primary and
    /// failover searches of one query always scan at the same tier.
    pub(crate) tier: ScanTier,
    pub(crate) bound: SharedBound,
    pub(crate) extra_time: Vec<Duration>,
    pub(crate) candidates: Vec<Vec<Neighbor>>,
    pub(crate) down: Vec<usize>,
    pub(crate) failed_over: Vec<usize>,
    pub(crate) replica_pages: u64,
    pub(crate) retries_total: u64,
    /// Failover stops, in execution order: `(down disk, mirror host)`.
    pub(crate) itinerary: Vec<(usize, usize)>,
    /// A down disk discovered (during planning) to have no mirrors: the
    /// query fails with `BucketUnavailable` *after* the itinerary built so
    /// far has run, exactly as the sequential loop would.
    pub(crate) error_after: Option<usize>,
}

impl DegradedState {
    pub(crate) fn new(
        disks: usize,
        timeout: Option<Duration>,
        retry: RetryPolicy,
        tier: ScanTier,
    ) -> Self {
        DegradedState {
            timeout,
            retry,
            tier,
            bound: SharedBound::new(),
            extra_time: vec![Duration::ZERO; disks],
            candidates: vec![Vec::new(); disks],
            down: Vec::new(),
            failed_over: Vec::new(),
            replica_pages: 0,
            retries_total: 0,
            itinerary: Vec::new(),
            error_after: None,
        }
    }
}

impl EngineCore {
    /// Opens coalescing wave `wave` on `disk`'s read-combining window —
    /// a no-op without coalescing sinks installed. Correctness never
    /// depends on the window state: a reset window only forgoes
    /// read-sharing, it cannot mis-coalesce.
    pub(crate) fn begin_wave(&self, disk: usize, wave: u64) {
        if let Some(c) = self.coalescers.get(disk) {
            c.begin_wave(wave);
        }
    }

    /// Runs the deterministic forest search (the canonical batch path):
    /// all trees under one bounded heap, visited in MINDIST order.
    pub(crate) fn forest_search(
        &self,
        query: &Point,
        k: usize,
        tier: ScanTier,
    ) -> (Vec<Neighbor>, Vec<SearchStats>) {
        let guards: Vec<_> = self.trees.iter().map(|t| t.read()).collect();
        let refs: Vec<&SpatialTree> = guards.iter().map(|g| &**g).collect();
        forest_knn_traced_tiered(&refs, query, k, self.config.algorithm, tier)
    }

    /// The RKV itinerary of the current trees (see
    /// [`parsim_index::forest_itinerary`]).
    pub(crate) fn itinerary(&self, query: &Point) -> Vec<(f64, usize)> {
        let guards: Vec<_> = self.trees.iter().map(|t| t.read()).collect();
        let refs: Vec<&SpatialTree> = guards.iter().map(|g| &**g).collect();
        forest_itinerary(&refs, query)
    }

    /// One RKV pipeline hop: visit tree `disk` with the traveling cursor.
    pub(crate) fn cursor_visit(
        &self,
        disk: usize,
        cursor: &mut ForestCursor,
        query: &Point,
        stats: &mut SearchStats,
    ) {
        cursor.visit(&self.trees[disk].read(), query, stats);
    }

    /// One HS pipeline hop: disk `disk`'s full local best-first search,
    /// pruning against (and tightening) the traveling bound.
    pub(crate) fn hs_visit(
        &self,
        disk: usize,
        query: &Point,
        k: usize,
        bound: &SharedBound,
        tier: ScanTier,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.trees[disk]
            .read()
            .knn_traced_tiered(query, k, KnnAlgorithm::Hs, Some(bound), tier)
    }

    /// The degraded primary step of one disk: skip it if hard-failed,
    /// otherwise search it, replay the flaky-read error stream, and apply
    /// the timeout budget. An unusable disk joins `state.down`.
    pub(crate) fn degraded_primary(
        &self,
        disk: usize,
        query: &Point,
        k: usize,
        state: &mut DegradedState,
        stats: &mut [SearchStats],
    ) {
        let faults = self.array.faults();
        if faults.is_failed(disk) {
            state.down.push(disk);
            return;
        }
        let (cands, s) = self.trees[disk].read().knn_traced_tiered(
            query,
            k,
            self.config.algorithm,
            Some(&state.bound),
            state.tier,
        );
        stats[disk].merge(s);
        let mut alive = true;
        if matches!(faults.fault(disk), Some(FaultKind::Flaky { .. })) {
            let (retries, extra, ok) =
                simulate_flaky_reads(faults, disk, s.pages, &state.retry, self.array.model());
            state.retries_total += retries;
            state.extra_time[disk] += extra;
            alive = ok;
        }
        if alive {
            if let Some(budget) = state.timeout {
                let disk_time = faults
                    .model_for(disk, self.array.model())
                    .service_time(stats[disk].pages)
                    + state.extra_time[disk];
                alive = disk_time <= budget;
            }
        }
        if alive {
            state.candidates[disk] = cands;
        } else {
            // The pages were read (and are charged) but the answer is not
            // trusted: the disk's buckets fail over.
            state.down.push(disk);
        }
    }

    /// Plans the failover itinerary once every primary step ran: each
    /// non-empty down disk contributes its mirror hosts in ascending
    /// order. A down disk with no mirrors truncates the plan and records
    /// the error, preserving the sequential loop's fail-after-searching
    /// order.
    pub(crate) fn plan_failover(&self, state: &mut DegradedState) {
        for i in 0..state.down.len() {
            let d = state.down[i];
            if self.trees[d].read().is_empty() {
                continue;
            }
            let mirrors = self.mirrors[d].read();
            if mirrors.is_empty() {
                state.error_after = Some(d);
                break;
            }
            for &host in mirrors.keys() {
                state.itinerary.push((d, host));
            }
        }
    }

    /// Executes failover stop `pos` of the planned itinerary: search the
    /// mirror of the down disk on its host, replaying the host's flaky
    /// stream. Errors if the host itself is failed or flaky beyond the
    /// retry policy.
    pub(crate) fn degraded_failover(
        &self,
        pos: usize,
        query: &Point,
        k: usize,
        state: &mut DegradedState,
        stats: &mut [SearchStats],
    ) -> Result<(), EngineError> {
        let (d, host) = state.itinerary[pos];
        let faults = self.array.faults();
        if faults.is_failed(host) {
            return Err(EngineError::BucketUnavailable { disk: d });
        }
        let (cands, s) = {
            let mirrors = self.mirrors[d].read();
            let mirror = mirrors.get(&host).expect("planned failover host exists");
            mirror.knn_traced_tiered(
                query,
                k,
                self.config.algorithm,
                Some(&state.bound),
                state.tier,
            )
        };
        if matches!(faults.fault(host), Some(FaultKind::Flaky { .. })) {
            let (retries, extra, ok) =
                simulate_flaky_reads(faults, host, s.pages, &state.retry, self.array.model());
            state.retries_total += retries;
            state.extra_time[host] += extra;
            if !ok {
                return Err(EngineError::BucketUnavailable { disk: d });
            }
        }
        state.replica_pages += s.pages;
        stats[host].merge(s);
        state.candidates[host].extend(cands);
        // The down disk is fully served once its last host ran.
        if state.itinerary.get(pos + 1).map(|&(nd, _)| nd) != Some(d) {
            state.failed_over.push(d);
        }
        Ok(())
    }

    /// Merges a finished degraded query into its answer and trace: the
    /// degraded critical path charges every disk its fault-scaled service
    /// time plus retry backoff; timed-out disks charge the budget;
    /// hard-failed disks charge nothing.
    pub(crate) fn assemble_degraded(
        &self,
        state: DegradedState,
        k: usize,
        stats: &[SearchStats],
        wall: Duration,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        if let Some(d) = state.error_after {
            return Err(EngineError::BucketUnavailable { disk: d });
        }
        let faults = self.array.faults();
        let model = self.array.model();
        let mut modeled_parallel = Duration::ZERO;
        for (i, s) in stats.iter().enumerate().take(self.trees.len()) {
            let mut t = faults.model_for(i, model).service_time(s.pages) + state.extra_time[i];
            if state.down.contains(&i) {
                if faults.is_failed(i) {
                    t = Duration::ZERO;
                } else if let Some(budget) = state.timeout {
                    t = t.min(budget);
                }
            }
            modeled_parallel = modeled_parallel.max(t);
        }
        let merged = merge_candidates(state.candidates.iter().map(Vec::as_slice), k);
        let mut trace = QueryTrace::from_stats(stats, wall, model);
        let healthy_parallel = trace.modeled_parallel;
        trace.modeled_parallel = modeled_parallel;
        trace.degraded = Some(DegradedInfo {
            failed_over: state.failed_over,
            retries: state.retries_total,
            replica_pages: state.replica_pages,
            added_latency: modeled_parallel.saturating_sub(healthy_parallel),
        });
        Ok((merged, trace))
    }
}

impl ParallelKnnEngine {
    /// Starts building an engine for `dim`-dimensional data with the
    /// paper's default configuration. See [`EngineBuilder`].
    pub fn builder(dim: usize) -> EngineBuilder {
        EngineBuilder::new(dim)
    }

    /// The workhorse constructor behind [`EngineBuilder::build`]: bulk-
    /// loads one primary tree per disk and, when a replica router is
    /// supplied, one mirror tree per (source disk, mirror disk) pair.
    /// With [`ExecutionMode::Pooled`] the per-disk worker pool starts
    /// eagerly, before the first query.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_internal(
        points: &[Point],
        declusterer: Arc<dyn Declusterer>,
        replica_router: Option<Arc<dyn ReplicaRouting>>,
        config: EngineConfig,
        fault_policy: FaultPolicy,
        page_cache: Option<usize>,
        cache_shards: usize,
        execution: ExecutionMode,
        metrics: bool,
        admission: Option<AdmissionConfig>,
    ) -> Result<Self, EngineError> {
        if points.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        for p in points {
            if p.dim() != config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        let disks = declusterer.disks();
        let array = DiskArray::new(disks, config.disk_model)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        let metrics = metrics.then(|| Arc::new(EngineMetrics::new(disks, cache_shards)));
        if let Some(m) = &metrics {
            array.faults().set_metrics(m.fault_metrics());
        }

        // Partition the points over the disks; with replication every
        // point also lands in the mirror partition its router picks.
        let mut partitions: Vec<Vec<(Point, u64)>> = vec![Vec::new(); disks];
        let mut mirror_parts: Vec<BTreeMap<usize, Vec<(Point, u64)>>> =
            vec![BTreeMap::new(); disks];
        for (i, p) in points.iter().enumerate() {
            let disk = declusterer.assign(i as u64, p);
            partitions[disk].push((p.clone(), i as u64));
            if let Some(router) = &replica_router {
                let mirror = router.replica_disk(i as u64, p);
                mirror_parts[disk]
                    .entry(mirror)
                    .or_default()
                    .push((p.clone(), i as u64));
            }
        }

        // One bulk-loaded tree per disk, charging that disk.
        let mut trees = Vec::with_capacity(disks);
        for (i, part) in partitions.into_iter().enumerate() {
            let params = TreeParams::for_dim(config.dim, config.variant)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
            let tree = SpatialTree::bulk_load(params, part)
                .map_err(|e| EngineError::Internal(e.to_string()))?
                .with_disk(Arc::clone(array.disk(i)));
            trees.push(tree);
        }

        // Mirror trees charge the disk that hosts the replica.
        let mut mirrors = Vec::with_capacity(disks);
        for parts in mirror_parts {
            let mut per_host = BTreeMap::new();
            for (host, part) in parts {
                let params = TreeParams::for_dim(config.dim, config.variant)
                    .map_err(|e| EngineError::Internal(e.to_string()))?;
                let tree = SpatialTree::bulk_load(params, part)
                    .map_err(|e| EngineError::Internal(e.to_string()))?
                    .with_disk(Arc::clone(array.disk(host)));
                per_host.insert(host, tree);
            }
            mirrors.push(per_host);
        }

        let mut engine = ParallelKnnEngine {
            core: Arc::new(EngineCore {
                config,
                array,
                trees: trees.into_iter().map(RwLock::new).collect(),
                mirrors: mirrors.into_iter().map(RwLock::new).collect(),
                metrics,
                admission,
                coalescers: Vec::new(),
            }),
            declusterer,
            replica_router,
            fault_policy,
            page_cache_capacity: page_cache,
            cache_shards,
            next_seq: points.len() as u64,
            caches: Vec::new(),
            execution,
            pool: None,
        };
        engine.install_sinks();
        engine.start_pool();
        Ok(engine)
    }

    /// Starts the per-disk worker pool when the engine runs pooled.
    fn start_pool(&mut self) {
        if self.execution == ExecutionMode::Pooled && self.pool.is_none() {
            self.pool = Some(WorkerPool::start(Arc::clone(&self.core)));
        }
    }

    /// Rebuilds every primary tree's sink chain from the engine's knobs:
    /// `DiskSink`, optionally wrapped by a sharded LRU [`CachingSink`]
    /// ([`EngineBuilder::page_cache`]), optionally wrapped by a
    /// [`CoalescingSink`] ([`AdmissionConfig::coalescing`]) — outermost
    /// first, so a coalesced visit skips the cache entirely and leaves
    /// the LRU state exactly as an uncoalesced replay would expect.
    /// Mirror trees keep the bare disk sink (see the
    /// [`EngineCore::mirrors`] docs).
    fn install_sinks(&mut self) {
        let capacity = self.page_cache_capacity;
        let coalescing = self.core.admission.map(|a| a.coalescing).unwrap_or(false);
        if capacity.is_none() && !coalescing {
            return;
        }
        // Swapping the trees' sinks needs the core to ourselves: drain +
        // join any pool first, restart it after.
        self.pool = None;
        let shards = self.cache_shards;
        let core = Arc::get_mut(&mut self.core)
            .expect("no queries are in flight while the engine is reconfigured");
        let mut caches = Vec::new();
        let mut coalescers = Vec::new();
        core.trees = std::mem::take(&mut core.trees)
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let mut sink: Arc<dyn NodeSink> =
                    Arc::new(DiskSink(Arc::clone(core.array.disk(i))));
                if let Some(capacity) = capacity {
                    let cm = core.metrics.as_ref().map(|m| m.cache_metrics(i));
                    let cache = Arc::new(CachingSink::with_metrics(sink, capacity, shards, cm));
                    caches.push(Arc::clone(&cache));
                    sink = cache;
                }
                if coalescing {
                    let combiner = Arc::new(CoalescingSink::new(sink));
                    coalescers.push(Arc::clone(&combiner));
                    sink = combiner;
                }
                RwLock::new(t.into_inner().with_sink(sink))
            })
            .collect();
        core.coalescers = coalescers;
        self.caches = caches;
        self.start_pool();
    }

    /// The per-disk page caches (empty for an uncached engine).
    pub fn caches(&self) -> &[Arc<CachingSink>] {
        &self.caches
    }

    pub(crate) fn make_splitter(
        points: &[Point],
        config: &EngineConfig,
    ) -> Result<QuadrantSplitter, EngineError> {
        match config.splits {
            SplitStrategy::Midpoint => QuadrantSplitter::midpoint(config.dim)
                .map_err(|e| EngineError::Internal(e.to_string())),
            SplitStrategy::DataMedian => {
                median_splits(points).map_err(|e| EngineError::Internal(e.to_string()))
            }
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.core.config
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.core.array.len()
    }

    /// How this engine executes queries (set at build time).
    pub fn execution(&self) -> ExecutionMode {
        self.execution
    }

    /// The declusterer in use.
    pub fn declusterer(&self) -> &Arc<dyn Declusterer> {
        &self.declusterer
    }

    /// The fault injector of the underlying disk array: mark disks
    /// failed, slow, or flaky here and the engine's degraded execution
    /// takes over.
    pub fn faults(&self) -> &FaultInjector {
        self.core.array.faults()
    }

    /// The engine-wide degraded-mode defaults set at build time.
    pub fn fault_policy(&self) -> &FaultPolicy {
        &self.fault_policy
    }

    /// The serve-layer admission policy, or `None` when the engine runs
    /// without backpressure, deadlines, or coalescing (the default).
    pub fn admission(&self) -> Option<AdmissionConfig> {
        self.core.admission
    }

    /// The engine-wide metrics registry, or `None` unless the engine was
    /// built with [`EngineBuilder::metrics`]`(true)`. Snapshot through
    /// [`EngineMetrics::snapshot`]; export with
    /// [`parsim_obs::prometheus_text`] / [`parsim_obs::to_json`].
    pub fn metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.core.metrics.as_ref()
    }

    /// True if the engine keeps replica copies of every bucket.
    pub fn has_replicas(&self) -> bool {
        self.replica_router.is_some()
    }

    /// The disks hosting replica copies of `disk`'s buckets (empty for an
    /// un-replicated engine or a disk with no data).
    pub fn replica_disks_of(&self, disk: usize) -> Vec<usize> {
        self.core
            .mirrors
            .get(disk)
            .map(|m| m.read().keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total number of indexed points (primaries only; replicas are
    /// copies, not extra points).
    pub fn len(&self) -> usize {
        self.core.trees.iter().map(|t| t.read().len()).sum()
    }

    /// True if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-disk point counts — the load-balance view (primaries only).
    pub fn load_distribution(&self) -> Vec<usize> {
        self.core.trees.iter().map(|t| t.read().len()).collect()
    }

    /// Inserts a point dynamically (the system "is completely dynamical",
    /// Section 4.3). With replication the mirror copy is inserted too.
    /// Safe while pooled queries are in flight: the touched trees are
    /// write-locked for the duration of the insert.
    pub fn insert(&mut self, point: Point) -> Result<u64, EngineError> {
        if point.dim() != self.core.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.core.config.dim,
                got: point.dim(),
            });
        }
        let item = self.next_seq;
        self.next_seq += 1;
        let disk = self.declusterer.assign(item, &point);
        if let Some(router) = &self.replica_router {
            let host = router.replica_disk(item, &point);
            let params = TreeParams::for_dim(self.core.config.dim, self.core.config.variant)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
            let mut mirrors = self.core.mirrors[disk].write();
            let mirror = mirrors.entry(host).or_insert_with(|| {
                SpatialTree::new(params).with_disk(Arc::clone(self.core.array.disk(host)))
            });
            mirror
                .insert(point.clone(), item)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
        }
        self.core.trees[disk]
            .write()
            .insert(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Ok(item)
    }

    /// Deletes a previously inserted point (and its replica, if any).
    pub fn delete(&mut self, point: &Point, item: u64) -> Result<(), EngineError> {
        let disk = self.declusterer.assign(item, point);
        if let Some(router) = &self.replica_router {
            let host = router.replica_disk(item, point);
            if let Some(mirror) = self.core.mirrors[disk].write().get_mut(&host) {
                mirror
                    .delete(point, item)
                    .map_err(|e| EngineError::Internal(e.to_string()))?;
            }
        }
        self.core.trees[disk]
            .write()
            .delete(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))
    }

    /// Answers one k-NN query under `opts` — the single entry point
    /// behind every legacy `knn*` method. Equivalent to
    /// [`ParallelKnnEngine::submit`] followed by [`PendingQuery::wait`].
    ///
    /// When no faults are armed and no timeout budget applies, this is
    /// the paper's parallel search; otherwise the engine runs **degraded
    /// execution**: failed disks are skipped, flaky reads are retried per
    /// [`RetryPolicy`], disks over the timeout budget are abandoned, and
    /// every lost disk's buckets are served from their replicas — the
    /// merged answer is bit-identical to the healthy one as long as a
    /// healthy replica exists for every lost bucket
    /// ([`EngineError::BucketUnavailable`] otherwise).
    pub fn query(&self, query: &Point, opts: &QueryOptions) -> Result<QueryResult, EngineError> {
        self.submit(query, opts)?.wait()
    }

    /// Enqueues one k-NN query and returns a handle to wait on.
    ///
    /// In [`ExecutionMode::Pooled`] the query is handed to the per-disk
    /// worker pool and this call returns immediately; the query travels
    /// worker-to-worker along its MINDIST itinerary (RKV), or disk by
    /// disk with a carried pruning bound (HS), or through the degraded
    /// state machine when faults are armed. Submitting many queries
    /// before waiting pipelines them across the disks — while one query
    /// searches disk 3, the next searches disk 1 — with no per-batch
    /// barrier and no thread spawned.
    ///
    /// In [`ExecutionMode::Scoped`] the query is answered synchronously
    /// (scoped threads, the reference implementation) and the returned
    /// handle is already complete.
    ///
    /// **Determinism.** With RKV (the default), pooled answers *and*
    /// traces (`per_disk_pages`, `dist_evals`, pruning counters) are
    /// bit-identical to the deterministic forest search that scoped
    /// batches run — the itinerary pipeline replays it exactly. With HS,
    /// answers are identical but page traces differ (the pooled pipeline
    /// searches disk-by-disk under a carried bound; the scoped batch path
    /// interleaves all disks through one global queue). Cache-hit
    /// counters are execution-order dependent in all modes.
    pub fn submit(&self, query: &Point, opts: &QueryOptions) -> Result<PendingQuery, EngineError> {
        if query.dim() != self.core.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.core.config.dim,
                got: query.dim(),
            });
        }
        self.submit_with_wave(query, opts, None)
    }

    /// Submits a group of queries as one **coalescing wave**: with
    /// [`AdmissionConfig::coalescing`] on, the wave's queries share
    /// physical page reads — the first to touch a page charges the disk,
    /// the rest ride that read ([`QueryTrace::per_disk_coalesced`]).
    /// Answers and logical traces are bit-identical to submitting the
    /// queries individually.
    ///
    /// The outer `Err` is a whole-batch input error (dimension mismatch);
    /// the inner per-query results surface admission rejections — an
    /// [`EngineError::Overloaded`] query was never admitted, the rest of
    /// the wave still runs. Waiting on a handle can further return
    /// [`EngineError::DeadlineExceeded`] for queries shed mid-pipeline.
    ///
    /// On a scoped (non-pooled) engine this degrades to per-query
    /// submission: there are no waves to share reads within.
    pub fn submit_wave(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<Result<PendingQuery, EngineError>>, EngineError> {
        for q in queries {
            if q.dim() != self.core.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: self.core.config.dim,
                    got: q.dim(),
                });
            }
        }
        let wave = self.pool.as_ref().map(|p| p.next_wave());
        Ok(queries
            .iter()
            .map(|q| self.submit_with_wave(q, opts, wave))
            .collect())
    }

    /// [`ParallelKnnEngine::submit_wave`] followed by a wait on every
    /// admitted handle: one result per query, in query order.
    pub fn query_wave(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<Result<QueryResult, EngineError>>, EngineError> {
        let pending = self.submit_wave(queries, opts)?;
        Ok(pending
            .into_iter()
            .map(|p| p.and_then(PendingQuery::wait))
            .collect())
    }

    /// Dispatches a dimension-checked query to the pool (pooled mode) or
    /// computes it synchronously (scoped mode). `wave` groups queries
    /// into one coalescing wave; `None` draws a fresh (private) wave.
    fn submit_with_wave(
        &self,
        query: &Point,
        opts: &QueryOptions,
        wave: Option<u64>,
    ) -> Result<PendingQuery, EngineError> {
        let (timeout, retry) = self.resolve_policy(opts);
        let tier = opts.tier.unwrap_or(self.core.config.tier);
        let degraded = timeout.is_some() || self.core.array.faults().any_armed();
        let model = *self.core.array.model();
        if let Some(m) = &self.core.metrics {
            m.record_start();
        }
        let Some(pool) = &self.pool else {
            // Scoped: answer now, return an already-complete handle.
            let answer = if degraded {
                self.knn_degraded(query, opts.k, timeout, &retry, tier)
            } else {
                Ok(self.knn_healthy(query, opts.k, tier))
            };
            if let Some(m) = &self.core.metrics {
                match &answer {
                    Ok((_, trace)) => m.record_query(trace, &model),
                    Err(_) => m.record_failure(),
                }
            }
            return Ok(PendingQuery::completed(answer, opts.trace, model));
        };

        let n = self.core.trees.len();
        let completion = Arc::new(Completion::new());
        let pending = PendingQuery::new(Arc::clone(&completion), opts.trace, model);
        let start = Instant::now();
        let (first, stage) = if degraded {
            (
                0,
                Stage::Degraded {
                    state: DegradedState::new(n, timeout, retry, tier),
                    phase: Phase::Primaries { next: 0 },
                },
            )
        } else {
            match self.core.config.algorithm {
                KnnAlgorithm::Rkv => {
                    let itinerary = self.core.itinerary(query);
                    if opts.k == 0 || itinerary.is_empty() {
                        // Nothing to search: complete inline, matching the
                        // forest search's early return.
                        let stats = vec![SearchStats::default(); n];
                        let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                        if let Some(m) = &self.core.metrics {
                            m.record_query(&trace, &model);
                        }
                        completion.complete(Ok((Vec::new(), trace)));
                        return Ok(pending);
                    }
                    let first = itinerary[0].1;
                    (
                        first,
                        Stage::Rkv {
                            cursor: ForestCursor::with_tier(opts.k, tier),
                            itinerary,
                            pos: 0,
                        },
                    )
                }
                KnnAlgorithm::Hs => {
                    if opts.k == 0 {
                        let stats = vec![SearchStats::default(); n];
                        let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                        if let Some(m) = &self.core.metrics {
                            m.record_query(&trace, &model);
                        }
                        completion.complete(Ok((Vec::new(), trace)));
                        return Ok(pending);
                    }
                    (
                        0,
                        Stage::Hs {
                            bound: SharedBound::new(),
                            candidates: vec![Vec::new(); n],
                            next: 0,
                        },
                    )
                }
            }
        };
        let deadline = opts
            .deadline
            .or(self.core.admission.and_then(|a| a.deadline));
        let outcome = pool.submit(
            first,
            QueryTask {
                query: query.clone(),
                k: opts.k,
                tier,
                stats: vec![SearchStats::default(); n],
                start,
                stage,
                completion,
                wave: wave.unwrap_or_else(|| pool.next_wave()),
                deadline_micros: deadline.map(|d| d.as_micros() as u64),
                spent_micros: 0,
                seq: 0,
            },
        );
        match outcome {
            Ok(()) => Ok(pending),
            Err(e) => {
                // The task never entered the system: surface the typed
                // rejection instead of the (never-completing) handle.
                if let Some(m) = &self.core.metrics {
                    m.record_shed_overloaded();
                }
                Err(e)
            }
        }
    }

    /// Answers a batch of queries. In [`ExecutionMode::Pooled`] every
    /// query is enqueued up front and the batch **pipelines** across the
    /// disks — query `i+1` searches disk 0 while query `i` searches disk
    /// 1 — with no per-batch barrier ([`QueryOptions::workers`] is
    /// ignored; concurrency comes from the per-disk workers).
    ///
    /// In [`ExecutionMode::Scoped`] the batch runs on a bounded scoped
    /// worker pool ([`QueryOptions::workers`], defaulting to the host's
    /// available parallelism) in the paper's **inter-query** parallel
    /// mode: each worker pulls the next unanswered query.
    ///
    /// Results are in query order, each with its own exact [`QueryTrace`]
    /// when tracing is on. With faults armed or a timeout budget set,
    /// both modes run the same degraded execution as
    /// [`ParallelKnnEngine::query`].
    pub fn query_batch(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<QueryResult>, EngineError> {
        for q in queries {
            if q.dim() != self.core.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: self.core.config.dim,
                    got: q.dim(),
                });
            }
        }
        if self.pool.is_some() {
            // Each query gets a private wave (batches don't coalesce —
            // use `query_wave` for read-sharing); the first admission
            // rejection aborts the batch, already-submitted queries
            // drain normally with their answers discarded.
            let pending: Vec<PendingQuery> = queries
                .iter()
                .map(|q| self.submit_with_wave(q, opts, None))
                .collect::<Result<_, _>>()?;
            return pending.into_iter().map(PendingQuery::wait).collect();
        }
        let (timeout, retry) = self.resolve_policy(opts);
        let tier = opts.tier.unwrap_or(self.core.config.tier);
        let degraded = timeout.is_some() || self.core.array.faults().any_armed();
        let model = *self.core.array.model();
        let next = AtomicUsize::new(0);
        let workers = opts
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, queries.len().max(1));
        let mut results: Vec<Option<TracedAnswer>> = (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let next = &next;
            let retry = &retry;
            let core = &self.core;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                return out;
                            }
                            let answer = if degraded {
                                self.knn_degraded(&queries[i], opts.k, timeout, retry, tier)
                            } else {
                                let start = Instant::now();
                                let (res, stats) = core.forest_search(&queries[i], opts.k, tier);
                                let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                                Ok((res, trace))
                            };
                            if let Some(m) = &core.metrics {
                                m.record_start();
                                match &answer {
                                    Ok((_, trace)) => m.record_query(trace, &model),
                                    Err(_) => m.record_failure(),
                                }
                            }
                            out.push((i, answer));
                        }
                    })
                })
                .collect();
            for h in handles {
                for (i, answer) in h.join().expect("batch worker does not panic") {
                    results[i] = Some(answer);
                }
            }
        });
        results
            .into_iter()
            .map(|r| {
                let (neighbors, trace) = r.expect("every query index was claimed by a worker")?;
                let cost = trace.cost(&model);
                Ok(QueryResult {
                    neighbors,
                    cost,
                    trace: opts.trace.then_some(trace),
                })
            })
            .collect()
    }

    /// Runs a k-NN query against the declustered data and returns the `k`
    /// nearest neighbors plus the per-disk page cost of the query.
    /// Shorthand for [`ParallelKnnEngine::query`] without a trace.
    pub fn knn(&self, query: &Point, k: usize) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        let result = self.query(query, &QueryOptions::new(k))?;
        Ok((result.neighbors, result.cost))
    }

    /// Runs [`ParallelKnnEngine::knn`] and returns the full
    /// [`QueryTrace`] — per-disk pages, pruning and cache counters,
    /// measured wall-clock vs modeled service time, and the degraded-mode
    /// record when failure handling engaged.
    pub fn knn_traced(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let result = self.query(query, &QueryOptions::traced(k))?;
        let trace = result.trace.expect("trace was requested");
        Ok((result.neighbors, trace))
    }

    /// Answers a batch of queries on a worker pool sized to the host's
    /// available parallelism. See [`ParallelKnnEngine::query_batch`].
    pub fn knn_batch(
        &self,
        queries: &[Point],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let results = self.query_batch(queries, &QueryOptions::traced(k))?;
        Ok(results
            .into_iter()
            .map(|r| (r.neighbors, r.trace.expect("trace was requested")))
            .collect())
    }

    /// Answers a batch of queries on a bounded pool of `workers` threads.
    /// See [`ParallelKnnEngine::query_batch`].
    pub fn knn_batch_with(
        &self,
        queries: &[Point],
        k: usize,
        workers: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let results = self.query_batch(queries, &QueryOptions::traced(k).with_workers(workers))?;
        Ok(results
            .into_iter()
            .map(|r| (r.neighbors, r.trace.expect("trace was requested")))
            .collect())
    }

    /// The scoped healthy fast path: one scoped thread per disk, shared
    /// pruning bound, exact per-query trace — the paper's Var. 3 search.
    fn knn_healthy(&self, query: &Point, k: usize, tier: ScanTier) -> (Vec<Neighbor>, QueryTrace) {
        let algorithm = self.core.config.algorithm;
        let start = Instant::now();
        let shared = SharedBound::new();
        // One scoped thread per disk; each returns its local candidates
        // and locally-counted work so the trace is exact per query.
        let locals: Vec<_> = std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = self
                .core
                .trees
                .iter()
                .map(|tree| {
                    s.spawn(move || {
                        tree.read()
                            .knn_traced_tiered(query, k, algorithm, Some(shared), tier)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("per-disk search does not panic"))
                .collect()
        });
        let wall = start.elapsed();
        let merged = merge_candidates(locals.iter().map(|(c, _)| c.as_slice()), k);
        let stats: Vec<_> = locals.iter().map(|(_, s)| *s).collect();
        let trace = QueryTrace::from_stats(&stats, wall, self.core.array.model());
        (merged, trace)
    }

    /// Degraded execution, scoped flavor: the same per-disk steps the
    /// pooled pipeline runs ([`EngineCore::degraded_primary`] /
    /// [`EngineCore::degraded_failover`]), driven sequentially so the
    /// retry draws — and therefore the whole trace — are deterministic
    /// for a given injector seed.
    fn knn_degraded(
        &self,
        query: &Point,
        k: usize,
        timeout: Option<Duration>,
        retry: &RetryPolicy,
        tier: ScanTier,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let core = &self.core;
        let n = core.trees.len();
        let start = Instant::now();
        let mut stats = vec![SearchStats::default(); n];
        let mut state = DegradedState::new(n, timeout, *retry, tier);
        for disk in 0..n {
            core.degraded_primary(disk, query, k, &mut state, &mut stats);
        }
        core.plan_failover(&mut state);
        for pos in 0..state.itinerary.len() {
            core.degraded_failover(pos, query, k, &mut state, &mut stats)?;
        }
        core.assemble_degraded(state, k, &stats, start.elapsed())
    }

    fn resolve_policy(&self, opts: &QueryOptions) -> (Option<Duration>, RetryPolicy) {
        (
            opts.timeout.or(self.fault_policy.timeout),
            opts.retry.unwrap_or(self.fault_policy.retry),
        )
    }

    /// Runs a k-NN query with **independent** per-disk searches: every
    /// disk finds its local top-`k` to completion (no shared bound) and
    /// the candidates are merged. This models a share-nothing cluster
    /// without inter-node pruning traffic; it reads more pages than
    /// [`ParallelKnnEngine::knn`] and is kept for the ablation benches.
    pub fn knn_independent(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        if query.dim() != self.core.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.core.config.dim,
                got: query.dim(),
            });
        }
        let scope = self.core.array.begin_query();
        let algorithm = self.core.config.algorithm;

        let mut locals: Vec<Vec<Neighbor>> = Vec::with_capacity(self.core.trees.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .core
                .trees
                .iter()
                .map(|tree| s.spawn(move || tree.read().knn(query, k, algorithm)))
                .collect();
            for h in handles {
                locals.push(h.join().expect("local knn does not panic"));
            }
        });

        let merged = merge_candidates(locals.iter().map(Vec::as_slice), k);
        Ok((merged, scope.finish(&self.core.array)))
    }

    /// Reorganizes the engine for the current data: recomputes the
    /// declustering (median splits from the stored points) and rebuilds
    /// the per-disk trees, preserving the disk count, replication, fault
    /// policy, page-cache setup, execution mode, and admission policy. The rebuilt engine
    /// starts with a fresh, healthy disk array — injected faults do not
    /// carry over, and metrics (when enabled) restart from a fresh
    /// registry with all counters at zero.
    ///
    /// This is the paper's reorganization step for data whose distribution
    /// drifted after many insertions.
    pub fn reorganize(self) -> Result<Self, EngineError> {
        let mut points: Vec<(u64, Point)> = Vec::with_capacity(self.len());
        for tree in &self.core.trees {
            let tree = tree.read();
            for node in tree.iter_nodes() {
                if let parsim_index::node::Node::Leaf { entries, .. } = node {
                    for (row, item) in entries.iter() {
                        points.push((item, Point::from_vec(row.to_vec())));
                    }
                }
            }
        }
        points.sort_by_key(|(item, _)| *item);
        let pts: Vec<Point> = points.into_iter().map(|(_, p)| p).collect();
        let mut builder = Self::builder(self.core.config.dim)
            .config(self.core.config)
            .disks(self.disks())
            .replicas(usize::from(self.replica_router.is_some()))
            .fault_policy(self.fault_policy)
            .cache_shards(self.cache_shards)
            .execution(self.execution)
            .metrics(self.core.metrics.is_some());
        if let Some(capacity) = self.page_cache_capacity {
            builder = builder.page_cache(capacity);
        }
        if let Some(admission) = self.core.admission {
            builder = builder.admission(admission);
        }
        builder.build(&pts)
    }

    /// Immutable access to the disk array (for experiment accounting).
    pub fn array(&self) -> &DiskArray {
        &self.core.array
    }

    /// Runs `f` over every per-disk primary tree, in disk order, under
    /// that tree's read lock (the trees are shared with the worker pool,
    /// so a borrowed slice can no longer be handed out).
    pub fn for_each_tree(&self, mut f: impl FnMut(&SpatialTree)) {
        for tree in &self.core.trees {
            f(&tree.read());
        }
    }
}

/// Simulates the error stream of `pages` reads against a flaky disk:
/// every erroring read is retried up to the policy's limit, each retry
/// charging its backoff plus one page's service time. Returns the retry
/// count, the extra modeled time, and whether every page eventually read
/// cleanly (`false` means the disk is abandoned as down).
fn simulate_flaky_reads(
    faults: &FaultInjector,
    disk: usize,
    pages: u64,
    retry: &RetryPolicy,
    model: &DiskModel,
) -> (u64, Duration, bool) {
    let per_page = model.service_time(1);
    let mut retries = 0u64;
    let mut extra = Duration::ZERO;
    for _ in 0..pages {
        if !faults.draw_read_error(disk) {
            continue;
        }
        let mut recovered = false;
        for attempt in 0..retry.max_retries {
            retries += 1;
            extra += retry.backoff_before(attempt) + per_page;
            if !faults.draw_read_error(disk) {
                recovered = true;
                break;
            }
        }
        if !recovered {
            return (retries, extra, false);
        }
    }
    (retries, extra, true)
}

/// Merges per-disk candidate lists into the global top `k` (ties broken by
/// item id, matching [`parsim_index::knn::brute_force_knn`]).
pub(crate) fn merge_candidates<'a>(
    locals: impl Iterator<Item = &'a [Neighbor]>,
    k: usize,
) -> Vec<Neighbor> {
    let mut merged: Vec<Neighbor> = locals.flatten().cloned().collect();
    merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_index::knn::brute_force_knn;

    fn engine(disks: usize, n: usize, dim: usize) -> (ParallelKnnEngine, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 7);
        let e = ParallelKnnEngine::builder(dim)
            .disks(disks)
            .build(&pts)
            .unwrap();
        (e, pts)
    }

    #[test]
    fn parallel_knn_is_exact() {
        let (e, pts) = engine(8, 3000, 8);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for q in UniformGenerator::new(8).generate(10, 100) {
            let (got, cost) = e.knn(&q, 10).unwrap();
            let want = brute_force_knn(&data, &q, 10);
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
            assert!(cost.total_reads > 0);
            assert_eq!(cost.per_disk_reads.len(), 8);
        }
    }

    #[test]
    fn pooled_knn_matches_scoped() {
        let pts = UniformGenerator::new(8).generate(2500, 7);
        let scoped = ParallelKnnEngine::builder(8).disks(8).build(&pts).unwrap();
        let pooled = ParallelKnnEngine::builder(8)
            .disks(8)
            .execution(ExecutionMode::Pooled)
            .build(&pts)
            .unwrap();
        assert_eq!(pooled.execution(), ExecutionMode::Pooled);
        for q in UniformGenerator::new(8).generate(8, 101) {
            let (a, _) = scoped.knn(&q, 10).unwrap();
            let (b, _) = pooled.knn(&q, 10).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn load_is_roughly_balanced_on_uniform_data() {
        let (e, _) = engine(8, 8000, 8);
        let loads = e.load_distribution();
        assert_eq!(loads.iter().sum::<usize>(), 8000);
        let max = *loads.iter().max().unwrap() as f64;
        let avg = 8000.0 / 8.0;
        assert!(max / avg < 1.7, "loads: {loads:?}");
    }

    #[test]
    fn dynamic_insert_and_delete() {
        let (mut e, pts) = engine(4, 500, 5);
        let extra = UniformGenerator::new(5).generate(100, 42);
        let mut ids = Vec::new();
        for p in &extra {
            ids.push(e.insert(p.clone()).unwrap());
        }
        assert_eq!(e.len(), 600);
        for (p, id) in extra.iter().zip(&ids) {
            e.delete(p, *id).unwrap();
        }
        assert_eq!(e.len(), 500);
        // Original points still answer queries.
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            ParallelKnnEngine::builder(4).disks(4).build(&[]),
            Err(EngineError::EmptyDataSet)
        ));
        let (e, _) = engine(4, 100, 5);
        let wrong = Point::new(vec![0.5; 3]).unwrap();
        assert!(matches!(
            e.knn(&wrong, 1),
            Err(EngineError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn parallel_cost_beats_sequential_cost() {
        let (e, _) = engine(8, 5000, 10);
        let queries = UniformGenerator::new(10).generate(20, 11);
        let mut par = 0u64;
        let mut tot = 0u64;
        for q in &queries {
            let (_, cost) = e.knn(q, 10).unwrap();
            par += cost.max_reads;
            tot += cost.total_reads;
        }
        // With 8 disks the busiest disk must read far less than everything.
        assert!(par * 2 < tot, "max {par} vs total {tot}");
    }

    #[test]
    fn reorganize_preserves_contents() {
        let (e, pts) = engine(4, 800, 6);
        let before = e.len();
        let e = e.reorganize().unwrap();
        assert_eq!(e.len(), before);
        let (res, _) = e.knn(&pts[5], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn reorganize_preserves_replication() {
        let pts = UniformGenerator::new(5).generate(600, 3);
        let e = ParallelKnnEngine::builder(5)
            .disks(8)
            .replicas(1)
            .build(&pts)
            .unwrap();
        assert!(e.has_replicas());
        let e = e.reorganize().unwrap();
        assert!(e.has_replicas());
        assert_eq!(e.len(), 600);
        e.faults().fail(0);
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn reorganize_preserves_execution_mode() {
        let pts = UniformGenerator::new(5).generate(400, 13);
        let e = ParallelKnnEngine::builder(5)
            .disks(4)
            .execution(ExecutionMode::Pooled)
            .build(&pts)
            .unwrap();
        let e = e.reorganize().unwrap();
        assert_eq!(e.execution(), ExecutionMode::Pooled);
        let (res, _) = e.knn(&pts[3], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn metrics_are_off_by_default_and_survive_reorganize() {
        let pts = UniformGenerator::new(4).generate(300, 9);
        let plain = ParallelKnnEngine::builder(4).disks(4).build(&pts).unwrap();
        assert!(plain.metrics().is_none());
        let metered = ParallelKnnEngine::builder(4)
            .disks(4)
            .metrics(true)
            .build(&pts)
            .unwrap();
        let q = Point::new(vec![0.4; 4]).unwrap();
        metered.knn(&q, 5).unwrap();
        let m = metered.metrics().expect("metrics were enabled");
        let s = m.snapshot();
        assert_eq!(s.counter_total("parsim_queries_started_total"), 1);
        assert_eq!(s.counter_total("parsim_queries_completed_total"), 1);
        assert!(s.counter_total("parsim_disk_pages_total") > 0);
        // Reorganize keeps metrics enabled but resets the registry.
        let metered = metered.reorganize().unwrap();
        let s = metered.metrics().expect("still enabled").snapshot();
        assert_eq!(s.counter_total("parsim_queries_started_total"), 0);
    }
}
