//! The parallel k-NN engine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parsim_decluster::quantile::median_splits;
use parsim_decluster::replica::ReplicaRouting;
use parsim_decluster::Declusterer;
use parsim_geometry::{Point, QuadrantSplitter};
use parsim_index::knn::{forest_knn_traced, Neighbor, SearchStats, SharedBound};
use parsim_index::{CachingSink, DiskSink, NodeSink, SpatialTree, TreeParams};
use parsim_storage::{DiskArray, DiskModel, FaultInjector, FaultKind, QueryCost};

use crate::builder::EngineBuilder;
use crate::config::{EngineConfig, SplitStrategy};
use crate::metrics::{DegradedInfo, QueryTrace};
use crate::options::{FaultPolicy, QueryOptions, QueryResult, RetryPolicy};
use crate::EngineError;

/// One query's answer on the batch path: neighbors plus the exact trace.
type TracedAnswer = Result<(Vec<Neighbor>, QueryTrace), EngineError>;

/// The paper's parallel similarity-search system: a declusterer assigns
/// every feature vector to one of `n` simulated disks, each disk carries a
/// local X-tree, and k-NN queries execute on all disks concurrently.
///
/// Engines are constructed with [`ParallelKnnEngine::builder`]. With
/// [`EngineBuilder::replicas`] every bucket additionally gets a mirror
/// copy on a second disk, and queries survive disk failures injected
/// through [`ParallelKnnEngine::faults`]: reads against a failed, flaky,
/// or over-budget disk **fail over** to the replicas and still return the
/// exact (bit-identical) answer.
pub struct ParallelKnnEngine {
    config: EngineConfig,
    array: DiskArray,
    trees: Vec<SpatialTree>,
    /// `mirrors[d][j]` is the tree holding the replica copies of disk
    /// `d`'s points that live on disk `j`. Empty maps when the engine was
    /// built without replicas. Mirror trees bypass the page caches: they
    /// are touched only on failover, so caching them would let rare
    /// degraded queries evict the hot primary working set.
    mirrors: Vec<BTreeMap<usize, SpatialTree>>,
    declusterer: Arc<dyn Declusterer>,
    replica_router: Option<Arc<dyn ReplicaRouting>>,
    fault_policy: FaultPolicy,
    page_cache_capacity: Option<usize>,
    next_seq: u64,
    /// Per-disk page caches; empty unless [`EngineBuilder::page_cache`]
    /// was set.
    caches: Vec<Arc<CachingSink>>,
}

impl ParallelKnnEngine {
    /// Starts building an engine for `dim`-dimensional data with the
    /// paper's default configuration. See [`EngineBuilder`].
    pub fn builder(dim: usize) -> EngineBuilder {
        EngineBuilder::new(dim)
    }

    /// Builds an engine over `points` with an explicit declusterer.
    #[deprecated(note = "use ParallelKnnEngine::builder(dim).declusterer(..).build(points)")]
    pub fn build(
        points: &[Point],
        declusterer: Arc<dyn Declusterer>,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::builder(config.dim)
            .config(config)
            .declusterer(declusterer)
            .build(points)
    }

    /// Builds an engine with the paper's **near-optimal declustering**
    /// (folded to `disks` disks) and the configured split strategy.
    #[deprecated(note = "use ParallelKnnEngine::builder(dim).disks(n).build(points)")]
    pub fn build_near_optimal(
        points: &[Point],
        disks: usize,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::builder(config.dim)
            .config(config)
            .disks(disks)
            .build(points)
    }

    /// Installs an LRU page cache of `capacity` pages in front of every
    /// disk.
    #[deprecated(note = "use EngineBuilder::page_cache before building")]
    pub fn with_page_cache(mut self, capacity: usize) -> Self {
        self.install_page_cache(capacity);
        self
    }

    /// The workhorse constructor behind [`EngineBuilder::build`]: bulk-
    /// loads one primary tree per disk and, when a replica router is
    /// supplied, one mirror tree per (source disk, mirror disk) pair.
    pub(crate) fn build_internal(
        points: &[Point],
        declusterer: Arc<dyn Declusterer>,
        replica_router: Option<Arc<dyn ReplicaRouting>>,
        config: EngineConfig,
        fault_policy: FaultPolicy,
        page_cache: Option<usize>,
    ) -> Result<Self, EngineError> {
        if points.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        for p in points {
            if p.dim() != config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        let disks = declusterer.disks();
        let array = DiskArray::new(disks, config.disk_model)
            .map_err(|e| EngineError::Internal(e.to_string()))?;

        // Partition the points over the disks; with replication every
        // point also lands in the mirror partition its router picks.
        let mut partitions: Vec<Vec<(Point, u64)>> = vec![Vec::new(); disks];
        let mut mirror_parts: Vec<BTreeMap<usize, Vec<(Point, u64)>>> =
            vec![BTreeMap::new(); disks];
        for (i, p) in points.iter().enumerate() {
            let disk = declusterer.assign(i as u64, p);
            partitions[disk].push((p.clone(), i as u64));
            if let Some(router) = &replica_router {
                let mirror = router.replica_disk(i as u64, p);
                mirror_parts[disk]
                    .entry(mirror)
                    .or_default()
                    .push((p.clone(), i as u64));
            }
        }

        // One bulk-loaded tree per disk, charging that disk.
        let mut trees = Vec::with_capacity(disks);
        for (i, part) in partitions.into_iter().enumerate() {
            let params = TreeParams::for_dim(config.dim, config.variant)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
            let tree = SpatialTree::bulk_load(params, part)
                .map_err(|e| EngineError::Internal(e.to_string()))?
                .with_disk(Arc::clone(array.disk(i)));
            trees.push(tree);
        }

        // Mirror trees charge the disk that hosts the replica.
        let mut mirrors = Vec::with_capacity(disks);
        for parts in mirror_parts {
            let mut per_host = BTreeMap::new();
            for (host, part) in parts {
                let params = TreeParams::for_dim(config.dim, config.variant)
                    .map_err(|e| EngineError::Internal(e.to_string()))?;
                let tree = SpatialTree::bulk_load(params, part)
                    .map_err(|e| EngineError::Internal(e.to_string()))?
                    .with_disk(Arc::clone(array.disk(host)));
                per_host.insert(host, tree);
            }
            mirrors.push(per_host);
        }

        let mut engine = ParallelKnnEngine {
            config,
            array,
            trees,
            mirrors,
            declusterer,
            replica_router,
            fault_policy,
            page_cache_capacity: None,
            next_seq: points.len() as u64,
            caches: Vec::new(),
        };
        if let Some(capacity) = page_cache {
            engine.install_page_cache(capacity);
        }
        Ok(engine)
    }

    /// Puts an LRU page cache of `capacity` pages in front of every
    /// primary tree. Cached node visits no longer charge the disk;
    /// per-query cache hits are reported in the [`QueryTrace`]. Mirror
    /// trees stay uncached (see the `mirrors` field docs).
    fn install_page_cache(&mut self, capacity: usize) {
        let caches: Vec<Arc<CachingSink>> = (0..self.trees.len())
            .map(|i| {
                let disk_sink: Arc<dyn NodeSink> =
                    Arc::new(DiskSink(Arc::clone(self.array.disk(i))));
                Arc::new(CachingSink::new(disk_sink, capacity))
            })
            .collect();
        self.trees = std::mem::take(&mut self.trees)
            .into_iter()
            .zip(&caches)
            .map(|(t, c)| t.with_sink(Arc::clone(c) as Arc<dyn NodeSink>))
            .collect();
        self.caches = caches;
        self.page_cache_capacity = Some(capacity);
    }

    /// The per-disk page caches (empty for an uncached engine).
    pub fn caches(&self) -> &[Arc<CachingSink>] {
        &self.caches
    }

    pub(crate) fn make_splitter(
        points: &[Point],
        config: &EngineConfig,
    ) -> Result<QuadrantSplitter, EngineError> {
        match config.splits {
            SplitStrategy::Midpoint => QuadrantSplitter::midpoint(config.dim)
                .map_err(|e| EngineError::Internal(e.to_string())),
            SplitStrategy::DataMedian => {
                median_splits(points).map_err(|e| EngineError::Internal(e.to_string()))
            }
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.array.len()
    }

    /// The declusterer in use.
    pub fn declusterer(&self) -> &Arc<dyn Declusterer> {
        &self.declusterer
    }

    /// The fault injector of the underlying disk array: mark disks
    /// failed, slow, or flaky here and the engine's degraded execution
    /// takes over.
    pub fn faults(&self) -> &FaultInjector {
        self.array.faults()
    }

    /// The engine-wide degraded-mode defaults set at build time.
    pub fn fault_policy(&self) -> &FaultPolicy {
        &self.fault_policy
    }

    /// True if the engine keeps replica copies of every bucket.
    pub fn has_replicas(&self) -> bool {
        self.replica_router.is_some()
    }

    /// The disks hosting replica copies of `disk`'s buckets (empty for an
    /// un-replicated engine or a disk with no data).
    pub fn replica_disks_of(&self, disk: usize) -> Vec<usize> {
        self.mirrors
            .get(disk)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total number of indexed points (primaries only; replicas are
    /// copies, not extra points).
    pub fn len(&self) -> usize {
        self.trees.iter().map(SpatialTree::len).sum()
    }

    /// True if no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-disk point counts — the load-balance view (primaries only).
    pub fn load_distribution(&self) -> Vec<usize> {
        self.trees.iter().map(SpatialTree::len).collect()
    }

    /// Inserts a point dynamically (the system "is completely dynamical",
    /// Section 4.3). With replication the mirror copy is inserted too.
    pub fn insert(&mut self, point: Point) -> Result<u64, EngineError> {
        if point.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        let item = self.next_seq;
        self.next_seq += 1;
        let disk = self.declusterer.assign(item, &point);
        if let Some(router) = &self.replica_router {
            let host = router.replica_disk(item, &point);
            let params = TreeParams::for_dim(self.config.dim, self.config.variant)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
            let mirror = self.mirrors[disk].entry(host).or_insert_with(|| {
                SpatialTree::new(params).with_disk(Arc::clone(self.array.disk(host)))
            });
            mirror
                .insert(point.clone(), item)
                .map_err(|e| EngineError::Internal(e.to_string()))?;
        }
        self.trees[disk]
            .insert(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        Ok(item)
    }

    /// Deletes a previously inserted point (and its replica, if any).
    pub fn delete(&mut self, point: &Point, item: u64) -> Result<(), EngineError> {
        let disk = self.declusterer.assign(item, point);
        if let Some(router) = &self.replica_router {
            let host = router.replica_disk(item, point);
            if let Some(mirror) = self.mirrors[disk].get_mut(&host) {
                mirror
                    .delete(point, item)
                    .map_err(|e| EngineError::Internal(e.to_string()))?;
            }
        }
        self.trees[disk]
            .delete(point, item)
            .map_err(|e| EngineError::Internal(e.to_string()))
    }

    /// Answers one k-NN query under `opts` — the single entry point
    /// behind every legacy `knn*` method.
    ///
    /// When no faults are armed and no timeout budget applies, this is
    /// the paper's **Var. 3 parallel search**: one thread per disk, each
    /// running a branch-and-bound (RKV) or best-first (HS) search on its
    /// local tree, all pruning against a single atomically-shared bound.
    /// Otherwise the engine runs **degraded execution**: failed disks are
    /// skipped, flaky reads are retried per [`RetryPolicy`], disks over
    /// the timeout budget are abandoned, and every lost disk's buckets
    /// are served from their replicas — the merged answer is
    /// bit-identical to the healthy one as long as a healthy replica
    /// exists for every lost bucket ([`EngineError::BucketUnavailable`]
    /// otherwise).
    pub fn query(&self, query: &Point, opts: &QueryOptions) -> Result<QueryResult, EngineError> {
        if query.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: query.dim(),
            });
        }
        let (timeout, retry) = self.resolve_policy(opts);
        let (neighbors, trace) = if timeout.is_some() || self.array.faults().any_armed() {
            self.knn_degraded(query, opts.k, timeout, &retry)?
        } else {
            self.knn_healthy(query, opts.k)
        };
        let cost = trace.cost(self.array.model());
        Ok(QueryResult {
            neighbors,
            cost,
            trace: opts.trace.then_some(trace),
        })
    }

    /// Answers a batch of queries on a bounded worker pool
    /// ([`QueryOptions::workers`], defaulting to the host's available
    /// parallelism), in the paper's **inter-query** parallel mode: each
    /// worker pulls the next unanswered query, so `workers` queries are
    /// in flight at any time and every disk serves all of them
    /// concurrently. Results are in query order, each with its own exact
    /// [`QueryTrace`] when tracing is on.
    ///
    /// With faults armed or a timeout budget set, each worker runs the
    /// same degraded execution as [`ParallelKnnEngine::query`].
    pub fn query_batch(
        &self,
        queries: &[Point],
        opts: &QueryOptions,
    ) -> Result<Vec<QueryResult>, EngineError> {
        for q in queries {
            if q.dim() != self.config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: self.config.dim,
                    got: q.dim(),
                });
            }
        }
        let (timeout, retry) = self.resolve_policy(opts);
        let degraded = timeout.is_some() || self.array.faults().any_armed();
        let algorithm = self.config.algorithm;
        let model = *self.array.model();
        let next = AtomicUsize::new(0);
        let workers = opts
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, queries.len().max(1));
        let mut results: Vec<Option<TracedAnswer>> = (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let next = &next;
            let retry = &retry;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let refs: Vec<&SpatialTree> = self.trees.iter().collect();
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                return out;
                            }
                            let answer = if degraded {
                                self.knn_degraded(&queries[i], opts.k, timeout, retry)
                            } else {
                                let start = Instant::now();
                                let (res, stats) =
                                    forest_knn_traced(&refs, &queries[i], opts.k, algorithm);
                                let trace = QueryTrace::from_stats(&stats, start.elapsed(), &model);
                                Ok((res, trace))
                            };
                            out.push((i, answer));
                        }
                    })
                })
                .collect();
            for h in handles {
                for (i, answer) in h.join().expect("batch worker does not panic") {
                    results[i] = Some(answer);
                }
            }
        });
        results
            .into_iter()
            .map(|r| {
                let (neighbors, trace) = r.expect("every query index was claimed by a worker")?;
                let cost = trace.cost(&model);
                Ok(QueryResult {
                    neighbors,
                    cost,
                    trace: opts.trace.then_some(trace),
                })
            })
            .collect()
    }

    /// Runs a k-NN query against the declustered data and returns the `k`
    /// nearest neighbors plus the per-disk page cost of the query.
    /// Shorthand for [`ParallelKnnEngine::query`] without a trace.
    pub fn knn(&self, query: &Point, k: usize) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        let result = self.query(query, &QueryOptions::new(k))?;
        Ok((result.neighbors, result.cost))
    }

    /// Runs [`ParallelKnnEngine::knn`] and returns the full
    /// [`QueryTrace`] — per-disk pages, pruning and cache counters,
    /// measured wall-clock vs modeled service time, and the degraded-mode
    /// record when failure handling engaged.
    pub fn knn_traced(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let result = self.query(query, &QueryOptions::traced(k))?;
        let trace = result.trace.expect("trace was requested");
        Ok((result.neighbors, trace))
    }

    /// Answers a batch of queries on a worker pool sized to the host's
    /// available parallelism. See [`ParallelKnnEngine::query_batch`].
    pub fn knn_batch(
        &self,
        queries: &[Point],
        k: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let results = self.query_batch(queries, &QueryOptions::traced(k))?;
        Ok(results
            .into_iter()
            .map(|r| (r.neighbors, r.trace.expect("trace was requested")))
            .collect())
    }

    /// Answers a batch of queries on a bounded pool of `workers` threads.
    /// See [`ParallelKnnEngine::query_batch`].
    pub fn knn_batch_with(
        &self,
        queries: &[Point],
        k: usize,
        workers: usize,
    ) -> Result<Vec<(Vec<Neighbor>, QueryTrace)>, EngineError> {
        let results = self.query_batch(queries, &QueryOptions::traced(k).with_workers(workers))?;
        Ok(results
            .into_iter()
            .map(|r| (r.neighbors, r.trace.expect("trace was requested")))
            .collect())
    }

    /// The healthy fast path: one scoped thread per disk, shared pruning
    /// bound, exact per-query trace. Identical to the engine's behavior
    /// before degraded execution existed.
    fn knn_healthy(&self, query: &Point, k: usize) -> (Vec<Neighbor>, QueryTrace) {
        let algorithm = self.config.algorithm;
        let start = Instant::now();
        let shared = SharedBound::new();
        // One scoped thread per disk; each returns its local candidates
        // and locally-counted work so the trace is exact per query.
        let locals: Vec<_> = std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = self
                .trees
                .iter()
                .map(|tree| s.spawn(move || tree.knn_traced(query, k, algorithm, Some(shared))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("per-disk search does not panic"))
                .collect()
        });
        let wall = start.elapsed();
        let merged = merge_candidates(locals.iter().map(|(c, _)| c.as_slice()), k);
        let stats: Vec<_> = locals.iter().map(|(_, s)| *s).collect();
        let trace = QueryTrace::from_stats(&stats, wall, self.array.model());
        (merged, trace)
    }

    /// Degraded execution: skip failed disks, retry flaky reads, abandon
    /// disks over the timeout budget, and serve every lost disk's buckets
    /// from its replicas. Disks are searched sequentially (still pruning
    /// against one shared bound) so the retry draws — and therefore the
    /// whole trace — are deterministic for a given injector seed.
    ///
    /// The modeled parallel time charges each disk its fault-scaled
    /// service time plus retry backoff; a timed-out disk charges exactly
    /// the budget (the query stops waiting for it), a failed disk charges
    /// nothing (failure is detected instantly), and replica reads are
    /// charged to the mirror's host disk. Replica detours are modeled as
    /// overlapping the detection wait on other disks.
    fn knn_degraded(
        &self,
        query: &Point,
        k: usize,
        timeout: Option<Duration>,
        retry: &RetryPolicy,
    ) -> Result<(Vec<Neighbor>, QueryTrace), EngineError> {
        let faults = self.array.faults();
        let model = *self.array.model();
        let algorithm = self.config.algorithm;
        let n = self.trees.len();
        let start = Instant::now();
        let shared = SharedBound::new();

        let mut stats = vec![SearchStats::default(); n];
        let mut extra_time = vec![Duration::ZERO; n];
        let mut candidates: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let mut down: Vec<usize> = Vec::new();
        let mut retries_total = 0u64;

        for (i, tree) in self.trees.iter().enumerate() {
            if faults.is_failed(i) {
                down.push(i);
                continue;
            }
            let (cands, s) = tree.knn_traced(query, k, algorithm, Some(&shared));
            stats[i].merge(s);
            let mut alive = true;
            if matches!(faults.fault(i), Some(FaultKind::Flaky { .. })) {
                let (retries, extra, ok) = simulate_flaky_reads(faults, i, s.pages, retry, &model);
                retries_total += retries;
                extra_time[i] += extra;
                alive = ok;
            }
            if alive {
                if let Some(budget) = timeout {
                    let disk_time =
                        faults.model_for(i, &model).service_time(stats[i].pages) + extra_time[i];
                    alive = disk_time <= budget;
                }
            }
            if alive {
                candidates[i] = cands;
            } else {
                // The pages were read (and are charged below) but the
                // answer is not trusted: the disk's buckets fail over.
                down.push(i);
            }
        }

        // Failover: serve every lost disk's buckets from its mirrors.
        let mut failed_over: Vec<usize> = Vec::new();
        let mut replica_pages = 0u64;
        for &d in &down {
            if self.trees[d].is_empty() {
                continue;
            }
            if self.mirrors[d].is_empty() {
                return Err(EngineError::BucketUnavailable { disk: d });
            }
            for (&host, mirror) in &self.mirrors[d] {
                if faults.is_failed(host) {
                    return Err(EngineError::BucketUnavailable { disk: d });
                }
                let (cands, s) = mirror.knn_traced(query, k, algorithm, Some(&shared));
                if matches!(faults.fault(host), Some(FaultKind::Flaky { .. })) {
                    let (retries, extra, ok) =
                        simulate_flaky_reads(faults, host, s.pages, retry, &model);
                    retries_total += retries;
                    extra_time[host] += extra;
                    if !ok {
                        return Err(EngineError::BucketUnavailable { disk: d });
                    }
                }
                replica_pages += s.pages;
                stats[host].merge(s);
                candidates[host].extend(cands);
            }
            failed_over.push(d);
        }

        // The degraded critical path: every disk charges its fault-scaled
        // service time plus retry backoff; timed-out disks charge the
        // budget; hard-failed disks charge nothing.
        let mut modeled_parallel = Duration::ZERO;
        for i in 0..n {
            let mut t = faults.model_for(i, &model).service_time(stats[i].pages) + extra_time[i];
            if down.contains(&i) {
                if faults.is_failed(i) {
                    t = Duration::ZERO;
                } else if let Some(budget) = timeout {
                    t = t.min(budget);
                }
            }
            modeled_parallel = modeled_parallel.max(t);
        }

        let wall = start.elapsed();
        let merged = merge_candidates(candidates.iter().map(Vec::as_slice), k);
        let mut trace = QueryTrace::from_stats(&stats, wall, &model);
        let healthy_parallel = trace.modeled_parallel;
        trace.modeled_parallel = modeled_parallel;
        trace.degraded = Some(DegradedInfo {
            failed_over,
            retries: retries_total,
            replica_pages,
            added_latency: modeled_parallel.saturating_sub(healthy_parallel),
        });
        Ok((merged, trace))
    }

    fn resolve_policy(&self, opts: &QueryOptions) -> (Option<Duration>, RetryPolicy) {
        (
            opts.timeout.or(self.fault_policy.timeout),
            opts.retry.unwrap_or(self.fault_policy.retry),
        )
    }

    /// Runs a k-NN query with **independent** per-disk searches: every
    /// disk finds its local top-`k` to completion (no shared bound) and
    /// the candidates are merged. This models a share-nothing cluster
    /// without inter-node pruning traffic; it reads more pages than
    /// [`ParallelKnnEngine::knn`] and is kept for the ablation benches.
    pub fn knn_independent(
        &self,
        query: &Point,
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        if query.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: query.dim(),
            });
        }
        let scope = self.array.begin_query();
        let algorithm = self.config.algorithm;

        let mut locals: Vec<Vec<Neighbor>> = Vec::with_capacity(self.trees.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .trees
                .iter()
                .map(|tree| s.spawn(move || tree.knn(query, k, algorithm)))
                .collect();
            for h in handles {
                locals.push(h.join().expect("local knn does not panic"));
            }
        });

        let merged = merge_candidates(locals.iter().map(Vec::as_slice), k);
        Ok((merged, scope.finish(&self.array)))
    }

    /// Reorganizes the engine for the current data: recomputes the
    /// declustering (median splits from the stored points) and rebuilds
    /// the per-disk trees, preserving the disk count, replication, fault
    /// policy, and page-cache capacity. The rebuilt engine starts with a
    /// fresh, healthy disk array — injected faults do not carry over.
    ///
    /// This is the paper's reorganization step for data whose distribution
    /// drifted after many insertions.
    pub fn reorganize(self) -> Result<Self, EngineError> {
        let mut points: Vec<(u64, Point)> = Vec::with_capacity(self.len());
        for tree in &self.trees {
            for node in tree.iter_nodes() {
                if let parsim_index::node::Node::Leaf { entries, .. } = node {
                    for (row, item) in entries.iter() {
                        points.push((item, Point::from_vec(row.to_vec())));
                    }
                }
            }
        }
        points.sort_by_key(|(item, _)| *item);
        let pts: Vec<Point> = points.into_iter().map(|(_, p)| p).collect();
        let mut builder = Self::builder(self.config.dim)
            .config(self.config)
            .disks(self.disks())
            .replicas(usize::from(self.replica_router.is_some()))
            .fault_policy(self.fault_policy);
        if let Some(capacity) = self.page_cache_capacity {
            builder = builder.page_cache(capacity);
        }
        builder.build(&pts)
    }

    /// Immutable access to the disk array (for experiment accounting).
    pub fn array(&self) -> &DiskArray {
        &self.array
    }

    /// Immutable access to the per-disk trees (for statistics).
    pub fn trees(&self) -> &[SpatialTree] {
        &self.trees
    }
}

/// Simulates the error stream of `pages` reads against a flaky disk:
/// every erroring read is retried up to the policy's limit, each retry
/// charging its backoff plus one page's service time. Returns the retry
/// count, the extra modeled time, and whether every page eventually read
/// cleanly (`false` means the disk is abandoned as down).
fn simulate_flaky_reads(
    faults: &FaultInjector,
    disk: usize,
    pages: u64,
    retry: &RetryPolicy,
    model: &DiskModel,
) -> (u64, Duration, bool) {
    let per_page = model.service_time(1);
    let mut retries = 0u64;
    let mut extra = Duration::ZERO;
    for _ in 0..pages {
        if !faults.draw_read_error(disk) {
            continue;
        }
        let mut recovered = false;
        for attempt in 0..retry.max_retries {
            retries += 1;
            extra += retry.backoff_before(attempt) + per_page;
            if !faults.draw_read_error(disk) {
                recovered = true;
                break;
            }
        }
        if !recovered {
            return (retries, extra, false);
        }
    }
    (retries, extra, true)
}

/// Merges per-disk candidate lists into the global top `k` (ties broken by
/// item id, matching [`parsim_index::knn::brute_force_knn`]).
fn merge_candidates<'a>(locals: impl Iterator<Item = &'a [Neighbor]>, k: usize) -> Vec<Neighbor> {
    let mut merged: Vec<Neighbor> = locals.flatten().cloned().collect();
    merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
    merged.truncate(k);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_index::knn::brute_force_knn;

    fn engine(disks: usize, n: usize, dim: usize) -> (ParallelKnnEngine, Vec<Point>) {
        let pts = UniformGenerator::new(dim).generate(n, 7);
        let e = ParallelKnnEngine::builder(dim)
            .disks(disks)
            .build(&pts)
            .unwrap();
        (e, pts)
    }

    #[test]
    fn parallel_knn_is_exact() {
        let (e, pts) = engine(8, 3000, 8);
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        for q in UniformGenerator::new(8).generate(10, 100) {
            let (got, cost) = e.knn(&q, 10).unwrap();
            let want = brute_force_knn(&data, &q, 10);
            assert_eq!(got.len(), 10);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-12);
            }
            assert!(cost.total_reads > 0);
            assert_eq!(cost.per_disk_reads.len(), 8);
        }
    }

    #[test]
    fn load_is_roughly_balanced_on_uniform_data() {
        let (e, _) = engine(8, 8000, 8);
        let loads = e.load_distribution();
        assert_eq!(loads.iter().sum::<usize>(), 8000);
        let max = *loads.iter().max().unwrap() as f64;
        let avg = 8000.0 / 8.0;
        assert!(max / avg < 1.7, "loads: {loads:?}");
    }

    #[test]
    fn dynamic_insert_and_delete() {
        let (mut e, pts) = engine(4, 500, 5);
        let extra = UniformGenerator::new(5).generate(100, 42);
        let mut ids = Vec::new();
        for p in &extra {
            ids.push(e.insert(p.clone()).unwrap());
        }
        assert_eq!(e.len(), 600);
        for (p, id) in extra.iter().zip(&ids) {
            e.delete(p, *id).unwrap();
        }
        assert_eq!(e.len(), 500);
        // Original points still answer queries.
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            ParallelKnnEngine::builder(4).disks(4).build(&[]),
            Err(EngineError::EmptyDataSet)
        ));
        let (e, _) = engine(4, 100, 5);
        let wrong = Point::new(vec![0.5; 3]).unwrap();
        assert!(matches!(
            e.knn(&wrong, 1),
            Err(EngineError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn parallel_cost_beats_sequential_cost() {
        let (e, _) = engine(8, 5000, 10);
        let queries = UniformGenerator::new(10).generate(20, 11);
        let mut par = 0u64;
        let mut tot = 0u64;
        for q in &queries {
            let (_, cost) = e.knn(q, 10).unwrap();
            par += cost.max_reads;
            tot += cost.total_reads;
        }
        // With 8 disks the busiest disk must read far less than everything.
        assert!(par * 2 < tot, "max {par} vs total {tot}");
    }

    #[test]
    fn reorganize_preserves_contents() {
        let (e, pts) = engine(4, 800, 6);
        let before = e.len();
        let e = e.reorganize().unwrap();
        assert_eq!(e.len(), before);
        let (res, _) = e.knn(&pts[5], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn reorganize_preserves_replication() {
        let pts = UniformGenerator::new(5).generate(600, 3);
        let e = ParallelKnnEngine::builder(5)
            .disks(8)
            .replicas(1)
            .build(&pts)
            .unwrap();
        assert!(e.has_replicas());
        let e = e.reorganize().unwrap();
        assert!(e.has_replicas());
        assert_eq!(e.len(), 600);
        e.faults().fail(0);
        let (res, _) = e.knn(&pts[0], 1).unwrap();
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn deprecated_constructors_still_work() {
        #![allow(deprecated)]
        let pts = UniformGenerator::new(4).generate(300, 9);
        let config = EngineConfig::paper_defaults(4);
        let e = ParallelKnnEngine::build_near_optimal(&pts, 4, config).unwrap();
        let via_builder = ParallelKnnEngine::builder(4).disks(4).build(&pts).unwrap();
        assert_eq!(e.load_distribution(), via_builder.load_distribution());
        let q = Point::new(vec![0.4; 4]).unwrap();
        let (a, _) = e.knn(&q, 5).unwrap();
        let (b, _) = via_builder.knn(&q, 5).unwrap();
        assert_eq!(a, b);
    }
}
