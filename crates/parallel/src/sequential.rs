//! The sequential (single-disk) baseline engine.

use std::sync::Arc;

use parsim_geometry::Point;
use parsim_index::knn::Neighbor;
use parsim_index::{SpatialTree, TreeParams};
use parsim_storage::{DiskArray, QueryCost};

use crate::config::EngineConfig;
use crate::EngineError;

/// One X-tree on one disk — the baseline against which the paper computes
/// speed-ups ("we compared the search time of the parallel X-tree with a
/// sequential X-tree using the original implementation of \[BKK 96\]").
pub struct SequentialEngine {
    config: EngineConfig,
    array: DiskArray,
    tree: SpatialTree,
}

impl SequentialEngine {
    /// Builds the single-disk engine over `points` (bulk-loaded).
    pub fn build(points: &[Point], config: EngineConfig) -> Result<Self, EngineError> {
        if points.is_empty() {
            return Err(EngineError::EmptyDataSet);
        }
        for p in points {
            if p.dim() != config.dim {
                return Err(EngineError::DimensionMismatch {
                    expected: config.dim,
                    got: p.dim(),
                });
            }
        }
        let array = DiskArray::new(1, config.disk_model)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        let params = TreeParams::for_dim(config.dim, config.variant)
            .map_err(|e| EngineError::Internal(e.to_string()))?;
        let items: Vec<(Point, u64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let tree = SpatialTree::bulk_load(params, items)
            .map_err(|e| EngineError::Internal(e.to_string()))?
            .with_disk(Arc::clone(array.disk(0)));
        Ok(SequentialEngine {
            config,
            array,
            tree,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True if empty (never for a successfully built engine).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The underlying tree.
    pub fn tree(&self) -> &SpatialTree {
        &self.tree
    }

    /// Runs a k-NN query, returning the neighbors and the page cost.
    pub fn knn(&self, query: &Point, k: usize) -> Result<(Vec<Neighbor>, QueryCost), EngineError> {
        if query.dim() != self.config.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.config.dim,
                got: query.dim(),
            });
        }
        let scope = self.array.begin_query();
        let result = self.tree.knn(query, k, self.config.algorithm);
        Ok((result, scope.finish(&self.array)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_datagen::{DataGenerator, UniformGenerator};
    use parsim_index::knn::brute_force_knn;

    #[test]
    fn sequential_knn_is_exact_and_costed() {
        let pts = UniformGenerator::new(6).generate(2000, 1);
        let e = SequentialEngine::build(&pts, EngineConfig::paper_defaults(6)).unwrap();
        let data: Vec<(Point, u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let q = UniformGenerator::new(6).generate(1, 50).pop().unwrap();
        let (got, cost) = e.knn(&q, 10).unwrap();
        let want = brute_force_knn(&data, &q, 10);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist - w.dist).abs() < 1e-12);
        }
        assert_eq!(cost.per_disk_reads.len(), 1);
        assert_eq!(cost.total_reads, cost.max_reads);
        assert!(cost.total_reads > 0);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            SequentialEngine::build(&[], EngineConfig::paper_defaults(4)),
            Err(EngineError::EmptyDataSet)
        ));
        let pts = UniformGenerator::new(4).generate(10, 2);
        let e = SequentialEngine::build(&pts, EngineConfig::paper_defaults(4)).unwrap();
        assert_eq!(e.len(), 10);
        let wrong = Point::new(vec![0.5; 5]).unwrap();
        assert!(e.knn(&wrong, 1).is_err());
    }
}
