//! Engine configuration.

use parsim_index::{KnnAlgorithm, ScanOrder, ScanTier, TreeVariant};
use parsim_storage::DiskModel;

/// How the quadrant split values are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Split every dimension at 0.5 (Section 3.1; correct for uniform
    /// data).
    Midpoint,
    /// Split every dimension at the 0.5-quantile of the data (Section 4.3;
    /// required for skewed real data).
    #[default]
    DataMedian,
}

/// Configuration of a parallel (or sequential) engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Dimensionality of the feature vectors.
    pub dim: usize,
    /// Index variant of the per-disk trees (default: X-tree, as in the
    /// paper).
    pub variant: TreeVariant,
    /// k-NN algorithm (default: RKV, as in the paper).
    pub algorithm: KnnAlgorithm,
    /// Split-value strategy for bucket-based declustering.
    pub splits: SplitStrategy,
    /// Precision tier of the leaf scans (default:
    /// [`ScanTier::F64`] — pure f64, the paper's arithmetic). The cheap
    /// tiers return bit-identical answers; individual queries can override
    /// via [`crate::QueryOptions::with_tier`].
    pub tier: ScanTier,
    /// Coordinate layout of leaf scans (default: [`ScanOrder::Natural`]).
    /// [`ScanOrder::Energy`] stores leaf rows with coordinates permuted by
    /// descending per-leaf variance so bounded scans abandon earlier; the
    /// layout is recomputed on every bulk load and
    /// [`crate::ParallelKnnEngine::reorganize`] rebuild. Answers stay
    /// bit-identical (see `DESIGN.md`, "Scan order"); individual queries
    /// can override the *scan-side* knob via
    /// [`crate::QueryOptions::with_order`].
    pub order: ScanOrder,
    /// Disk service-time model.
    pub disk_model: DiskModel,
}

impl EngineConfig {
    /// The configuration used by the paper's experiments: X-tree, RKV,
    /// data-median splits, 1997-era disks.
    pub fn paper_defaults(dim: usize) -> Self {
        EngineConfig {
            dim,
            variant: TreeVariant::xtree_default(),
            algorithm: KnnAlgorithm::Rkv,
            splits: SplitStrategy::DataMedian,
            tier: ScanTier::F64,
            order: ScanOrder::Natural,
            disk_model: DiskModel::hp_workstation_1997(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper() {
        let c = EngineConfig::paper_defaults(16);
        assert_eq!(c.dim, 16);
        assert_eq!(c.algorithm, KnnAlgorithm::Rkv);
        assert_eq!(c.splits, SplitStrategy::DataMedian);
        assert_eq!(c.tier, ScanTier::F64);
        assert_eq!(c.order, ScanOrder::Natural);
        assert!(matches!(c.variant, TreeVariant::XTree { .. }));
    }
}
