//! Streaming ingest: the write-ahead delta buffer behind
//! [`ParallelKnnEngine::insert`](crate::ParallelKnnEngine::insert) /
//! [`remove`](crate::ParallelKnnEngine::remove).
//!
//! A bulk-loaded X-tree forest is the wrong structure to mutate under
//! live traffic, so writes never touch the trees directly. They land in
//! a bounded in-memory **delta buffer** — live points waiting to be
//! bulk-loaded, plus tombstones masking removed main-index items — and
//! every k-NN query merges the buffer into its result: the main search
//! runs with `k` inflated by the tombstone count, tombstoned items are
//! filtered out, and the delta's own top-`k` (computed by the same
//! brute-force scan the bit-identity suites use as ground truth) is
//! merged in with the engine's canonical `(dist, item)` tie-break. The
//! answer is therefore always **exact over `index ∪ delta`**, with the
//! query linearized at the instant its `QueryOverlay` was snapshotted.
//!
//! The buffer drains through the shadow rebuild in
//! [`ParallelKnnEngine::reorganize`](crate::ParallelKnnEngine::reorganize):
//! while the replacement forest bulk-loads, the buffer keeps absorbing
//! writes and journals them into its [`OpLog`]; at swap time exactly that
//! tail is replayed into the fresh buffer. See `DESIGN.md` ("Streaming
//! ingest & online reorganize").

use std::collections::BTreeSet;

use parsim_geometry::Point;
use parsim_index::knn::{brute_force_knn, Neighbor};
use parsim_storage::OpLog;

/// Write-path configuration, set at build time through
/// [`EngineBuilder::ingest`](crate::EngineBuilder::ingest). An engine
/// built without one is read-only: `insert`/`remove` return
/// [`EngineError::ReadOnly`](crate::EngineError::ReadOnly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestConfig {
    /// Upper bound on the delta buffer size (live points + tombstones).
    /// A full buffer sheds further writes with
    /// [`EngineError::DeltaFull`](crate::EngineError::DeltaFull) — the
    /// write-side analogue of the serve layer's
    /// [`Overloaded`](crate::EngineError::Overloaded) backpressure —
    /// until a reorganize drains it. The bound also caps the per-query
    /// overlay cost: every query brute-force scans at most this many
    /// delta points.
    pub delta_capacity: usize,
    /// Delta size at which a rebuild is triggered automatically after a
    /// write; `None` (the default) leaves reorganization to explicit
    /// [`flush`](crate::ParallelKnnEngine::flush) /
    /// [`reorganize`](crate::ParallelKnnEngine::reorganize) calls.
    pub rebuild_threshold: Option<usize>,
    /// Projected load imbalance (`max/avg` over per-disk point counts,
    /// counting buffered inserts toward the disks the current
    /// declusterer would give them) past which a write triggers a
    /// rebuild — the same skew statistic the declustering refinement
    /// tracks per level. `None` disables the skew trigger.
    pub imbalance_threshold: Option<f64>,
    /// Run triggered rebuilds on a background thread (the default); set
    /// false to rebuild synchronously on the triggering write call.
    pub background: bool,
}

impl IngestConfig {
    /// A write path buffering up to `delta_capacity` operations, with
    /// both automatic-rebuild triggers off.
    pub fn new(delta_capacity: usize) -> Self {
        IngestConfig {
            delta_capacity: delta_capacity.max(1),
            rebuild_threshold: None,
            imbalance_threshold: None,
            background: true,
        }
    }

    /// Triggers an automatic rebuild once the delta holds `threshold`
    /// entries.
    pub fn with_rebuild_threshold(mut self, threshold: usize) -> Self {
        self.rebuild_threshold = Some(threshold);
        self
    }

    /// Triggers an automatic rebuild once the projected per-disk load
    /// imbalance (`max/avg`) exceeds `threshold`.
    pub fn with_imbalance_threshold(mut self, threshold: f64) -> Self {
        self.imbalance_threshold = Some(threshold);
        self
    }

    /// Runs triggered rebuilds synchronously on the writing thread
    /// instead of a background thread.
    pub fn foreground(mut self) -> Self {
        self.background = false;
        self
    }
}

impl Default for IngestConfig {
    /// 4096-entry buffer, no automatic triggers, background rebuilds.
    fn default() -> Self {
        IngestConfig::new(4096)
    }
}

/// One journaled write, replayed after a shadow-rebuild swap.
#[derive(Debug, Clone)]
pub(crate) enum DeltaOp {
    /// A point inserted under an already-allocated item id.
    Insert(Point, u64),
    /// A removal by item id.
    Remove(u64),
}

/// The delta buffer: live inserted points, tombstones over the main
/// index, per-disk projections for the skew trigger, and the rebuild
/// op log. Always owned by the engine's delta mutex.
pub(crate) struct DeltaState {
    /// Points inserted since the last rebuild, in insertion order.
    live: Vec<(Point, u64)>,
    /// Item ids removed from the main index but still present in its
    /// trees; masked out of every answer until a rebuild purges them.
    tombstones: BTreeSet<u64>,
    /// How many live points the current declusterer would place on each
    /// disk — the delta's contribution to the projected imbalance.
    per_disk: Vec<usize>,
    /// Journal of writes applied while a shadow rebuild is in flight.
    log: OpLog<DeltaOp>,
}

impl DeltaState {
    pub(crate) fn new(disks: usize) -> Self {
        DeltaState {
            live: Vec::new(),
            tombstones: BTreeSet::new(),
            per_disk: vec![0; disks],
            log: OpLog::new(),
        }
    }

    /// Live points + tombstones — the size the capacity bound applies to.
    pub(crate) fn size(&self) -> usize {
        self.live.len() + self.tombstones.len()
    }

    pub(crate) fn live_len(&self) -> usize {
        self.live.len()
    }

    pub(crate) fn tombstone_len(&self) -> usize {
        self.tombstones.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live.is_empty() && self.tombstones.is_empty()
    }

    pub(crate) fn per_disk(&self) -> &[usize] {
        &self.per_disk
    }

    /// True if `item` is buffered as a live (not yet bulk-loaded) point.
    pub(crate) fn contains_live(&self, item: u64) -> bool {
        self.live.iter().any(|&(_, id)| id == item)
    }

    /// Buffers an insert under `item`, projected onto `disk`, and
    /// journals it when a rebuild capture is open.
    pub(crate) fn apply_insert(&mut self, point: Point, item: u64, disk: usize) {
        self.log.record(DeltaOp::Insert(point.clone(), item));
        self.per_disk[disk] += 1;
        self.live.push((point, item));
    }

    /// Buffers a removal of `item`: a buffered live point is dropped on
    /// the spot (its disk projection recomputed through `disk_of`),
    /// anything else becomes a tombstone over the main index.
    /// Idempotent. Journals the op when a rebuild capture is open.
    pub(crate) fn apply_remove(&mut self, item: u64, disk_of: &dyn Fn(u64, &Point) -> usize) {
        self.log.record(DeltaOp::Remove(item));
        if let Some(pos) = self.live.iter().position(|&(_, id)| id == item) {
            let (point, _) = self.live.swap_remove(pos);
            self.per_disk[disk_of(item, &point)] -= 1;
        } else {
            self.tombstones.insert(item);
        }
    }

    /// Snapshot of the query-visible delta for one k-NN query, or `None`
    /// when the buffer is empty (the zero-overhead read-only fast path).
    pub(crate) fn overlay(&self, query: &Point, k: usize) -> Option<QueryOverlay> {
        if self.is_empty() {
            return None;
        }
        Some(QueryOverlay {
            delta_hits: brute_force_knn(&self.live, query, k),
            tombstones: self.tombstones.iter().copied().collect(),
            k,
        })
    }

    /// Starts a shadow rebuild: returns the (cloned) snapshot to be
    /// bulk-loaded alongside the main index and opens the op-log capture
    /// window. The buffer itself stays fully live — writes keep applying
    /// normally *and* are journaled, so an aborted rebuild needs no
    /// recovery beyond closing the window.
    pub(crate) fn begin_rebuild(&mut self) -> (Vec<(Point, u64)>, BTreeSet<u64>) {
        self.log.begin_capture();
        (self.live.clone(), self.tombstones.clone())
    }

    /// Closes the capture window and returns the tail of writes that
    /// arrived after [`DeltaState::begin_rebuild`], in application order.
    pub(crate) fn end_rebuild(&mut self) -> Vec<DeltaOp> {
        self.log.end_capture()
    }

    /// True while a rebuild's journal-capture window is open. Used by
    /// the swap-race regression test to land a remove inside the window.
    #[cfg(test)]
    pub(crate) fn capturing(&self) -> bool {
        self.log.is_capturing()
    }
}

/// The delta view a query merges into its main-index answer, snapshotted
/// at submission under the delta lock — the query's linearization point.
pub(crate) struct QueryOverlay {
    /// The delta buffer's own top-`k` for this query.
    delta_hits: Vec<Neighbor>,
    /// Sorted tombstoned item ids, filtered out of the main answer.
    tombstones: Vec<u64>,
    /// The k the caller asked for.
    k: usize,
}

impl QueryOverlay {
    /// How far the main-index search must inflate its `k`: the top-`k`
    /// of `main \ tombstones` is always contained in the top-`(k + t)`
    /// of `main` when `t` items are masked, so searching `k + t` and
    /// filtering yields the exact masked answer.
    pub(crate) fn extra_k(&self) -> usize {
        self.tombstones.len()
    }

    /// Merges the main-index candidates with the delta snapshot:
    /// tombstoned items drop out, delta hits merge in, and the result is
    /// the exact top-`k` over `index ∪ delta` under the engine's
    /// canonical `(dist, item)` order.
    pub(crate) fn apply(&self, main: Vec<Neighbor>) -> Vec<Neighbor> {
        let mut merged: Vec<Neighbor> = main
            .into_iter()
            .filter(|n| self.tombstones.binary_search(&n.item).is_err())
            .chain(self.delta_hits.iter().cloned())
            .collect();
        merged.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.item.cmp(&b.item)));
        merged.truncate(self.k);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f64]) -> Point {
        Point::new(coords.to_vec()).unwrap()
    }

    #[test]
    fn overlay_merges_filters_and_truncates() {
        let mut delta = DeltaState::new(2);
        delta.apply_insert(p(&[0.1, 0.1]), 10, 0);
        delta.apply_insert(p(&[0.9, 0.9]), 11, 1);
        delta.apply_remove(5, &|_, _| 0); // main-index item -> tombstone
        let q = p(&[0.0, 0.0]);
        let overlay = delta.overlay(&q, 2).unwrap();
        assert_eq!(overlay.extra_k(), 1);
        let main = vec![
            Neighbor {
                item: 5,
                point: p(&[0.0, 0.05]),
                dist: 0.05,
            },
            Neighbor {
                item: 3,
                point: p(&[0.2, 0.2]),
                dist: p(&[0.2, 0.2]).dist(&q),
            },
            Neighbor {
                item: 7,
                point: p(&[0.5, 0.5]),
                dist: p(&[0.5, 0.5]).dist(&q),
            },
        ];
        let merged = overlay.apply(main);
        // Tombstoned 5 is gone; delta point 10 beats main point 3.
        assert_eq!(
            merged.iter().map(|n| n.item).collect::<Vec<_>>(),
            vec![10, 3]
        );
    }

    #[test]
    fn remove_of_a_live_point_never_tombstones() {
        let mut delta = DeltaState::new(1);
        delta.apply_insert(p(&[0.5]), 42, 0);
        assert!(delta.contains_live(42));
        delta.apply_remove(42, &|_, _| 0);
        assert!(delta.is_empty());
        assert_eq!(delta.per_disk(), &[0]);
        // Idempotent second removal tombstones (the item might be a
        // main-index id the caller knows better than we do).
        delta.apply_remove(42, &|_, _| 0);
        delta.apply_remove(42, &|_, _| 0);
        assert_eq!(delta.tombstone_len(), 1);
    }

    #[test]
    fn rebuild_capture_journals_exactly_the_tail() {
        let mut delta = DeltaState::new(1);
        delta.apply_insert(p(&[0.1]), 0, 0);
        let (live, tombs) = delta.begin_rebuild();
        assert_eq!(live.len(), 1);
        assert!(tombs.is_empty());
        delta.apply_insert(p(&[0.2]), 1, 0);
        delta.apply_remove(7, &|_, _| 0);
        let tail = delta.end_rebuild();
        assert_eq!(tail.len(), 2);
        assert!(matches!(tail[0], DeltaOp::Insert(_, 1)));
        assert!(matches!(tail[1], DeltaOp::Remove(7)));
        // The buffer itself tracked everything as well.
        assert_eq!(delta.live_len(), 2);
        assert_eq!(delta.tombstone_len(), 1);
    }
}
