//! The serve layer: admission control, deadlines, and bounded per-disk
//! queues for the open-loop front door of the pooled engine.
//!
//! The worker pool of [`crate::pool`] *executes* queries; this module
//! decides **which** submissions the pool accepts and in what order the
//! accepted ones run. Enabled with
//! [`EngineBuilder::admission`](crate::EngineBuilder::admission) (which
//! implies [`ExecutionMode::Pooled`](crate::ExecutionMode::Pooled)), it
//! replaces the pool's unbounded FIFO channels with bounded per-disk
//! priority queues and adds three behaviors:
//!
//! * **Backpressure.** Each disk's queue holds at most
//!   [`AdmissionConfig::queue_capacity`] waiting entries. A submission
//!   whose first disk is full is rejected immediately with the typed
//!   [`EngineError::Overloaded`](crate::EngineError::Overloaded) — the
//!   open-loop contract: the caller
//!   learns *now* that the engine is saturated instead of the query
//!   silently joining an ever-growing queue.
//! * **Deadlines.** A query may carry a *modeled* service-time budget
//!   ([`QueryOptions::with_deadline`](crate::QueryOptions::with_deadline),
//!   default [`AdmissionConfig::deadline`]). At every pipeline hop the
//!   worker compares the modeled time the query has already consumed
//!   against the budget and **sheds** doomed work with
//!   [`EngineError::DeadlineExceeded`](crate::EngineError::DeadlineExceeded)
//!   rather than finishing an answer
//!   nobody is waiting for. Budgets are modeled (host-independent), so
//!   shedding is reproducible; queues order entries smallest-budget-first
//!   (EDF on the modeled clock) with FIFO submission order as tie-break.
//! * **Coalescing.** With [`AdmissionConfig::coalescing`], queries
//!   submitted as one *wave*
//!   ([`ParallelKnnEngine::submit_wave`](crate::ParallelKnnEngine::submit_wave))
//!   share physical page reads: the first query of the wave to touch a
//!   page charges the disk, every other one rides that read (its trace
//!   records a `coalesced` visit instead). Answers and logical traces
//!   (pages, distance evaluations) stay bit-identical to uncoalesced
//!   execution — each query still runs its own full search; only the
//!   physical disk charge is shared.
//!
//! Every decision point is observable through the engine's
//! [`parsim-obs`](parsim_obs) registry: `parsim_worker_queue_depth`,
//! `parsim_queries_shed_total{reason}`, `parsim_coalesced_reads_total`,
//! and the `parsim_deadline_overshoot_micros` histogram.
//!
//! # Submit → backpressure → shed handling
//!
//! ```
//! use parsim_datagen::{DataGenerator, UniformGenerator};
//! use parsim_parallel::{AdmissionConfig, EngineError, ParallelKnnEngine, QueryOptions};
//!
//! let points = UniformGenerator::new(6).generate(2000, 1);
//! let engine = ParallelKnnEngine::builder(6)
//!     .disks(8)
//!     .admission(AdmissionConfig::new(4)) // at most 4 waiting per disk
//!     .build(&points)
//!     .unwrap();
//!
//! let queries = UniformGenerator::new(6).generate(64, 2);
//! let opts = QueryOptions::new(10);
//! let mut pending = Vec::new();
//! let mut shed = 0usize;
//! for q in &queries {
//!     match engine.submit(q, &opts) {
//!         Ok(handle) => pending.push(handle),
//!         // The queue was full: shed the query now and let the caller
//!         // retry, degrade, or drop — the open-loop contract.
//!         Err(EngineError::Overloaded { .. }) => shed += 1,
//!         Err(other) => panic!("unexpected error: {other}"),
//!     }
//! }
//! let answered = pending
//!     .into_iter()
//!     .map(|p| p.wait())
//!     .collect::<Result<Vec<_>, _>>()
//!     .unwrap();
//! // Every submission was either answered or typed-shed, never lost.
//! assert_eq!(answered.len() + shed, queries.len());
//! ```
//!
//! # Write-side backpressure
//!
//! The same open-loop contract covers writes. An engine built with
//! [`EngineBuilder::ingest`](crate::EngineBuilder::ingest) buffers
//! [`insert`](crate::ParallelKnnEngine::insert) /
//! [`remove`](crate::ParallelKnnEngine::remove) in a bounded delta
//! overlay; when the buffer is at
//! [`IngestConfig::delta_capacity`](crate::IngestConfig::delta_capacity),
//! further writes are shed immediately with the typed
//! [`EngineError::DeltaFull`](crate::EngineError::DeltaFull) — the
//! write-side analogue of `Overloaded`. The caller decides whether to
//! retry after draining the buffer
//! ([`flush`](crate::ParallelKnnEngine::flush) /
//! [`reorganize`](crate::ParallelKnnEngine::reorganize)) or to drop the
//! write; nothing is applied partially:
//!
//! ```
//! use parsim_datagen::{DataGenerator, UniformGenerator};
//! use parsim_parallel::{EngineError, IngestConfig, ParallelKnnEngine};
//!
//! let points = UniformGenerator::new(6).generate(500, 1);
//! let engine = ParallelKnnEngine::builder(6)
//!     .disks(4)
//!     .ingest(IngestConfig::new(2)) // at most 2 buffered writes
//!     .build(&points)
//!     .unwrap();
//!
//! let stream = UniformGenerator::new(6).generate(8, 2);
//! let mut accepted = 0usize;
//! let mut shed = 0usize;
//! for p in &stream {
//!     match engine.insert(p.clone()) {
//!         Ok(_) => accepted += 1,
//!         // The delta buffer is full: the write was not applied, and
//!         // the caller learns so *now* with the capacity attached.
//!         Err(EngineError::DeltaFull { capacity }) => {
//!             assert_eq!(capacity, 2);
//!             shed += 1;
//!         }
//!         Err(other) => panic!("unexpected error: {other}"),
//!     }
//! }
//! assert_eq!((accepted, shed), (2, 6));
//!
//! // Draining the buffer (here: a full reorganize) reopens the engine.
//! engine.flush().unwrap();
//! assert!(engine.insert(stream[0].clone()).is_ok());
//! ```

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::pool::QueryTask;

/// Admission-control policy of the serve layer. Passing one to
/// [`EngineBuilder::admission`](crate::EngineBuilder::admission) turns the
/// pooled engine into an open-loop server; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum entries waiting in each disk's queue. A submission whose
    /// first disk is at capacity is rejected with
    /// [`EngineError::Overloaded`](crate::EngineError::Overloaded).
    /// Pipeline hops of already-admitted queries are exempt (a hop can
    /// never deadlock the pipeline), so the bound applies exactly where
    /// load enters the system.
    pub queue_capacity: usize,
    /// Default modeled service-time budget per query; `None` disables
    /// deadlines unless a query sets its own
    /// ([`QueryOptions::deadline`](crate::QueryOptions::deadline)
    /// overrides this in either direction).
    pub deadline: Option<Duration>,
    /// Share physical page reads between the queries of one submission
    /// wave (see [`ParallelKnnEngine::submit_wave`](crate::ParallelKnnEngine::submit_wave)).
    pub coalescing: bool,
}

impl AdmissionConfig {
    /// Admission with a per-disk queue bound, no default deadline, and
    /// coalescing off.
    pub fn new(queue_capacity: usize) -> Self {
        AdmissionConfig {
            queue_capacity,
            deadline: None,
            coalescing: false,
        }
    }

    /// Admission that never rejects (unbounded queues) — useful to get
    /// deadlines or coalescing without backpressure.
    pub fn unbounded() -> Self {
        AdmissionConfig::new(usize::MAX)
    }

    /// Sets the default modeled deadline budget per query.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Turns cross-query page coalescing on or off.
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }
}

/// A queued entry: the task plus its scheduling key.
struct Rank {
    /// Modeled deadline budget in µs (`u64::MAX` when the query carries
    /// none) — the EDF key on the modeled clock.
    budget_micros: u64,
    /// Admission sequence number: global submission order, reused by
    /// every later hop of the same query so pipeline progress outranks
    /// newly admitted work of equal urgency.
    seq: u64,
    task: Box<QueryTask>,
}

impl Rank {
    fn key(&self) -> (u64, u64) {
        (self.budget_micros, self.seq)
    }
}

impl PartialEq for Rank {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    // Reversed: BinaryHeap is a max-heap, we pop the smallest key —
    // tightest budget first, then first-submitted first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// The bounded priority queue feeding one disk's pool worker.
///
/// Without an [`AdmissionConfig`] the pool uses capacity `usize::MAX` and
/// every entry carries `budget_micros == u64::MAX`, which makes the queue
/// order exactly the FIFO submission order the former unbounded channels
/// had — the serve layer is behavior-neutral until it is asked for.
pub(crate) struct DiskQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    heap: BinaryHeap<Rank>,
    shutdown: bool,
}

impl DiskQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        DiskQueue {
            capacity,
            state: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits a new submission, or rejects it with the current depth when
    /// the queue is at capacity. The rejected task is dropped (its
    /// completion is never filled; the engine surfaces the typed error to
    /// the submitter instead).
    pub(crate) fn push_submit(
        &self,
        budget_micros: u64,
        seq: u64,
        task: Box<QueryTask>,
    ) -> Result<(), usize> {
        let mut s = self.state.lock().expect("queue lock is never poisoned");
        if s.heap.len() >= self.capacity {
            return Err(s.heap.len());
        }
        s.heap.push(Rank {
            budget_micros,
            seq,
            task,
        });
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues a pipeline hop of an already-admitted query. Never
    /// rejects: hops only move existing load between disks, and bounding
    /// them could deadlock the pipeline.
    pub(crate) fn push_hop(&self, budget_micros: u64, seq: u64, task: Box<QueryTask>) {
        let mut s = self.state.lock().expect("queue lock is never poisoned");
        s.heap.push(Rank {
            budget_micros,
            seq,
            task,
        });
        self.ready.notify_one();
    }

    /// Blocks for the highest-priority entry; `None` once the queue was
    /// shut down *and* drained (shutdown is only signaled after the pool
    /// drained, so no task is ever abandoned behind it).
    pub(crate) fn pop(&self) -> Option<Box<QueryTask>> {
        let mut s = self.state.lock().expect("queue lock is never poisoned");
        loop {
            if let Some(rank) = s.heap.pop() {
                return Some(rank.task);
            }
            if s.shutdown {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock is never poisoned");
        }
    }

    /// Signals shutdown and wakes the worker. Entries still queued are
    /// served first ([`DiskQueue::pop`] drains before returning `None`).
    pub(crate) fn shutdown(&self) {
        self.state
            .lock()
            .expect("queue lock is never poisoned")
            .shutdown = true;
        self.ready.notify_all();
    }
}
