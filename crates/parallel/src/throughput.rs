//! Throughput-oriented batch execution — the paper's future work.
//!
//! The paper closes with: "Another topic which we will address in the
//! future are declustering techniques which optimize the **throughput**
//! instead of the search time for a single query." This module provides
//! the measurement side of that question: a batch of concurrent queries is
//! executed against a declustered tree, the pages of *all* queries
//! accumulate per disk, and the batch completes when the busiest disk has
//! served its aggregate queue (queries overlap, so per-query balance
//! matters less than aggregate balance and total work).
//!
//! The resulting trade-off is real: the near-optimal coloring minimizes
//! the *per-query* maximum, while for saturated batch workloads the total
//! page count and the aggregate balance dominate — a declustering with
//! slightly worse per-query spread but fewer total pages can win on
//! queries/second.

use serde::{Deserialize, Serialize};

use parsim_geometry::Point;

use crate::declustered::DeclusteredXTree;
use crate::EngineError;

/// Result of a saturated batch execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Number of queries in the batch.
    pub queries: usize,
    /// Aggregate pages served per disk over the whole batch.
    pub pages_per_disk: Vec<u64>,
    /// Total pages served by all disks.
    pub total_pages: u64,
    /// Batch completion time (busiest disk's aggregate service time) in
    /// milliseconds.
    pub makespan_ms: f64,
    /// Sustained throughput in queries per second.
    pub throughput_qps: f64,
    /// Mean single-query latency (most-loaded disk per query) in
    /// milliseconds — what an *unloaded* system would deliver.
    pub unloaded_latency_ms: f64,
}

impl ThroughputReport {
    /// Aggregate imbalance of the batch: busiest disk / average disk
    /// (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.total_pages == 0 {
            return 1.0;
        }
        let max = self.pages_per_disk.iter().copied().max().unwrap_or(0) as f64;
        max / (self.total_pages as f64 / self.pages_per_disk.len() as f64)
    }
}

/// Executes `queries` as one saturated batch of k-NN searches.
pub fn run_batch(
    engine: &DeclusteredXTree,
    queries: &[Point],
    k: usize,
) -> Result<ThroughputReport, EngineError> {
    assert!(!queries.is_empty(), "batch must contain queries");
    let mut pages_per_disk = vec![0u64; engine.disks()];
    let mut latency_sum = 0.0;
    for q in queries {
        let (_, cost) = engine.knn(q, k)?;
        for (acc, r) in pages_per_disk.iter_mut().zip(&cost.per_disk_reads) {
            *acc += r;
        }
        latency_sum += cost.parallel_time.as_secs_f64() * 1e3;
    }
    let total_pages: u64 = pages_per_disk.iter().sum();
    let max_pages = pages_per_disk.iter().copied().max().unwrap_or(0);
    let model = engine.disk_model();
    let makespan_ms = model.service_time(max_pages).as_secs_f64() * 1e3;
    Ok(ThroughputReport {
        queries: queries.len(),
        pages_per_disk,
        total_pages,
        makespan_ms,
        throughput_qps: if makespan_ms > 0.0 {
            queries.len() as f64 / (makespan_ms / 1e3)
        } else {
            f64::INFINITY
        },
        unloaded_latency_ms: latency_sum / queries.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use parsim_datagen::{DataGenerator, UniformGenerator};

    #[test]
    fn batch_report_is_consistent() {
        let dim = 8;
        let data = UniformGenerator::new(dim).generate(5_000, 1);
        let queries = UniformGenerator::new(dim).generate(20, 2);
        let config = EngineConfig::paper_defaults(dim);
        let engine = DeclusteredXTree::build_near_optimal(&data, 8, config).unwrap();
        let report = run_batch(&engine, &queries, 10).unwrap();
        assert_eq!(report.queries, 20);
        assert_eq!(report.pages_per_disk.len(), 8);
        assert_eq!(
            report.total_pages,
            report.pages_per_disk.iter().sum::<u64>()
        );
        assert!(report.makespan_ms > 0.0);
        assert!(report.throughput_qps > 0.0);
        assert!(report.imbalance() >= 1.0);
        // Batch aggregation smooths per-query imbalance.
        assert!(report.imbalance() < 2.5, "imbalance {}", report.imbalance());
    }

    #[test]
    fn more_disks_increase_throughput() {
        let dim = 10;
        let data = UniformGenerator::new(dim).generate(10_000, 3);
        let queries = UniformGenerator::new(dim).generate(15, 4);
        let config = EngineConfig::paper_defaults(dim);
        let few = DeclusteredXTree::build_near_optimal(&data, 2, config).unwrap();
        let many = DeclusteredXTree::build_near_optimal(&data, 16, config).unwrap();
        let few_qps = run_batch(&few, &queries, 10).unwrap().throughput_qps;
        let many_qps = run_batch(&many, &queries, 10).unwrap().throughput_qps;
        assert!(
            many_qps > 2.0 * few_qps,
            "few {few_qps:.1} qps vs many {many_qps:.1} qps"
        );
    }
}
