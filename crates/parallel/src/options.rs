//! Query options and fault policy for the parallel engine.
//!
//! [`QueryOptions`] unifies the former `knn` / `knn_traced` /
//! `knn_batch_with` entry-point sprawl into one record consumed by
//! [`crate::ParallelKnnEngine::query`] and
//! [`crate::ParallelKnnEngine::query_batch`]; [`FaultPolicy`] carries the
//! engine-wide degraded-mode defaults set at build time via
//! [`crate::EngineBuilder::fault_policy`].

use std::time::Duration;

use parsim_index::knn::{Neighbor, ScanTier};
use parsim_index::ScanOrder;
use parsim_storage::QueryCost;

use crate::metrics::QueryTrace;

/// How the engine executes queries.
///
/// [`ExecutionMode::Scoped`] is the reference implementation: every call
/// spawns scoped threads (one per disk for a single query, a bounded
/// claim-the-next-query pool for batches) that die with the call.
/// [`ExecutionMode::Pooled`] starts one **persistent worker thread per
/// disk** at build time; queries are enqueued and *pipelined* from worker
/// to worker, so consecutive queries overlap across disks without a
/// per-batch barrier and no thread is ever spawned on the query path.
/// Answers are bit-identical in both modes; see
/// [`crate::ParallelKnnEngine::submit`] for the trace guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Spawn scoped threads per call (the reference implementation).
    #[default]
    Scoped,
    /// Long-lived per-disk workers fed by submission queues.
    Pooled,
}

/// Bounded-retry policy for reads against a flaky disk: up to
/// `max_retries` re-reads per page, with exponential backoff between
/// attempts. Retries cost *modeled* time only — the simulation draws the
/// error stream and charges the backoff plus the re-read to the disk's
/// modeled service time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum re-read attempts per failed page read.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub backoff: Duration,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// No retries at all: the first read error fails the disk over.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
            backoff_multiplier: 1.0,
        }
    }

    /// The backoff before retry attempt `attempt` (0-based):
    /// `backoff × multiplier^attempt`.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        self.backoff
            .mul_f64(self.backoff_multiplier.powi(attempt as i32))
    }
}

impl Default for RetryPolicy {
    /// Two retries, 1 ms initial backoff, doubling.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            backoff_multiplier: 2.0,
        }
    }
}

/// Engine-wide degraded-mode defaults: a per-disk service-time budget and
/// the retry policy for flaky reads. Individual queries can override both
/// via [`QueryOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPolicy {
    /// Per-disk timeout: a disk whose *modeled* service time for this
    /// query (including slow-disk multipliers and retry backoff) exceeds
    /// the budget is treated as failed and its buckets fail over to
    /// replicas. `None` disables the budget.
    pub timeout: Option<Duration>,
    /// Retry policy for flaky-disk reads.
    pub retry: RetryPolicy,
}

impl FaultPolicy {
    /// The default policy with a per-disk timeout budget.
    pub fn with_timeout(timeout: Duration) -> Self {
        FaultPolicy {
            timeout: Some(timeout),
            ..FaultPolicy::default()
        }
    }
}

/// Per-query choice between the exact tree backbone and the approximate
/// LSH tier.
///
/// [`QueryMode::Exact`] (the default) runs the X-tree search and returns
/// the true k nearest neighbors — bit-identical whether or not the engine
/// was built with an LSH config. [`QueryMode::Approx`] requires the
/// engine to have been built with
/// [`crate::EngineBuilder::approx`]; it scans the query's hash buckets
/// instead of the trees, returning true dataset members with their true
/// f64 distances, but possibly missing some of the real top-k. `probes`
/// widens the search per table (multi-probe LSH): bucket 1 is the query's
/// own signature, further probes flip the lowest-margin signature bits
/// first. Recall is monotone non-decreasing in `probes` for a fixed
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Exact tree search (the default).
    #[default]
    Exact,
    /// Approximate LSH search.
    Approx {
        /// Buckets probed per table, at least 1 (0 is treated as 1).
        probes: usize,
    },
}

/// Options of one k-NN query (or batch): the result count plus tracing,
/// timeout, retry, and worker-pool knobs that were formerly spread over
/// separate entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOptions {
    /// Number of nearest neighbors to return.
    pub k: usize,
    /// Attach the full [`QueryTrace`] to each result.
    pub trace: bool,
    /// Per-disk modeled-time budget for this query; overrides the engine's
    /// [`FaultPolicy::timeout`] when set.
    pub timeout: Option<Duration>,
    /// Retry policy for this query; overrides the engine's
    /// [`FaultPolicy::retry`] when set.
    pub retry: Option<RetryPolicy>,
    /// Worker threads for [`crate::ParallelKnnEngine::query_batch`]
    /// (clamped to at least 1; defaults to the host's available
    /// parallelism). Ignored by single-query execution.
    pub workers: Option<usize>,
    /// Modeled end-to-end service-time budget for this query on the
    /// serve layer: overrides [`crate::AdmissionConfig::deadline`] when
    /// set. At every pipeline hop the pool compares the modeled service
    /// time the query has consumed against the budget and sheds doomed
    /// work with [`crate::EngineError::DeadlineExceeded`]. Ignored by
    /// scoped execution (which computes eagerly).
    pub deadline: Option<Duration>,
    /// Precision tier of the leaf scans for this query; overrides the
    /// engine's [`crate::EngineConfig::tier`] when set. Every tier
    /// returns bit-identical answers — the cheap tiers only trade f64
    /// kernel work for certified low-precision lower-bound work (see
    /// `docs/TUNING.md`).
    pub tier: Option<ScanTier>,
    /// Scan-order knob for this query; overrides the engine's
    /// [`crate::EngineConfig::order`] when set. This only controls whether
    /// the f64 tier runs the certified permuted filter on energy-laid-out
    /// leaves — the physical layout is fixed at build/rebuild time by the
    /// engine config, and leaves stored naturally scan naturally under
    /// either setting. Answers are bit-identical either way.
    pub order: Option<ScanOrder>,
    /// Exact tree search or the approximate LSH tier (see [`QueryMode`]).
    pub mode: QueryMode,
}

impl QueryOptions {
    /// Options for a plain k-NN query.
    pub fn new(k: usize) -> Self {
        QueryOptions {
            k,
            trace: false,
            timeout: None,
            retry: None,
            workers: None,
            deadline: None,
            tier: None,
            order: None,
            mode: QueryMode::Exact,
        }
    }

    /// Options for an approximate k-NN query on the LSH tier with the
    /// given multi-probe width.
    pub fn approx(k: usize, probes: usize) -> Self {
        QueryOptions::new(k).with_mode(QueryMode::Approx { probes })
    }

    /// Options for a traced k-NN query.
    pub fn traced(k: usize) -> Self {
        QueryOptions {
            trace: true,
            ..QueryOptions::new(k)
        }
    }

    /// Sets whether the full trace is attached to results.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the per-disk modeled-time budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the flaky-read retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Sets the batch worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the modeled deadline budget for the serve layer.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the leaf-scan precision tier for this query.
    pub fn with_tier(mut self, tier: ScanTier) -> Self {
        self.tier = Some(tier);
        self
    }

    /// Sets the leaf-scan order knob for this query.
    pub fn with_order(mut self, order: ScanOrder) -> Self {
        self.order = Some(order);
        self
    }

    /// Sets the query mode (exact tree search or approximate LSH).
    pub fn with_mode(mut self, mode: QueryMode) -> Self {
        self.mode = mode;
        self
    }
}

/// The answer to one query: the neighbors, the classic per-disk page cost,
/// and — when [`QueryOptions::trace`] was set — the full trace.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The `k` nearest neighbors, nearest first.
    pub neighbors: Vec<Neighbor>,
    /// Per-disk page cost of the query.
    pub cost: QueryCost,
    /// The full trace, if requested.
    pub trace: Option<QueryTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_before(0), Duration::from_millis(1));
        assert_eq!(r.backoff_before(1), Duration::from_millis(2));
        assert_eq!(r.backoff_before(2), Duration::from_millis(4));
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn options_builders_compose() {
        let o = QueryOptions::new(5)
            .with_timeout(Duration::from_millis(80))
            .with_retry(RetryPolicy::none())
            .with_workers(4)
            .with_deadline(Duration::from_millis(9))
            .with_tier(ScanTier::Q8)
            .with_order(ScanOrder::Energy)
            .with_trace(true);
        assert_eq!(o.k, 5);
        assert!(o.trace);
        assert_eq!(o.mode, QueryMode::Exact);
        let a = QueryOptions::approx(5, 3);
        assert_eq!(a.mode, QueryMode::Approx { probes: 3 });
        assert_eq!(
            QueryOptions::new(2)
                .with_mode(QueryMode::Approx { probes: 1 })
                .mode,
            QueryMode::Approx { probes: 1 }
        );
        assert_eq!(o.tier, Some(ScanTier::Q8));
        assert_eq!(o.order, Some(ScanOrder::Energy));
        assert_eq!(QueryOptions::new(3).tier, None);
        assert_eq!(QueryOptions::new(3).order, None);
        assert_eq!(o.timeout, Some(Duration::from_millis(80)));
        assert_eq!(o.retry, Some(RetryPolicy::none()));
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.deadline, Some(Duration::from_millis(9)));
        assert!(QueryOptions::traced(3).trace);
        assert!(!QueryOptions::new(3).trace);
        let p = FaultPolicy::with_timeout(Duration::from_secs(1));
        assert_eq!(p.timeout, Some(Duration::from_secs(1)));
    }
}
